//! The real-threaded cluster: hash-partitioned [`RtServer`]s plus the
//! client-side multi-get path with DAS tagging and progress hints.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use das_sync::atomic::{AtomicU64, Ordering};
use das_sync::channel::{bounded, RecvTimeoutError};
use das_sync::RwLock;

use das_metrics::summary::LatencySummary;
use das_sched::policy::PolicyKind;
use das_sched::types::{HintUpdate, OpId, OpTag, QueuedOp, RequestId, ServerId};
use das_sim::time::{SimDuration, SimTime};

use crate::server::{RtOp, RtServer};

/// Configuration of the real-threaded prototype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtConfig {
    /// Number of servers (each with its own worker pool and store shard).
    pub servers: usize,
    /// Worker threads per server.
    pub workers_per_server: usize,
    /// The scheduling policy on every server.
    pub policy: PolicyKind,
    /// Fixed emulated service cost per op, nanoseconds.
    pub per_op_nanos: u64,
    /// Emulated service cost per value byte, nanoseconds.
    pub per_byte_nanos: f64,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            servers: 4,
            workers_per_server: 1,
            policy: PolicyKind::das(),
            per_op_nanos: 20_000,
            per_byte_nanos: 0.5,
        }
    }
}

/// The result of one multi-get.
#[derive(Debug)]
pub struct MultiGetResult {
    /// Value per requested key (`None` = key absent).
    pub values: HashMap<u64, Option<Bytes>>,
    /// Wall-clock request completion time.
    pub rct: Duration,
    /// Number of per-server operations the request fanned out into.
    pub ops: usize,
    /// Resubmission rounds that were needed beyond the first (0 = clean).
    pub retries: u32,
}

/// Why a [`RtCluster::try_multi_get`] gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiGetError {
    /// Some per-server ops never replied within the attempt budget — the
    /// owning server is dead, halted, or hopelessly backlogged.
    TimedOut {
        /// Ops still outstanding when the budget ran out.
        missing: usize,
        /// Attempt rounds used (each with its own timeout window).
        attempts: u32,
    },
    /// Every reply sender vanished: the servers dropped the channel.
    Disconnected,
}

impl std::fmt::Display for MultiGetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiGetError::TimedOut { missing, attempts } => write!(
                f,
                "multi-get timed out with {missing} ops outstanding after {attempts} attempts"
            ),
            MultiGetError::Disconnected => write!(f, "multi-get reply channel disconnected"),
        }
    }
}

impl std::error::Error for MultiGetError {}

/// A running in-process cluster.
pub struct RtCluster {
    config: RtConfig,
    servers: Vec<RtServer>,
    /// Client-side value-size metadata (real deployments predict sizes
    /// from cached metadata; here the index is maintained on load).
    size_index: RwLock<HashMap<u64, u32>>,
    epoch: Instant,
    next_request: AtomicU64,
}

impl std::fmt::Debug for RtCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtCluster")
            .field("servers", &self.servers.len())
            .field("policy", &self.config.policy.name())
            .finish_non_exhaustive()
    }
}

impl RtCluster {
    /// Starts the cluster.
    pub fn start(config: RtConfig) -> Self {
        assert!(config.servers >= 1);
        let epoch = Instant::now();
        RtCluster {
            servers: (0..config.servers)
                .map(|_| RtServer::start(config.policy, config.workers_per_server, epoch))
                .collect(),
            size_index: RwLock::new(HashMap::new()),
            epoch,
            next_request: AtomicU64::new(0),
            config,
        }
    }

    /// The configured policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.config.policy.name()
    }

    fn server_of(&self, key: u64) -> usize {
        // SplitMix mix + modulo: the prototype keeps placement simple.
        let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z % self.servers.len() as u64) as usize
    }

    /// Loads a key/value pair into the owning server.
    pub fn load(&self, key: u64, value: Bytes) {
        self.size_index.write().insert(key, value.len() as u32);
        self.servers[self.server_of(key)].load(key, value);
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn demand_nanos(&self, keys: &[u64], index: &HashMap<u64, u32>) -> u64 {
        let bytes: u64 = keys
            .iter()
            .map(|k| *index.get(k).unwrap_or(&1024) as u64)
            .sum();
        self.config.per_op_nanos + (bytes as f64 * self.config.per_byte_nanos) as u64
    }

    /// Executes a multi-get across the cluster, blocking until every
    /// per-server operation returns. Panics if the cluster cannot answer
    /// within 30 seconds — use [`try_multi_get`] for a fallible path.
    ///
    /// [`try_multi_get`]: RtCluster::try_multi_get
    pub fn multi_get(&self, keys: &[u64]) -> MultiGetResult {
        self.try_multi_get(keys, Duration::from_secs(30), 1)
            .expect("multi-get did not complete within 30s")
    }

    /// Executes a multi-get with a per-attempt `timeout` and up to
    /// `attempts` rounds: when a round's window expires with ops still
    /// outstanding, those ops are resubmitted to their servers (reads are
    /// idempotent; a late original reply and a retry reply are
    /// interchangeable and deduplicated). Returns an error instead of
    /// hanging when a server has died.
    pub fn try_multi_get(
        &self,
        keys: &[u64],
        timeout: Duration,
        attempts: u32,
    ) -> Result<MultiGetResult, MultiGetError> {
        assert!(!keys.is_empty(), "multi-get needs at least one key");
        assert!(attempts >= 1, "multi-get needs at least one attempt");
        // das-lint: allow(ordering-relaxed): unique-id counter, only uniqueness matters
        let request = RequestId(self.next_request.fetch_add(1, Ordering::Relaxed));
        let start = Instant::now();
        let arrival = self.now();

        // Group keys per server.
        let mut groups: Vec<(usize, Vec<u64>)> = Vec::new();
        for &key in keys {
            let s = self.server_of(key);
            match groups.iter_mut().find(|(gs, _)| *gs == s) {
                Some((_, v)) => v.push(key),
                None => groups.push((s, vec![key])),
            }
        }
        let fanout = groups.len() as u32;

        // Demands from the size index.
        let index = self.size_index.read();
        let demands: Vec<u64> = groups
            .iter()
            .map(|(_, keys)| self.demand_nanos(keys, &index))
            .collect();
        drop(index);
        let bottleneck = *demands.iter().max().expect("non-empty groups");

        // Room for every attempt's reply so a worker never blocks sending a
        // late duplicate.
        let (tx, rx) = bounded(groups.len() * attempts as usize);
        let submit_group = |idx: usize| {
            let now = self.now();
            let tag = OpTag {
                op: OpId {
                    request,
                    index: idx as u32,
                },
                request_arrival: arrival,
                fanout,
                local_estimate: SimDuration::from_nanos(demands[idx]),
                bottleneck_eta: now + SimDuration::from_nanos(bottleneck),
                bottleneck_demand: SimDuration::from_nanos(bottleneck),
            };
            self.servers[groups[idx].0].submit(RtOp {
                queued: QueuedOp {
                    tag,
                    local_estimate: tag.local_estimate,
                    enqueued_at: now,
                },
                keys: groups[idx].1.clone(),
                service_nanos: demands[idx],
                reply: tx.clone(),
            });
        };
        for idx in 0..groups.len() {
            submit_group(idx);
        }

        // Collect replies; keep the remaining-bottleneck view current and
        // hint pending servers when it changes.
        let wants_hints = self.servers[0].wants_hints();
        let mut done = vec![false; groups.len()];
        let mut values: HashMap<u64, Option<Bytes>> = HashMap::with_capacity(keys.len());
        let mut current_bottleneck = bottleneck;
        let mut completed = 0usize;
        let mut round = 1u32;
        let mut deadline = Instant::now() + timeout;
        while completed < groups.len() {
            let wait = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok(reply) => {
                    let idx = reply.op.index as usize;
                    if done[idx] {
                        continue; // late duplicate from an earlier round
                    }
                    done[idx] = true;
                    completed += 1;
                    for (key, value) in groups[idx].1.iter().zip(reply.values) {
                        values.insert(*key, value);
                    }
                    let remaining = demands
                        .iter()
                        .zip(&done)
                        .filter(|(_, d)| !**d)
                        .map(|(d, _)| *d)
                        .max();
                    if let Some(remaining) = remaining {
                        if wants_hints && remaining != current_bottleneck {
                            current_bottleneck = remaining;
                            let update = HintUpdate {
                                bottleneck_eta: self.now() + SimDuration::from_nanos(remaining),
                                remaining_demand: SimDuration::from_nanos(remaining),
                            };
                            for (i, (server, _)) in groups.iter().enumerate() {
                                if !done[i] {
                                    self.servers[*server].hint(request, update);
                                }
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if round >= attempts {
                        return Err(MultiGetError::TimedOut {
                            missing: groups.len() - completed,
                            attempts,
                        });
                    }
                    round += 1;
                    deadline = Instant::now() + timeout;
                    for (idx, finished) in done.iter().enumerate() {
                        if !finished {
                            submit_group(idx);
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(MultiGetError::Disconnected);
                }
            }
        }
        Ok(MultiGetResult {
            values,
            rct: start.elapsed(),
            ops: groups.len(),
            retries: round - 1,
        })
    }

    /// Crash-stops one server (see [`RtServer::halt`]): its workers exit,
    /// queued and future ops on it are never answered.
    pub fn halt_server(&self, server: usize) {
        self.servers[server].halt();
    }

    /// Blocks until a halted server's workers have actually exited (a
    /// condition wait, not a sleep — see
    /// [`RtServer::wait_workers_stopped`]).
    pub fn wait_halted(&self, server: usize) {
        self.servers[server].wait_workers_stopped();
    }

    /// Total ops served across all servers.
    pub fn ops_served(&self) -> u64 {
        self.servers.iter().map(|s| s.ops_served()).sum()
    }

    /// Stops all servers.
    pub fn shutdown(self) {
        for s in self.servers {
            s.shutdown();
        }
    }

    /// A placement helper exposed for tests: which server serves `key`.
    pub fn owner_of(&self, key: u64) -> ServerId {
        ServerId(self.server_of(key) as u32)
    }
}

/// Drives `clients` closed-loop client threads, each issuing `requests`
/// multi-gets of the given key batches, and returns the wall-clock RCT
/// distribution.
pub fn run_closed_loop(
    cluster: &RtCluster,
    clients: usize,
    batches: &[Vec<u64>],
) -> LatencySummary {
    assert!(clients >= 1 && !batches.is_empty());
    let mut summary = LatencySummary::new();
    // Scoped threads let clients borrow `cluster`/`batches`; the das-sync
    // facade has no scope() (the model checker only tracks owned spawns),
    // and this driver is wall-clock load generation that model tests never
    // enter, so plain std scoped threads are the right tool here.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut local = LatencySummary::new();
                    for (i, batch) in batches.iter().enumerate() {
                        if i % clients == c {
                            let r = cluster.multi_get(batch);
                            local.record(r.rct.as_secs_f64());
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            summary.merge(&h.join().expect("client thread panicked"));
        }
    });
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(policy: PolicyKind) -> RtCluster {
        let cluster = RtCluster::start(RtConfig {
            servers: 3,
            workers_per_server: 2,
            policy,
            per_op_nanos: 5_000,
            per_byte_nanos: 0.1,
        });
        for key in 0..300u64 {
            cluster.load(key, Bytes::from(vec![key as u8; 256]));
        }
        cluster
    }

    #[test]
    fn multi_get_returns_all_values() {
        let cluster = small_cluster(PolicyKind::Fcfs);
        let keys: Vec<u64> = (0..20).collect();
        let r = cluster.multi_get(&keys);
        assert_eq!(r.values.len(), 20);
        for k in &keys {
            let v = r.values[k].as_ref().expect("loaded key present");
            assert_eq!(v.len(), 256);
            assert_eq!(v[0], *k as u8);
        }
        assert!(r.ops <= 3);
        assert!(r.rct > Duration::ZERO);
        cluster.shutdown();
    }

    #[test]
    fn missing_keys_are_none() {
        let cluster = small_cluster(PolicyKind::das());
        let r = cluster.multi_get(&[5, 9999]);
        assert!(r.values[&5].is_some());
        assert_eq!(r.values[&9999], None);
        cluster.shutdown();
    }

    #[test]
    fn placement_is_stable() {
        let cluster = small_cluster(PolicyKind::Fcfs);
        for k in 0..100 {
            assert_eq!(cluster.owner_of(k), cluster.owner_of(k));
        }
        cluster.shutdown();
    }

    #[test]
    fn closed_loop_measures_all_requests() {
        let cluster = small_cluster(PolicyKind::das());
        let batches: Vec<Vec<u64>> = (0..40).map(|i| vec![i, i + 100, i + 200]).collect();
        let summary = run_closed_loop(&cluster, 4, &batches);
        assert_eq!(summary.count(), 40);
        assert!(summary.mean() > 0.0);
        assert!(cluster.ops_served() > 0);
        cluster.shutdown();
    }

    #[test]
    fn try_multi_get_reports_zero_retries_on_clean_path() {
        let cluster = small_cluster(PolicyKind::Fcfs);
        let r = cluster
            .try_multi_get(&[1, 2, 3], Duration::from_secs(5), 3)
            .expect("healthy cluster answers");
        assert_eq!(r.values.len(), 3);
        assert_eq!(r.retries, 0);
        cluster.shutdown();
    }

    #[test]
    fn halted_server_times_out_instead_of_hanging() {
        let cluster = small_cluster(PolicyKind::Fcfs);
        let key = 5u64;
        let dead = cluster.owner_of(key).0 as usize;
        cluster.halt_server(dead);
        // Condition-based: resume only once the workers are really gone,
        // so the submit below cannot race a still-draining worker.
        cluster.wait_halted(dead);
        let err = cluster
            .try_multi_get(&[key], Duration::from_millis(50), 2)
            .expect_err("dead server must time out");
        assert_eq!(
            err,
            MultiGetError::TimedOut {
                missing: 1,
                attempts: 2
            }
        );
        assert!(err.to_string().contains("timed out"));
        cluster.shutdown();
    }

    #[test]
    fn retry_rides_out_a_transient_backlog() {
        // One single-worker server pinned by a long op: the first attempt's
        // window expires, retries resubmit, and the request completes once
        // the blocker drains — with `retries > 0` and deduplicated replies.
        let cluster = RtCluster::start(RtConfig {
            servers: 1,
            workers_per_server: 1,
            policy: PolicyKind::Fcfs,
            per_op_nanos: 1_000,
            per_byte_nanos: 0.0,
        });
        cluster.load(1, Bytes::from_static(b"v"));
        let (tx, rx) = das_sync::channel::unbounded();
        let tag = OpTag {
            op: OpId {
                request: RequestId(u64::MAX),
                index: 0,
            },
            request_arrival: SimTime::ZERO,
            fanout: 1,
            local_estimate: SimDuration::from_micros(10),
            bottleneck_eta: SimTime::from_micros(10),
            bottleneck_demand: SimDuration::from_micros(10),
        };
        cluster.servers[0].submit(RtOp {
            queued: QueuedOp {
                tag,
                local_estimate: tag.local_estimate,
                enqueued_at: SimTime::ZERO,
            },
            keys: vec![1],
            service_nanos: 300_000_000, // 300ms blocker
            reply: tx,
        });
        // Condition-based: start the windowed request only once the worker
        // actually holds the blocker, so (nearly) the whole 300ms spin is
        // ahead of the 30ms first window even on a heavily loaded machine.
        cluster.servers[0].wait_dequeued(1);
        let r = cluster
            .try_multi_get(&[1], Duration::from_millis(30), 40)
            .expect("request completes once the blocker drains");
        assert!(r.retries > 0, "the blocked window must have expired");
        assert_eq!(r.values[&1], Some(Bytes::from_static(b"v")));
        let _ = rx.recv_timeout(Duration::from_secs(5));
        cluster.shutdown();
    }

    #[test]
    fn all_policies_serve_correctly() {
        for policy in PolicyKind::standard_set() {
            let cluster = small_cluster(policy);
            let r = cluster.multi_get(&(0..12).collect::<Vec<u64>>());
            assert_eq!(r.values.len(), 12);
            assert!(r.values.values().all(|v| v.is_some()));
            cluster.shutdown();
        }
    }
}
