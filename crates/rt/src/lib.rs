//! # das-rt — real-threaded prototype
//!
//! The schedulers from `das-sched` running outside the simulator: an
//! in-process, multi-threaded key-value cluster with real worker threads,
//! real queues, and wall-clock measurement. This is the "tokio-style
//! prototype" counterpart to the simulation — used by the examples and as
//! a sanity check that the disciplines behave under genuine concurrency.
//!
//! Every lock, channel, atomic, and thread spawn goes through the
//! [`das_sync`] facade (normally `parking_lot` + `crossbeam`; no async
//! runtime in the approved dependency set, and none needed for an
//! in-process prototype). Built with `RUSTFLAGS="--cfg das_model"`, the
//! same code runs under the `das-check` model checker, which explores
//! thread interleavings exhaustively and detects data races, deadlocks,
//! and lost wakeups — see `tests/model/` at the workspace root and the
//! "Concurrency model" section of `DESIGN.md`.
//!
//! * [`store`] — a sharded concurrent in-memory store;
//! * [`server`] — scheduler-fronted worker pools with emulated service
//!   cost (busy-wait per byte);
//! * [`cluster`] — hash-partitioned cluster, the client-side multi-get
//!   path with DAS tags + progress hints, and a closed-loop load driver.
//!
//! ```
//! use bytes::Bytes;
//! use das_rt::cluster::{RtCluster, RtConfig};
//!
//! let cluster = RtCluster::start(RtConfig { servers: 2, ..Default::default() });
//! cluster.load(7, Bytes::from_static(b"hello"));
//! let result = cluster.multi_get(&[7]);
//! assert_eq!(result.values[&7].as_deref(), Some(&b"hello"[..]));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod server;
pub mod store;

pub use cluster::{run_closed_loop, MultiGetResult, RtCluster, RtConfig};
pub use server::{OpReply, RtOp, RtServer};
pub use store::InMemoryStore;
