//! One real-threaded storage server: worker threads draining a
//! scheduler-ordered queue of get operations against the in-memory store.
//!
//! All synchronization goes through the `das-sync` facade, so under
//! `cfg(das_model)` the whole server runs inside the `das-check` model
//! scheduler (see `tests/model/` at the workspace root).

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use das_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use das_sync::channel::Sender;
use das_sync::{Condvar, Mutex};

use das_sched::policy::PolicyKind;
use das_sched::scheduler::Scheduler;
use das_sched::types::{HintUpdate, OpId, QueuedOp, RequestId};
use das_sim::time::SimTime;

use crate::store::InMemoryStore;

/// The reply a server sends when an op completes.
#[derive(Debug)]
pub struct OpReply {
    /// Which op completed.
    pub op: OpId,
    /// The values read (key order as submitted for this server).
    pub values: Vec<Option<Bytes>>,
    /// Server-side queue length right after dequeue (a cheap load signal).
    pub queue_len: usize,
}

/// An operation submitted to a server.
#[derive(Debug)]
pub struct RtOp {
    /// Scheduling view of the op.
    pub queued: QueuedOp,
    /// The keys this op reads on this server.
    pub keys: Vec<u64>,
    /// Emulated service cost in nanoseconds (busy-wait), standing in for
    /// the serialization/IO work a real server would do.
    pub service_nanos: u64,
    /// Where to send the reply.
    pub reply: Sender<OpReply>,
}

struct Inner {
    scheduler: Mutex<SchedState>,
    cv: Condvar,
    /// Signaled on every dequeue and worker exit; waited on by the
    /// condition-based test synchronization helpers.
    progress: Condvar,
    shutdown: AtomicBool,
    store: InMemoryStore,
    epoch: Instant,
    ops_served: AtomicU64,
    worker_count: usize,
}

struct SchedState {
    scheduler: Box<dyn Scheduler>,
    /// Payload side-table keyed by op id (the scheduler only orders
    /// [`QueuedOp`]s).
    payloads: std::collections::HashMap<OpId, (Vec<u64>, u64, Sender<OpReply>)>,
    /// Ops handed to workers so far (monotonic; drives [`RtServer::wait_dequeued`]).
    dequeued: u64,
    /// Worker threads that have exited, cleanly or by panic (drives
    /// [`RtServer::wait_workers_stopped`]).
    exited: usize,
}

/// A running server with its worker threads.
pub struct RtServer {
    inner: Arc<Inner>,
    workers: Vec<das_sync::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RtServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtServer")
            .field("workers", &self.workers.len())
            // das-lint: allow(ordering-relaxed): debug snapshot of a monotonic counter
            .field("ops_served", &self.inner.ops_served.load(Ordering::Relaxed))
            .finish()
    }
}

impl RtServer {
    /// Starts a server with `workers` threads, a fresh `policy` queue, and
    /// an epoch shared with the cluster (wall time maps to [`SimTime`]
    /// relative to it).
    pub fn start(policy: PolicyKind, workers: usize, epoch: Instant) -> Self {
        assert!(workers >= 1);
        let inner = Arc::new(Inner {
            scheduler: Mutex::new(SchedState {
                scheduler: policy.build(),
                payloads: std::collections::HashMap::new(),
                dequeued: 0,
                exited: 0,
            }),
            cv: Condvar::new(),
            progress: Condvar::new(),
            shutdown: AtomicBool::new(false),
            store: InMemoryStore::new(),
            epoch,
            ops_served: AtomicU64::new(0),
            worker_count: workers,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                das_sync::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        RtServer {
            inner,
            workers: handles,
        }
    }

    /// Loads a key/value pair (setup path, bypasses scheduling).
    pub fn load(&self, key: u64, value: Bytes) {
        self.inner.store.put(key, value);
    }

    /// Submits an operation; workers will serve it in scheduler order.
    pub fn submit(&self, op: RtOp) {
        let mut st = self.inner.scheduler.lock();
        st.payloads
            .insert(op.queued.tag.op, (op.keys, op.service_nanos, op.reply));
        let now = self.now();
        st.scheduler.enqueue(op.queued, now);
        drop(st);
        self.inner.cv.notify_one();
    }

    /// Delivers a progress hint.
    pub fn hint(&self, request: RequestId, update: HintUpdate) {
        let mut st = self.inner.scheduler.lock();
        let now = self.now();
        st.scheduler.on_hint(request, update, now);
    }

    /// Whether this server's policy consumes hints.
    pub fn wants_hints(&self) -> bool {
        self.inner.scheduler.lock().scheduler.wants_hints()
    }

    /// Total ops served so far.
    pub fn ops_served(&self) -> u64 {
        // das-lint: allow(ordering-relaxed): monotonic counter read for reporting only
        self.inner.ops_served.load(Ordering::Relaxed)
    }

    /// Wall time as [`SimTime`] since the cluster epoch.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.inner.epoch.elapsed().as_nanos() as u64)
    }

    /// Blocks until workers have dequeued at least `n` ops since start.
    /// Condition-based test synchronization: replaces sleep-and-hope
    /// handshakes, so tests hold under any schedule (and under the model
    /// checker, where sleeping is meaningless).
    pub fn wait_dequeued(&self, n: u64) {
        let mut st = self.inner.scheduler.lock();
        while st.dequeued < n {
            self.inner.progress.wait(&mut st);
        }
    }

    /// Blocks until every worker thread has exited (clean return after
    /// [`halt`]/[`shutdown`], or a panic unwind). Does not join or
    /// consume the server; pair with [`shutdown`] to reap the threads.
    ///
    /// [`halt`]: RtServer::halt
    /// [`shutdown`]: RtServer::shutdown
    pub fn wait_workers_stopped(&self) {
        let mut st = self.inner.scheduler.lock();
        while st.exited < self.inner.worker_count {
            self.inner.progress.wait(&mut st);
        }
    }

    /// Simulates server death (crash-stop): workers stop serving and exit,
    /// queued ops are never answered, but the process keeps running —
    /// clients see the silence, not an error. Unlike [`shutdown`], `halt`
    /// does not join the workers, so it can be called through a shared
    /// reference mid-benchmark. A halted server still accepts submissions
    /// (into the void), like a dead host behind a still-open TCP window.
    ///
    /// [`shutdown`]: RtServer::shutdown
    pub fn halt(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Stops the workers and joins them. If a worker thread panicked, the
    /// panic is re-raised here instead of being swallowed.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        for h in self.workers {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Increments `exited` when the worker leaves `worker_loop` for any
/// reason — clean return or panic unwind — so waiters see dead workers.
struct ExitGuard<'a> {
    inner: &'a Inner,
}

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.inner.scheduler.lock();
        st.exited += 1;
        drop(st);
        self.inner.progress.notify_all();
    }
}

fn worker_loop(inner: &Inner) {
    let _exit = ExitGuard { inner };
    loop {
        let (queued, payload) = {
            let mut st = inner.scheduler.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let now = SimTime::from_nanos(inner.epoch.elapsed().as_nanos() as u64);
                if let Some(q) = st.scheduler.dequeue(now) {
                    let payload = st
                        .payloads
                        .remove(&q.tag.op)
                        .expect("payload for queued op");
                    st.dequeued += 1;
                    inner.progress.notify_all();
                    break (q, payload);
                }
                inner.cv.wait(&mut st);
            }
        };
        let (keys, service_nanos, reply) = payload;
        let values: Vec<Option<Bytes>> = keys.iter().map(|&k| inner.store.get(k)).collect();
        busy_wait(service_nanos);
        // das-lint: allow(ordering-relaxed): monotonic served counter, reporting only
        inner.ops_served.fetch_add(1, Ordering::Relaxed);
        let queue_len = inner.scheduler.lock().scheduler.len();
        // The request side may have given up (e.g. on shutdown); a closed
        // channel is fine.
        let _ = reply.send(OpReply {
            op: queued.tag.op,
            values,
            queue_len,
        });
    }
}

/// Emulates CPU-bound service time. Spins rather than sleeping: sleep
/// granularity on most OSes is far coarser than microsecond-scale service
/// times. Invisible to the model checker (no sync operations), so model
/// tests use `service_nanos: 0`.
fn busy_wait(nanos: u64) {
    if nanos == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < nanos {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sched::types::OpTag;
    use das_sim::time::SimDuration;
    use das_sync::channel::unbounded;

    fn op(req: u64, keys: Vec<u64>, reply: Sender<OpReply>) -> RtOp {
        let tag = OpTag {
            op: OpId {
                request: RequestId(req),
                index: 0,
            },
            request_arrival: SimTime::ZERO,
            fanout: 1,
            local_estimate: SimDuration::from_micros(10),
            bottleneck_eta: SimTime::from_micros(10),
            bottleneck_demand: SimDuration::from_micros(10),
        };
        RtOp {
            queued: QueuedOp {
                tag,
                local_estimate: tag.local_estimate,
                enqueued_at: SimTime::ZERO,
            },
            keys,
            service_nanos: 1_000,
            reply,
        }
    }

    #[test]
    fn serves_submitted_ops() {
        let server = RtServer::start(PolicyKind::Fcfs, 2, Instant::now());
        server.load(1, Bytes::from_static(b"one"));
        server.load(2, Bytes::from_static(b"two"));
        let (tx, rx) = unbounded();
        for i in 0..10 {
            server.submit(op(i, vec![1, 2, 99], tx.clone()));
        }
        for _ in 0..10 {
            let reply = rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("worker did not reply within 5s");
            assert_eq!(reply.values[0], Some(Bytes::from_static(b"one")));
            assert_eq!(reply.values[1], Some(Bytes::from_static(b"two")));
            assert_eq!(reply.values[2], None);
        }
        assert_eq!(server.ops_served(), 10);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_clean_with_empty_queue() {
        let server = RtServer::start(PolicyKind::das(), 4, Instant::now());
        assert!(server.wants_hints());
        server.shutdown();
    }

    #[test]
    fn hints_are_accepted() {
        let server = RtServer::start(PolicyKind::das(), 1, Instant::now());
        server.hint(
            RequestId(1),
            HintUpdate {
                bottleneck_eta: SimTime::from_micros(5),
                remaining_demand: SimDuration::from_micros(5),
            },
        );
        server.shutdown();
    }

    #[test]
    fn scheduler_order_applies_under_backlog() {
        // One worker, kept busy by a long op while we queue competitors:
        // the SBF policy must then serve the small-bottleneck request
        // first even though it was submitted last.
        let server = RtServer::start(PolicyKind::ReinSbf, 1, Instant::now());
        server.load(1, Bytes::from_static(b"x"));
        let (tx, rx) = unbounded();

        // Occupy the worker (~20ms of spin).
        let mut blocker = op(100, vec![1], tx.clone());
        blocker.service_nanos = 20_000_000;
        server.submit(blocker);
        // Wait for the worker to actually hold the blocker, so both
        // competitors are enqueued while it spins.
        server.wait_dequeued(1);

        // While it spins, enqueue big-bottleneck then small-bottleneck.
        let mk = |req: u64, bottleneck_us: u64| {
            let tag = OpTag {
                op: OpId {
                    request: RequestId(req),
                    index: 0,
                },
                request_arrival: SimTime::ZERO,
                fanout: 2,
                local_estimate: SimDuration::from_micros(10),
                bottleneck_eta: SimTime::from_micros(bottleneck_us),
                bottleneck_demand: SimDuration::from_micros(bottleneck_us),
            };
            RtOp {
                queued: QueuedOp {
                    tag,
                    local_estimate: tag.local_estimate,
                    enqueued_at: SimTime::ZERO,
                },
                keys: vec![1],
                service_nanos: 1_000,
                reply: tx.clone(),
            }
        };
        server.submit(mk(1, 50_000)); // big bottleneck, submitted first
        server.submit(mk(2, 10)); // small bottleneck, submitted second

        let timeout = std::time::Duration::from_secs(5);
        let first = rx
            .recv_timeout(timeout)
            .expect("blocker op did not finish within 5s");
        assert_eq!(first.op.request, RequestId(100), "blocker finishes first");
        let second = rx
            .recv_timeout(timeout)
            .expect("second reply did not arrive within 5s");
        assert_eq!(
            second.op.request,
            RequestId(2),
            "SBF must serve the small bottleneck first"
        );
        let third = rx
            .recv_timeout(timeout)
            .expect("third reply did not arrive within 5s");
        assert_eq!(third.op.request, RequestId(1));
        server.shutdown();
    }

    #[test]
    fn halted_server_goes_silent() {
        let server = RtServer::start(PolicyKind::Fcfs, 1, Instant::now());
        server.load(1, Bytes::from_static(b"x"));
        server.halt();
        // Wait for the worker to observe the flag and exit — a condition,
        // not a sleep, so this holds under any schedule.
        server.wait_workers_stopped();
        let (tx, rx) = unbounded();
        server.submit(op(1, vec![1], tx));
        // Submission is accepted but never served: the client's only signal
        // is the timeout.
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(100))
            .is_err());
        assert_eq!(server.ops_served(), 0);
        server.shutdown();
    }

    #[test]
    fn worker_panics_surface_on_shutdown() {
        let server = RtServer::start(PolicyKind::Fcfs, 1, Instant::now());
        let (tx, rx) = unbounded();
        // Pin the single worker so both same-id ops are queued before
        // either is dequeued: the payload table then holds one entry and
        // the second dequeue finds none, panicking the worker.
        let mut blocker = op(100, vec![1], tx.clone());
        blocker.service_nanos = 50_000_000;
        server.submit(blocker);
        // Wait until the worker holds the blocker (the full service time
        // is then ahead of us), then enqueue the colliding pair.
        server.wait_dequeued(1);
        server.submit(op(7, vec![1], tx.clone()));
        server.submit(op(7, vec![1], tx));
        let _ = rx.recv_timeout(std::time::Duration::from_secs(5));
        let _ = rx.recv_timeout(std::time::Duration::from_secs(5));
        // The second reply only proves the first id-7 op was served; the
        // panicking dequeue happens on the worker's *next* loop turn. Wait
        // for the thread to actually die (the exit guard fires on panic
        // unwind too) before shutting down, or the shutdown flag can win
        // the race and let the worker exit cleanly.
        server.wait_workers_stopped();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || server.shutdown()));
        assert!(result.is_err(), "worker panic must propagate via shutdown");
    }

    #[test]
    fn busy_wait_spins_roughly_right() {
        let t = Instant::now();
        busy_wait(2_000_000); // 2ms
        let elapsed = t.elapsed().as_nanos() as u64;
        assert!(elapsed >= 2_000_000, "elapsed = {elapsed}");
        busy_wait(0); // no-op
    }
}
