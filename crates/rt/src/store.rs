//! A sharded in-memory key-value store: the data plane of the
//! real-threaded prototype.

use std::collections::HashMap;

use bytes::Bytes;
use das_sync::RwLock;

/// Number of lock shards (power of two).
const SHARDS: usize = 64;

/// A concurrent in-memory key→value map with striped locking.
#[derive(Debug)]
pub struct InMemoryStore {
    shards: Vec<RwLock<HashMap<u64, Bytes>>>,
}

impl Default for InMemoryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        InMemoryStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Bytes>> {
        // SplitMix-style mix so sequential keys spread across shards.
        let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        &self.shards[(z as usize) & (SHARDS - 1)]
    }

    /// Stores `value` under `key`, returning the previous value if any.
    pub fn put(&self, key: u64, value: Bytes) -> Option<Bytes> {
        self.shard(key).write().insert(key, value)
    }

    /// Reads the value under `key`.
    pub fn get(&self, key: u64) -> Option<Bytes> {
        self.shard(key).read().get(&key).cloned()
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: u64) -> Option<Bytes> {
        self.shard(key).write().remove(&key)
    }

    /// Number of stored keys (takes all shard locks; O(shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let s = InMemoryStore::new();
        assert!(s.is_empty());
        assert_eq!(s.put(1, Bytes::from_static(b"a")), None);
        assert_eq!(
            s.put(1, Bytes::from_static(b"b")),
            Some(Bytes::from_static(b"a"))
        );
        assert_eq!(s.get(1), Some(Bytes::from_static(b"b")));
        assert_eq!(s.get(2), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(1), Some(Bytes::from_static(b"b")));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let s = Arc::new(InMemoryStore::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                das_sync::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let key = t * 1000 + i;
                        s.put(key, Bytes::from(vec![t as u8; 16]));
                        assert!(s.get(key).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 8000);
    }
}
