//! Model thread spawn/join (std-thread-shim API).

use std::sync::PoisonError;

use crate::exec::{self, BlockReason, ResultSlot, RunState};

/// Handle to a model thread, returned by [`spawn`].
pub struct JoinHandle<T> {
    tid: usize,
    slot: ResultSlot<T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").field("tid", &self.tid).finish()
    }
}

/// Spawns a model thread. Must be called from inside a model execution;
/// the spawn itself is a yield point for the parent, and the child
/// happens-after everything the parent did before spawning.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, parent) = exec::current();
    let (tid, slot) = exec::spawn_model(&exec, Some(parent), f);
    JoinHandle { tid, slot }
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes, acquiring its final clock.
    pub fn join(self) -> std::thread::Result<T> {
        if exec::aborting() {
            return Err(Box::new("model execution aborted"));
        }
        let (exec, tid) = exec::current();
        let target = self.tid;
        exec.visible(tid, BlockReason::Join { target }, |st, tid, _| {
            if st.threads[target].state == RunState::Finished {
                let final_clock = st.threads[target].clock.clone();
                st.clock_mut(tid).join(&final_clock);
                Some(())
            } else {
                None
            }
        });
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .unwrap_or_else(|| Err(Box::new("model thread finished without a result")))
    }

    /// Whether the thread has finished; a yield point (so polling loops
    /// stay visible to the scheduler and trip the step limit instead of
    /// hanging the model).
    pub fn is_finished(&self) -> bool {
        if exec::aborting() {
            return true;
        }
        let (exec, tid) = exec::current();
        let target = self.tid;
        exec.visible_point(tid, |st, _| st.threads[target].state == RunState::Finished)
    }
}

/// A pure yield point: offers the scheduler a preemption opportunity.
pub fn yield_now() {
    if exec::aborting() {
        return;
    }
    if let Some((exec, tid)) = exec::current_opt() {
        exec.visible_point(tid, |_, _| ());
    }
}
