//! Model replacements for the workspace's sync primitives.
//!
//! Each type mirrors the API of the vendored `parking_lot` /
//! `crossbeam` shims (plus `std::sync::atomic`) exactly, so the
//! `das-sync` facade can swap them in under `cfg(das_model)` without any
//! call-site changes. Every operation is a controlled yield point; see
//! [`crate::exec`] for the scheduling protocol.

pub mod atomic;
pub mod cell;
pub mod channel;
mod mutex;
mod rwlock;

pub use cell::RaceCell;
pub use mutex::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};
