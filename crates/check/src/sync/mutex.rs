//! Model [`Mutex`] and [`Condvar`] (parking_lot-shim API).
//!
//! Logical ownership lives in the execution's `owners` table so the
//! scheduler can see blocking and detect lock cycles; the protected data
//! sits in a real `std::sync::Mutex` that is only ever taken *after*
//! logical acquisition succeeds (and released *before* logical release),
//! so the std lock never actually contends.

use std::sync::{Mutex as StdMutex, PoisonError};
use std::time::Duration;

use crate::clock::VClock;
use crate::exec::{self, BlockReason, Owners, RunState};

/// A model mutual-exclusion lock (poison-free API).
#[derive(Debug)]
pub struct Mutex<T> {
    id: u64,
    /// Clock published by the last release (happens-before edge carrier).
    clock: StdMutex<VClock>,
    data: StdMutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can
/// temporarily take the underlying std guard by value.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MutexGuard { .. }")
    }
}

impl<T> Mutex<T> {
    /// Creates a model mutex (allocates a deterministic object id).
    pub fn new(value: T) -> Self {
        Mutex {
            id: exec::alloc_obj_id(),
            clock: StdMutex::new(VClock::new()),
            data: StdMutex::new(value),
        }
    }

    /// Acquires the lock; a controlled yield point that may block.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if exec::aborting() {
            // Teardown of a failed run: the scheduler is gone; take the
            // (uncontended) std lock directly so destructors can finish.
            return MutexGuard {
                lock: self,
                inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
            };
        }
        let (exec, tid) = exec::current();
        exec.visible(tid, BlockReason::Lock { obj: self.id }, |st, tid, _| {
            if st.owners.contains_key(&self.id) {
                return None;
            }
            st.owners.insert(self.id, Owners::Writer(tid));
            let oc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
            st.clock_mut(tid).join(&oc);
            Some(())
        });
        MutexGuard {
            lock: self,
            inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Logical release: publish our clock into the lock, hand ownership
    /// back, and wake contenders. The std data guard must already be
    /// dropped (a woken thread takes it right after logical acquisition).
    fn unlock(&self) {
        if exec::aborting() {
            if let Some((exec, _)) = exec::current_opt() {
                let mut st = exec.lock_state();
                st.owners.remove(&self.id);
            }
            return;
        }
        let (exec, tid) = exec::current();
        exec.visible_point(tid, |st, tid| {
            st.owners.remove(&self.id);
            {
                let mut oc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
                oc.join(st.clock(tid));
            }
            st.clock_mut(tid).tick(tid);
            st.wake_where(|r| matches!(r, BlockReason::Lock { obj } if *obj == self.id));
        });
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // std guard first, then logical release
        self.lock.unlock();
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A model condition variable (parking_lot-style `&mut MutexGuard` API).
///
/// `notify_one` deterministically wakes the lowest-tid waiter; spurious
/// wakeups are not modeled (real ones only widen the schedules explored
/// around a wait, and every checked program loops on its predicate).
#[derive(Debug)]
pub struct Condvar {
    id: u64,
    /// Clock accumulated from notifiers, acquired by woken waiters.
    clock: StdMutex<VClock>,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    /// Creates a model condvar (allocates a deterministic object id).
    pub fn new() -> Self {
        Condvar {
            id: exec::alloc_obj_id(),
            clock: StdMutex::new(VClock::new()),
        }
    }

    /// Releases the guard's mutex and parks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, false);
    }

    /// Timed wait. In the model, "time" only advances when the whole
    /// execution is otherwise stuck, so the timeout duration is ignored:
    /// a timed wait times out exactly in the schedules where no
    /// notification can ever arrive first.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _timeout: Duration,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult(self.wait_inner(guard, true))
    }

    fn wait_inner<T>(&self, guard: &mut MutexGuard<'_, T>, timed: bool) -> bool {
        if exec::aborting() {
            return true;
        }
        let (exec, tid) = exec::current();
        let m = guard.lock;
        guard.inner = None; // free the std data lock while parked
        let mut st = exec.lock_state();
        // Atomically release the mutex and park: there must be no yield
        // point in between, or a notify between unlock and park would be
        // lost in a way real condvars forbid.
        st.owners.remove(&m.id);
        {
            let mut mc = m.clock.lock().unwrap_or_else(PoisonError::into_inner);
            mc.join(st.clock(tid));
        }
        st.clock_mut(tid).tick(tid);
        st.wake_where(|r| matches!(r, BlockReason::Lock { obj } if *obj == m.id));
        st.threads[tid].state = RunState::Blocked(BlockReason::CondWait { obj: self.id, timed });
        exec.schedule_next(&mut st);
        st = exec.wait_granted(st, tid);
        let timed_out = std::mem::take(&mut st.threads[tid].timed_out);
        {
            let cc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
            st.clock_mut(tid).join(&cc);
        }
        // Reacquire the mutex before returning (blocking).
        loop {
            if let std::collections::btree_map::Entry::Vacant(slot) = st.owners.entry(m.id) {
                slot.insert(Owners::Writer(tid));
                let mc = m.clock.lock().unwrap_or_else(PoisonError::into_inner);
                st.clock_mut(tid).join(&mc);
                break;
            }
            st.threads[tid].state = RunState::Blocked(BlockReason::Lock { obj: m.id });
            exec.schedule_next(&mut st);
            st = exec.wait_granted(st, tid);
        }
        drop(st);
        guard.inner = Some(m.data.lock().unwrap_or_else(PoisonError::into_inner));
        timed_out
    }

    /// Wakes one waiter (the lowest tid, deterministically).
    pub fn notify_one(&self) {
        if exec::aborting() {
            return;
        }
        let Some((exec, tid)) = exec::current_opt() else {
            return;
        };
        exec.visible_point(tid, |st, tid| {
            {
                let mut cc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
                cc.join(st.clock(tid));
            }
            st.clock_mut(tid).tick(tid);
            let target = st.threads.iter().position(|t| {
                matches!(&t.state,
                    RunState::Blocked(BlockReason::CondWait { obj, .. }) if *obj == self.id)
            });
            if let Some(w) = target {
                st.threads[w].state = RunState::Ready;
                st.threads[w].timed_out = false;
            }
        });
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if exec::aborting() {
            return;
        }
        let Some((exec, tid)) = exec::current_opt() else {
            return;
        };
        exec.visible_point(tid, |st, tid| {
            {
                let mut cc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
                cc.join(st.clock(tid));
            }
            st.clock_mut(tid).tick(tid);
            st.wake_where(|r| matches!(r, BlockReason::CondWait { obj, .. } if *obj == self.id));
        });
    }
}
