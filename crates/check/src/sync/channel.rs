//! Model MPMC channels (crossbeam-shim API).
//!
//! Messages carry the sender's vector clock, so a receive establishes a
//! happens-before edge from the send (as a real channel's internal
//! synchronization does). `recv_timeout` follows the model's time rule:
//! the timeout fires only in schedules where the execution is otherwise
//! stuck, i.e. exactly when no message can ever arrive first.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex as StdMutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::clock::VClock;
use crate::exec::{self, BlockReason};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`]: channel empty and disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders disconnected.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders disconnected.
    Disconnected,
}

struct ChanState<T> {
    queue: VecDeque<(T, VClock)>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    id: u64,
    capacity: Option<usize>,
    state: StdMutex<ChanState<T>>,
}

fn chan_lock<T>(shared: &Shared<T>) -> MutexGuard<'_, ChanState<T>> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sending half of a model channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a model channel. Cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        chan_lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        chan_lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut ch = chan_lock(&self.shared);
        ch.senders -= 1;
        let last = ch.senders == 0;
        drop(ch);
        // The last sender disconnecting unblocks parked receivers (they
        // retry and observe Disconnected). Done under the execution lock
        // but without a yield point: drop sites are not decision points,
        // the next sync operation is.
        if last && !exec::aborting() {
            if let Some((exec, _)) = exec::current_opt() {
                let id = self.shared.id;
                let mut st = exec.lock_state();
                st.wake_where(
                    |r| matches!(r, BlockReason::ChanRecv { obj, .. } if *obj == id),
                );
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut ch = chan_lock(&self.shared);
        ch.receivers -= 1;
        let last = ch.receivers == 0;
        drop(ch);
        if last && !exec::aborting() {
            if let Some((exec, _)) = exec::current_opt() {
                let id = self.shared.id;
                let mut st = exec.lock_state();
                st.wake_where(|r| matches!(r, BlockReason::ChanSend { obj } if *obj == id));
            }
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Sends, blocking while a bounded channel is full. Errors when all
    /// receivers have disconnected. A controlled yield point.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if exec::aborting() {
            let mut ch = chan_lock(&self.shared);
            if ch.receivers == 0 {
                return Err(SendError(value));
            }
            ch.queue.push_back((value, VClock::new()));
            return Ok(());
        }
        let (exec, tid) = exec::current();
        let mut slot = Some(value);
        exec.visible(
            tid,
            BlockReason::ChanSend {
                obj: self.shared.id,
            },
            |st, tid, _| {
                let mut ch = chan_lock(&self.shared);
                if ch.receivers == 0 {
                    return Some(Err(SendError(slot.take().expect("send value present"))));
                }
                if let Some(cap) = self.shared.capacity {
                    if ch.queue.len() >= cap {
                        return None;
                    }
                }
                let clk = st.clock(tid).clone();
                ch.queue
                    .push_back((slot.take().expect("send value present"), clk));
                drop(ch);
                st.clock_mut(tid).tick(tid);
                let id = self.shared.id;
                st.wake_where(|r| matches!(r, BlockReason::ChanRecv { obj, .. } if *obj == id));
                Some(Ok(()))
            },
        )
    }
}

impl<T> Receiver<T> {
    fn recv_inner(&self, timed: bool) -> Result<T, RecvTimeoutError> {
        let (exec, tid) = exec::current();
        exec.visible(
            tid,
            BlockReason::ChanRecv {
                obj: self.shared.id,
                timed,
            },
            |st, tid, timed_out| {
                let mut ch = chan_lock(&self.shared);
                if let Some((value, clk)) = ch.queue.pop_front() {
                    drop(ch);
                    st.clock_mut(tid).join(&clk);
                    let id = self.shared.id;
                    st.wake_where(|r| matches!(r, BlockReason::ChanSend { obj } if *obj == id));
                    return Some(Ok(value));
                }
                if ch.senders == 0 {
                    return Some(Err(RecvTimeoutError::Disconnected));
                }
                if timed_out {
                    return Some(Err(RecvTimeoutError::Timeout));
                }
                None
            },
        )
    }

    /// Receives, blocking until a message arrives or every sender is
    /// dropped. A controlled yield point.
    pub fn recv(&self) -> Result<T, RecvError> {
        if exec::aborting() {
            return Err(RecvError);
        }
        match self.recv_inner(false) {
            Ok(v) => Ok(v),
            Err(_) => Err(RecvError),
        }
    }

    /// Receives with a deadline. The duration is ignored: model time
    /// advances (and the timeout fires) only when the whole execution is
    /// otherwise stuck.
    pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
        if exec::aborting() {
            return Err(RecvTimeoutError::Disconnected);
        }
        self.recv_inner(true)
    }

    /// Non-blocking receive; still a yield point.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        if exec::aborting() {
            return Err(TryRecvError::Disconnected);
        }
        let (exec, tid) = exec::current();
        exec.visible_point(tid, |st, tid| {
            let mut ch = chan_lock(&self.shared);
            if let Some((value, clk)) = ch.queue.pop_front() {
                drop(ch);
                st.clock_mut(tid).join(&clk);
                let id = self.shared.id;
                st.wake_where(|r| matches!(r, BlockReason::ChanSend { obj } if *obj == id));
                return Ok(value);
            }
            if ch.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        })
    }

    /// Number of queued messages; a yield point (so polling loops stay
    /// visible to the scheduler and trip the step limit instead of
    /// hanging the model).
    pub fn len(&self) -> usize {
        if exec::aborting() {
            return chan_lock(&self.shared).queue.len();
        }
        let (exec, tid) = exec::current();
        exec.visible_point(tid, |_, _| chan_lock(&self.shared).queue.len())
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        id: exec::alloc_obj_id(),
        capacity,
        state: StdMutex::new(ChanState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates a bounded model MPMC channel.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity))
}

/// Creates an unbounded model MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}
