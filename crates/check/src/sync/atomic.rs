//! Model atomics.
//!
//! Every model atomic operation is treated as sequentially consistent
//! regardless of the `Ordering` argument: the checker explores
//! interleavings of whole operations, not hardware-level reorderings
//! (the CHESS/loom "SC at yield-point granularity" simplification). The
//! ordering argument is accepted for API parity and recorded nowhere —
//! which is also why the `ordering-relaxed` lint rule demands an audit:
//! the model cannot distinguish `Relaxed` from `SeqCst`, so a human must.
//!
//! Each operation is both an acquire and a release (object clock joined
//! into the thread, thread clock published back), so atomics establish
//! happens-before edges for the race detector, exactly like real SC
//! atomics do.

pub use std::sync::atomic::Ordering;

use std::sync::{Mutex as StdMutex, PoisonError};

use crate::clock::VClock;
use crate::exec::{self};

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            state: StdMutex<($ty, VClock)>,
        }

        impl $name {
            /// Creates a model atomic with the given initial value.
            pub fn new(value: $ty) -> Self {
                $name {
                    state: StdMutex::new((value, VClock::new())),
                }
            }

            fn op<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                if exec::aborting() {
                    let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                    return f(&mut s.0);
                }
                let (exec, tid) = exec::current();
                exec.visible_point(tid, |st, tid| {
                    let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                    // Acquire + release: join both ways, then tick.
                    st.clock_mut(tid).join(&s.1);
                    let r = f(&mut s.0);
                    s.1.join(st.clock(tid));
                    drop(s);
                    st.clock_mut(tid).tick(tid);
                    r
                })
            }

            /// Loads the value (modeled as SC; a yield point).
            pub fn load(&self, _order: Ordering) -> $ty {
                self.op(|v| *v)
            }

            /// Stores a value (modeled as SC; a yield point).
            pub fn store(&self, value: $ty, _order: Ordering) {
                self.op(|v| *v = value)
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                self.op(|v| std::mem::replace(v, value))
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $ty {
                self.state
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

model_atomic!(
    /// Model `AtomicBool` (all operations SC yield points).
    AtomicBool,
    bool
);
model_atomic!(
    /// Model `AtomicU64` (all operations SC yield points).
    AtomicU64,
    u64
);
model_atomic!(
    /// Model `AtomicUsize` (all operations SC yield points).
    AtomicUsize,
    usize
);

macro_rules! model_atomic_arith {
    ($name:ident, $ty:ty) => {
        impl $name {
            /// Adds to the value, returning the previous one.
            pub fn fetch_add(&self, rhs: $ty, _order: Ordering) -> $ty {
                self.op(|v| {
                    let old = *v;
                    *v = v.wrapping_add(rhs);
                    old
                })
            }

            /// Subtracts from the value, returning the previous one.
            pub fn fetch_sub(&self, rhs: $ty, _order: Ordering) -> $ty {
                self.op(|v| {
                    let old = *v;
                    *v = v.wrapping_sub(rhs);
                    old
                })
            }
        }
    };
}

model_atomic_arith!(AtomicU64, u64);
model_atomic_arith!(AtomicUsize, usize);
