//! Model [`RwLock`] (parking_lot-shim API).
//!
//! Shared/exclusive ownership lives in the execution's `owners` table
//! (an [`Owners::Readers`] set or an [`Owners::Writer`]); the data sits
//! in a real `std::sync::RwLock` taken only after logical acquisition.
//! Writers do not get priority: a pending writer parks until the reader
//! set empties, which is exactly the interleaving space the checker
//! wants to explore.

use std::sync::{Mutex as StdMutex, PoisonError, RwLock as StdRwLock};

use crate::clock::VClock;
use crate::exec::{self, BlockReason, Owners};

/// A model reader-writer lock (poison-free API).
#[derive(Debug)]
pub struct RwLock<T> {
    id: u64,
    /// Clock published by releases; joined by every acquirer. Reader
    /// releases join into it too, which over-synchronizes slightly (it
    /// can hide a race between a reader's earlier writes and a later
    /// writer) but never invents one.
    clock: StdMutex<VClock>,
    data: StdRwLock<T>,
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

impl<T> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLockReadGuard { .. }")
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLockWriteGuard { .. }")
    }
}

impl<T> RwLock<T> {
    /// Creates a model rwlock (allocates a deterministic object id).
    pub fn new(value: T) -> Self {
        RwLock {
            id: exec::alloc_obj_id(),
            clock: StdMutex::new(VClock::new()),
            data: StdRwLock::new(value),
        }
    }

    /// Acquires a shared guard; a controlled yield point that may block.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if exec::aborting() {
            return RwLockReadGuard {
                lock: self,
                inner: Some(self.data.read().unwrap_or_else(PoisonError::into_inner)),
            };
        }
        let (exec, tid) = exec::current();
        exec.visible(tid, BlockReason::RwRead { obj: self.id }, |st, tid, _| {
            match st.owners.get_mut(&self.id) {
                None => {
                    st.owners.insert(self.id, Owners::Readers(vec![tid]));
                }
                Some(Owners::Readers(readers)) => readers.push(tid),
                Some(Owners::Writer(_)) => return None,
            }
            let oc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
            st.clock_mut(tid).join(&oc);
            Some(())
        });
        RwLockReadGuard {
            lock: self,
            inner: Some(self.data.read().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquires an exclusive guard; a controlled yield point that may
    /// block.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if exec::aborting() {
            return RwLockWriteGuard {
                lock: self,
                inner: Some(self.data.write().unwrap_or_else(PoisonError::into_inner)),
            };
        }
        let (exec, tid) = exec::current();
        exec.visible(tid, BlockReason::RwWrite { obj: self.id }, |st, tid, _| {
            if st.owners.contains_key(&self.id) {
                return None;
            }
            st.owners.insert(self.id, Owners::Writer(tid));
            let oc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
            st.clock_mut(tid).join(&oc);
            Some(())
        });
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.data.write().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Releases one reader (or the writer when `writer`), publishes the
    /// releasing thread's clock, and wakes contenders.
    fn release(&self, writer: bool) {
        if exec::aborting() {
            if let Some((exec, tid)) = exec::current_opt() {
                let mut st = exec.lock_state();
                Self::drop_owner(&mut st, self.id, tid, writer);
            }
            return;
        }
        let (exec, tid) = exec::current();
        exec.visible_point(tid, |st, tid| {
            Self::drop_owner(st, self.id, tid, writer);
            {
                let mut oc = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
                oc.join(st.clock(tid));
            }
            st.clock_mut(tid).tick(tid);
            st.wake_where(|r| {
                matches!(r,
                    BlockReason::RwRead { obj } | BlockReason::RwWrite { obj } if *obj == self.id)
            });
        });
    }

    fn drop_owner(st: &mut crate::exec::ExecState, id: u64, tid: usize, writer: bool) {
        match st.owners.get_mut(&id) {
            Some(Owners::Writer(_)) if writer => {
                st.owners.remove(&id);
            }
            Some(Owners::Readers(readers)) if !writer => {
                readers.retain(|&r| r != tid);
                if readers.is_empty() {
                    st.owners.remove(&id);
                }
            }
            _ => {}
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard present")
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard present")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard present")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // std guard first, then logical release
        self.lock.release(false);
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        self.lock.release(true);
    }
}
