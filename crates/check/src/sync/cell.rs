//! [`RaceCell`]: plain shared memory with happens-before race detection.
//!
//! Real unsynchronized shared memory is undefined behavior in Rust, so
//! racy fixtures can't literally race — instead they use `RaceCell`,
//! which behaves like a `Cell` shared across threads and *reports* any
//! access pair not ordered by happens-before. Detection is FastTrack
//! style: the last write is an epoch `(tid, clock)`, reads since that
//! write accumulate as epochs, and an access races when the accessor's
//! vector clock does not dominate the relevant prior epochs.

use std::sync::{Mutex as StdMutex, PoisonError};

use crate::exec::{self};
use crate::FailureKind;

struct CellState<T> {
    value: T,
    /// Epoch of the most recent write.
    last_write: Option<(usize, u32)>,
    /// Read epochs since the last write (one per reading thread).
    reads: Vec<(usize, u32)>,
}

/// Shared mutable memory that detects data races instead of exhibiting
/// undefined behavior. For checker fixtures and model tests only —
/// production code should use real synchronization.
pub struct RaceCell<T> {
    id: u64,
    state: StdMutex<CellState<T>>,
}

impl<T> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceCell").field("id", &self.id).finish()
    }
}

impl<T: Copy> RaceCell<T> {
    /// Creates a race-detecting cell.
    pub fn new(value: T) -> Self {
        RaceCell {
            id: exec::alloc_obj_id(),
            state: StdMutex::new(CellState {
                value,
                last_write: None,
                reads: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CellState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reads the value; reports a race against any unordered prior write.
    pub fn get(&self) -> T {
        if exec::aborting() {
            return self.lock().value;
        }
        let (exec, tid) = exec::current();
        exec.visible_point(tid, |st, tid| {
            let mut cell = self.lock();
            if let Some((wt, wc)) = cell.last_write {
                if wt != tid && st.clock(tid).get(wt) < wc {
                    st.fail(FailureKind::Race(format!(
                        "data race on RaceCell#{}: read by T{tid} is concurrent \
                         with the last write by T{wt} (no happens-before edge)",
                        self.id
                    )));
                    return cell.value;
                }
            }
            let epoch = st.clock(tid).get(tid);
            cell.reads.retain(|&(t, _)| t != tid);
            cell.reads.push((tid, epoch));
            cell.value
        })
    }

    /// Writes the value; reports a race against any unordered prior
    /// write *or read*.
    pub fn set(&self, value: T) {
        if exec::aborting() {
            self.lock().value = value;
            return;
        }
        let (exec, tid) = exec::current();
        exec.visible_point(tid, |st, tid| {
            let mut cell = self.lock();
            if let Some((wt, wc)) = cell.last_write {
                if wt != tid && st.clock(tid).get(wt) < wc {
                    st.fail(FailureKind::Race(format!(
                        "data race on RaceCell#{}: write by T{tid} is concurrent \
                         with the last write by T{wt} (no happens-before edge)",
                        self.id
                    )));
                    return;
                }
            }
            let racy_read = cell
                .reads
                .iter()
                .find(|&&(rt, rc)| rt != tid && st.clock(tid).get(rt) < rc)
                .map(|&(rt, _)| rt);
            if let Some(rt) = racy_read {
                st.fail(FailureKind::Race(format!(
                    "data race on RaceCell#{}: write by T{tid} is concurrent \
                     with a read by T{rt} (no happens-before edge)",
                    self.id
                )));
                return;
            }
            let epoch = st.clock(tid).get(tid);
            cell.last_write = Some((tid, epoch));
            cell.reads.clear();
            cell.value = value;
        })
    }
}
