//! The controlled execution core.
//!
//! Model threads are real OS threads serialized onto a single baton: one
//! global mutex + condvar with a `granted` slot names the only thread
//! allowed to run user code. Every model sync operation is a *yield
//! point*: the thread marks itself Ready, asks the chooser who runs next,
//! and parks until granted. Blocking operations retry their effect under
//! the execution lock and park with a [`BlockReason`] when they would
//! block, so the scheduler always knows the exact enabled set.
//!
//! When the enabled set is empty and live threads remain, the execution
//! is stuck: timed waiters (recv_timeout / wait_for) fire first — time
//! only advances when nothing else can happen — and if none exist the
//! stuck state is classified as a lock-cycle deadlock or a lost wakeup.
//!
//! Failures abort the whole execution: every parked thread wakes, flags
//! itself as aborting, and unwinds with a private [`ModelAbort`] payload
//! that the spawn wrapper swallows. Sync operations reached during that
//! unwind (guard drops, channel drops) bypass the scheduler and act
//! directly on the underlying state so the teardown cannot re-deadlock.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, PoisonError};

use crate::chooser::{Chooser, Tid};
use crate::clock::VClock;
use crate::FailureKind;

/// Panic payload used to unwind model threads when the execution ends
/// early (failure found, or another thread panicked).
pub(crate) struct ModelAbort;

thread_local! {
    /// The execution this OS thread belongs to, if it is a model thread.
    static CTX: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
    /// Set while unwinding with [`ModelAbort`]: model ops reached from
    /// destructors must bypass the (already failed) scheduler.
    static ABORTING: Cell<bool> = const { Cell::new(false) };
}

/// The calling thread's execution context; panics outside a model run.
pub(crate) fn current() -> (Arc<Execution>, Tid) {
    current_opt().expect(
        "das-check primitive used outside a model execution; construct model \
         types only inside the closure passed to das_check::check/explore",
    )
}

/// Like [`current`], but `None` outside a model run.
pub(crate) fn current_opt() -> Option<(Arc<Execution>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

/// True while this thread unwinds from an aborted execution.
pub(crate) fn aborting() -> bool {
    ABORTING.with(Cell::get)
}

/// Allocates a model-object id. Only the baton holder constructs model
/// objects, so the sequence — and every id in a failure report — is fully
/// determined by the schedule. Returns 0 outside a model execution (the
/// object then fails loudly on first use instead of at construction).
pub(crate) fn alloc_obj_id() -> u64 {
    match current_opt() {
        Some((exec, _)) => {
            let mut st = exec.lock_state();
            st.next_obj += 1;
            st.next_obj
        }
        None => 0,
    }
}

fn abort_current_thread() -> ! {
    ABORTING.with(|a| a.set(true));
    // resume_unwind skips the panic hook: aborts are bookkeeping, not
    // failures, and must not spam stderr for every parked thread.
    std::panic::resume_unwind(Box::new(ModelAbort))
}

/// Why a thread is parked (drives enabledness and stuck classification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BlockReason {
    /// Waiting to acquire an exclusive lock.
    Lock { obj: u64 },
    /// Waiting to acquire a shared (read) lock.
    RwRead { obj: u64 },
    /// Waiting to acquire an exclusive (write) lock.
    RwWrite { obj: u64 },
    /// Parked on a condition variable (`timed` = wait_for).
    CondWait { obj: u64, timed: bool },
    /// Waiting for a message (`timed` = recv_timeout).
    ChanRecv { obj: u64, timed: bool },
    /// Waiting for capacity on a bounded channel.
    ChanSend { obj: u64 },
    /// Waiting for a thread to finish.
    Join { target: Tid },
}

impl BlockReason {
    fn timed(&self) -> bool {
        matches!(
            self,
            BlockReason::CondWait { timed: true, .. } | BlockReason::ChanRecv { timed: true, .. }
        )
    }

    /// The lock object this thread is waiting to acquire, if any.
    fn waited_lock(&self) -> Option<u64> {
        match self {
            BlockReason::Lock { obj } | BlockReason::RwRead { obj } | BlockReason::RwWrite { obj } => {
                Some(*obj)
            }
            _ => None,
        }
    }

    fn describe(&self) -> String {
        match self {
            BlockReason::Lock { obj } => format!("lock #{obj}"),
            BlockReason::RwRead { obj } => format!("rwlock #{obj} (read)"),
            BlockReason::RwWrite { obj } => format!("rwlock #{obj} (write)"),
            BlockReason::CondWait { obj, .. } => format!("condvar #{obj}"),
            BlockReason::ChanRecv { obj, .. } => format!("channel #{obj} recv"),
            BlockReason::ChanSend { obj } => format!("channel #{obj} send"),
            BlockReason::Join { target } => format!("join on T{target}"),
        }
    }
}

/// Lifecycle state of one model thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RunState {
    Ready,
    Running,
    Blocked(BlockReason),
    Finished,
}

/// Who currently owns a lock object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Owners {
    /// Exclusive (mutex, or rwlock write).
    Writer(Tid),
    /// Shared readers (rwlock read); never empty.
    Readers(Vec<Tid>),
}

#[derive(Debug)]
pub(crate) struct ThreadInfo {
    pub(crate) state: RunState,
    pub(crate) clock: VClock,
    /// Set by the scheduler when this thread's timed wait fired; the
    /// operation's next retry observes it and returns Timeout.
    pub(crate) timed_out: bool,
}

/// All shared scheduler state, behind the one execution mutex.
pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadInfo>,
    /// The single thread allowed to run user code right now.
    granted: Option<Tid>,
    /// Last thread granted (preemption accounting).
    last_running: Option<Tid>,
    /// Full decision trace of this run.
    pub(crate) decisions: Vec<Tid>,
    /// Scheduling decisions taken so far (livelock guard).
    steps: usize,
    max_steps: usize,
    /// Threads spawned and not yet Finished.
    live: usize,
    pub(crate) chooser: Chooser,
    /// Current lock owners by object id (mutexes and rwlocks).
    pub(crate) owners: BTreeMap<u64, Owners>,
    /// Next model-object id; per-execution so failure reports are
    /// reproducible across explore and replay runs.
    next_obj: u64,
    pub(crate) failure: Option<FailureKind>,
    /// Execution over (all finished, or failed).
    done: bool,
}

impl ExecState {
    /// Records a failure; the caller (or the next scheduling step) is
    /// responsible for waking parked threads.
    pub(crate) fn fail(&mut self, kind: FailureKind) {
        if self.failure.is_none() {
            self.failure = Some(kind);
        }
        self.done = true;
    }

    pub(crate) fn clock(&self, tid: Tid) -> &VClock {
        &self.threads[tid].clock
    }

    pub(crate) fn clock_mut(&mut self, tid: Tid) -> &mut VClock {
        &mut self.threads[tid].clock
    }

    /// Wakes every thread whose block reason matches `pred`.
    pub(crate) fn wake_where(&mut self, pred: impl Fn(&BlockReason) -> bool) {
        for t in &mut self.threads {
            if let RunState::Blocked(r) = &t.state {
                if pred(r) {
                    t.state = RunState::Ready;
                    t.timed_out = false;
                }
            }
        }
    }

    fn ready_set(&self) -> Vec<Tid> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == RunState::Ready)
            .map(|(i, _)| i)
            .collect()
    }

    /// Formats the stuck state and classifies it: a cycle in the
    /// waits-for graph over locks is a deadlock; all-condvar waits with
    /// no possible notifier are a lost wakeup; anything else (mixed
    /// channel/join waits) is reported as a deadlock too.
    fn classify_stuck(&self) -> FailureKind {
        let blocked: Vec<(Tid, &BlockReason)> = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match &t.state {
                RunState::Blocked(r) => Some((i, r)),
                _ => None,
            })
            .collect();
        let detail = blocked
            .iter()
            .map(|(i, r)| format!("T{} blocked on {}", i, r.describe()))
            .collect::<Vec<_>>()
            .join("; ");
        if let Some(cycle) = self.find_lock_cycle(&blocked) {
            return FailureKind::Deadlock(format!("lock-order cycle {cycle}; {detail}"));
        }
        // No lock cycle but someone is parked on a condvar forever: the
        // root cause is a notification that never comes (threads stuck
        // joining or receiving from the waiter are collateral).
        if blocked
            .iter()
            .any(|(_, r)| matches!(r, BlockReason::CondWait { .. }))
        {
            return FailureKind::LostWakeup(format!(
                "a thread is parked on a condition variable with no thread \
                 left to notify it; {detail}"
            ));
        }
        FailureKind::Deadlock(detail)
    }

    /// Looks for a cycle in the thread-waits-for-lock-owner graph.
    fn find_lock_cycle(&self, blocked: &[(Tid, &BlockReason)]) -> Option<String> {
        // edges[t] = threads that t waits on (owners of its waited lock).
        let mut edges: BTreeMap<Tid, Vec<Tid>> = BTreeMap::new();
        for (t, r) in blocked {
            if let Some(obj) = r.waited_lock() {
                let owners = match self.owners.get(&obj) {
                    Some(Owners::Writer(w)) => vec![*w],
                    Some(Owners::Readers(v)) => v.clone(),
                    None => Vec::new(),
                };
                edges.insert(*t, owners);
            }
        }
        // DFS with an explicit path to recover the cycle for the report.
        fn walk(
            edges: &BTreeMap<Tid, Vec<Tid>>,
            path: &mut Vec<Tid>,
            node: Tid,
        ) -> Option<Vec<Tid>> {
            if let Some(at) = path.iter().position(|&p| p == node) {
                return Some(path[at..].to_vec());
            }
            path.push(node);
            if let Some(next) = edges.get(&node) {
                for &n in next {
                    if let Some(c) = walk(edges, path, n) {
                        return Some(c);
                    }
                }
            }
            path.pop();
            None
        }
        for &start in edges.keys() {
            let mut path = Vec::new();
            if let Some(cycle) = walk(&edges, &mut path, start) {
                let names = cycle
                    .iter()
                    .map(|t| format!("T{t}"))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                let first = cycle.first().map(|t| format!("T{t}")).unwrap_or_default();
                return Some(format!("{names} -> {first}"));
            }
        }
        None
    }
}

impl std::fmt::Debug for ExecState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecState")
            .field("threads", &self.threads.len())
            .field("granted", &self.granted)
            .field("steps", &self.steps)
            .field("live", &self.live)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

/// One model execution: the baton, the thread table, and the chooser.
#[derive(Debug)]
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    /// OS handles of every spawned model thread, reaped by the driver.
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Execution {
    pub(crate) fn new(chooser: Chooser, max_steps: usize) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                granted: None,
                last_running: None,
                decisions: Vec::new(),
                steps: 0,
                max_steps,
                live: 0,
                chooser,
                owners: BTreeMap::new(),
                next_obj: 0,
                failure: None,
                done: false,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    pub(crate) fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a failure and wakes everything so parked threads abort.
    pub(crate) fn fail(&self, st: &mut ExecState, kind: FailureKind) {
        st.fail(kind);
        self.cv.notify_all();
    }

    /// Picks and grants the next thread. Fires timed waiters only when
    /// the execution is otherwise stuck; fails on deadlock/lost-wakeup,
    /// step-limit overrun, or chooser divergence.
    pub(crate) fn schedule_next(&self, st: &mut ExecState) {
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        if st.live == 0 {
            st.done = true;
            st.granted = None;
            self.cv.notify_all();
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(
                st,
                FailureKind::StepLimit(format!(
                    "execution exceeded {} scheduling steps; likely a livelock \
                     (a spin loop over model operations) or a program too large \
                     for the configured max_steps",
                    st.max_steps
                )),
            );
            return;
        }
        loop {
            let ready = st.ready_set();
            if ready.is_empty() {
                // Stuck. Let time advance: fire every timed waiter at
                // once (deterministic — no ordering among expiries) and
                // re-evaluate; otherwise classify and fail.
                let mut fired = false;
                for t in &mut st.threads {
                    if let RunState::Blocked(r) = &t.state {
                        if r.timed() {
                            t.state = RunState::Ready;
                            t.timed_out = true;
                            fired = true;
                        }
                    }
                }
                if fired {
                    continue;
                }
                let kind = st.classify_stuck();
                self.fail(st, kind);
                return;
            }
            let prev = st.last_running;
            match st.chooser.choose(&ready, prev) {
                Ok(tid) => {
                    st.decisions.push(tid);
                    st.last_running = Some(tid);
                    st.granted = Some(tid);
                    st.threads[tid].state = RunState::Running;
                    self.cv.notify_all();
                    return;
                }
                Err(msg) => {
                    self.fail(st, FailureKind::ReplayDivergence(msg));
                    return;
                }
            }
        }
    }

    /// Parks until this thread holds the baton; aborts on failure.
    pub(crate) fn wait_granted<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: Tid,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if st.failure.is_some() {
                drop(st);
                abort_current_thread();
            }
            if st.granted == Some(tid) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A non-blocking yield point: reschedules, then runs `f` with the
    /// baton held. Used by operations that always complete (atomic ops,
    /// racy-cell accesses, notify, unlock, try_recv).
    pub(crate) fn visible_point<R>(
        self: &Arc<Self>,
        tid: Tid,
        f: impl FnOnce(&mut ExecState, Tid) -> R,
    ) -> R {
        let mut st = self.lock_state();
        st.threads[tid].state = RunState::Ready;
        self.schedule_next(&mut st);
        st = self.wait_granted(st, tid);
        let r = f(&mut st, tid);
        if st.failure.is_some() {
            // f detected a failure (e.g. a data race): unwind now.
            self.cv.notify_all();
            drop(st);
            abort_current_thread();
        }
        r
    }

    /// A blocking yield point: reschedules, then retries `try_op` until
    /// it completes, parking with `reason` on each would-block. `try_op`
    /// receives the timed-out flag (true when the scheduler fired this
    /// thread's timed wait since the last retry).
    pub(crate) fn visible<R>(
        self: &Arc<Self>,
        tid: Tid,
        reason: BlockReason,
        mut try_op: impl FnMut(&mut ExecState, Tid, bool) -> Option<R>,
    ) -> R {
        let mut st = self.lock_state();
        st.threads[tid].state = RunState::Ready;
        self.schedule_next(&mut st);
        st = self.wait_granted(st, tid);
        loop {
            let timed_out = std::mem::take(&mut st.threads[tid].timed_out);
            if let Some(r) = try_op(&mut st, tid, timed_out) {
                if st.failure.is_some() {
                    self.cv.notify_all();
                    drop(st);
                    abort_current_thread();
                }
                return r;
            }
            st.threads[tid].state = RunState::Blocked(reason.clone());
            self.schedule_next(&mut st);
            st = self.wait_granted(st, tid);
        }
    }

    /// Waits (on the driver thread) for the execution to end, then reaps
    /// every OS thread and returns the outcome.
    pub(crate) fn finish(self: &Arc<Self>) -> RunOutcome {
        {
            let mut st = self.lock_state();
            while !st.done {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            // Aborted threads unwind with ModelAbort; that join Err is
            // expected teardown, not a result.
            let _ = h.join();
        }
        let mut st = self.lock_state();
        RunOutcome {
            failure: st.failure.take(),
            decisions: std::mem::take(&mut st.decisions),
            chooser: std::mem::replace(&mut st.chooser, Chooser::Taken),
        }
    }
}

/// Where a model thread's return value (or panic payload) lands.
pub(crate) type ResultSlot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

/// What one schedule produced.
pub(crate) struct RunOutcome {
    pub(crate) failure: Option<FailureKind>,
    pub(crate) decisions: Vec<Tid>,
    pub(crate) chooser: Chooser,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawns a model thread. The parent (if any) performs a yield point so
/// the child's first steps interleave with the parent's continuation.
/// Returns the child's tid and the slot its result lands in.
pub(crate) fn spawn_model<T: Send + 'static>(
    exec: &Arc<Execution>,
    parent: Option<Tid>,
    f: impl FnOnce() -> T + Send + 'static,
) -> (Tid, ResultSlot<T>) {
    let tid;
    {
        let mut st = exec.lock_state();
        tid = st.threads.len();
        let clock = match parent {
            Some(p) => {
                // Spawn is a release by the parent and an acquire by the
                // child: the child starts after everything the parent did.
                let mut c = st.threads[p].clock.clone();
                st.threads[p].clock.tick(p);
                c.tick(tid);
                c
            }
            None => {
                let mut c = VClock::new();
                c.tick(tid);
                c
            }
        };
        st.threads.push(ThreadInfo {
            state: RunState::Ready,
            clock,
            timed_out: false,
        });
        st.live += 1;
    }
    let slot: ResultSlot<T> = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec2 = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("das-check-T{tid}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), tid)));
            {
                // Park until first granted (aborts if the run already failed).
                let st = exec2.lock_state();
                let st = exec2.wait_granted(st, tid);
                drop(st);
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match result {
                Ok(value) => {
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(value));
                    let mut st = exec2.lock_state();
                    st.threads[tid].state = RunState::Finished;
                    st.live -= 1;
                    st.wake_where(|r| matches!(r, BlockReason::Join { target } if *target == tid));
                    exec2.schedule_next(&mut st);
                }
                Err(payload) => {
                    let mut st = exec2.lock_state();
                    st.threads[tid].state = RunState::Finished;
                    st.live -= 1;
                    if payload.is::<ModelAbort>() {
                        // Teardown of an already-failed run: nothing to do;
                        // the driver is woken by whoever failed.
                        if st.live == 0 {
                            st.done = true;
                            exec2.cv.notify_all();
                        }
                    } else {
                        let msg = panic_message(payload.as_ref());
                        *slot2.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(Err(payload));
                        exec2.fail(&mut st, FailureKind::Panic(msg));
                    }
                }
            }
        })
        .unwrap_or_else(|e| panic!("failed to spawn model OS thread: {e}"));
    exec
        .handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(handle);
    if let Some(p) = parent {
        // The spawn itself is a yield point for the parent.
        let mut st = exec.lock_state();
        st.threads[p].state = RunState::Ready;
        exec.schedule_next(&mut st);
        let st = exec.wait_granted(st, p);
        drop(st);
    }
    (tid, slot)
}
