//! Vector clocks for happens-before tracking.
//!
//! Each model thread carries a [`VClock`]; every release-style operation
//! (unlock, channel send, atomic store, spawn, thread exit) publishes the
//! acting thread's clock into the object it touches, and every
//! acquire-style operation (lock, recv, atomic load, join) joins the
//! object's clock back into the acquiring thread. Two accesses are
//! concurrent — and a candidate data race — exactly when neither clock
//! dominates the other's epoch for the accessing thread.

/// A grow-on-demand vector clock indexed by model thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub(crate) fn new() -> Self {
        VClock { slots: Vec::new() }
    }

    /// Component for thread `tid` (0 when never ticked).
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Advances this clock's own component for `tid` and returns the new
    /// epoch value.
    pub(crate) fn tick(&mut self, tid: usize) -> u32 {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] += 1;
        self.slots[tid]
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, v) in other.slots.iter().enumerate() {
            if self.slots[i] < *v {
                self.slots[i] = *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        assert_eq!(c.tick(3), 1);
        assert_eq!(c.tick(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }
}
