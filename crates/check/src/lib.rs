//! `das-check`: a loom/shuttle-style schedule-exploration model checker
//! for the workspace's real-threaded code.
//!
//! The program under test runs on real OS threads, but every operation
//! on the model sync primitives ([`sync`], [`thread`]) is a controlled
//! yield point: a single baton serializes the threads, and a pluggable
//! chooser decides who runs at each point. [`explore`] enumerates
//! schedules — iterative DFS with a CHESS-style bounded-preemption
//! budget, or a seeded random walk — and reports the first failing
//! schedule as a replayable decision string; [`replay`] re-executes one
//! exactly.
//!
//! Detected failure classes ([`FailureKind`]):
//! - panics / assertion failures in any model thread,
//! - deadlocks (lock-order cycles, and any stuck mixed-wait state),
//! - lost wakeups (every live thread parked on a condvar, nobody left
//!   to notify),
//! - data races on [`sync::RaceCell`] via vector-clock happens-before,
//! - livelocks, via a schedule step limit.
//!
//! The checker is deliberately dependency-free (std only): it is the
//! trust anchor the rest of the workspace's concurrency is verified
//! against, and it must build offline like every vendored shim.
//!
//! # Example
//!
//! ```
//! use das_check::{explore, Config};
//!
//! let stats = explore(&Config::default(), || {
//!     let m = std::sync::Arc::new(das_check::sync::Mutex::new(0u32));
//!     let m2 = std::sync::Arc::clone(&m);
//!     let t = das_check::thread::spawn(move || *m2.lock() += 1);
//!     *m.lock() += 1;
//!     t.join().expect("child");
//! })
//! .expect("no concurrency bug");
//! assert!(stats.exhausted);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod chooser;
mod clock;
mod exec;
pub mod sync;
pub mod thread;

use std::sync::Arc;

use chooser::{advance_dfs, Chooser, DfsRun, ReplayRun, SplitMix64};
use exec::{spawn_model, Execution};

/// How [`explore`] walks the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Iterative depth-first enumeration with a bounded-preemption
    /// budget (CHESS). Exhaustive within the bound; deterministic.
    Dfs,
    /// Seeded random walk: each schedule draws its decisions from a
    /// SplitMix64 stream. For state spaces too large to enumerate.
    Random {
        /// Seed for the walk; the same seed explores the same schedules.
        seed: u64,
    },
}

/// Exploration limits and strategy.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Schedule strategy (default: bounded-preemption DFS).
    pub strategy: Strategy,
    /// Maximum schedules to run before declaring the budget spent.
    pub max_schedules: usize,
    /// Per-schedule scheduling-step limit (livelock guard).
    pub max_steps: usize,
    /// Preemption budget for DFS (`None` = unbounded). Empirically most
    /// concurrency bugs need at most two preemptions (CHESS), and the
    /// bound keeps the schedule count polynomial instead of exponential.
    pub preemption_bound: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            strategy: Strategy::Dfs,
            max_schedules: 10_000,
            max_steps: 100_000,
            preemption_bound: Some(2),
        }
    }
}

/// What [`explore`] found when no schedule failed.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Schedules actually executed.
    pub schedules: usize,
    /// True when DFS exhausted the bounded space (rather than running
    /// out of `max_schedules` budget).
    pub exhausted: bool,
}

/// The class of bug a failing schedule exhibited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure, index error, ...).
    Panic(String),
    /// Stuck threads with a lock cycle or mixed un-wakeable waits.
    Deadlock(String),
    /// Every live thread parked on a condvar with no notifier left.
    LostWakeup(String),
    /// A happens-before data race on a [`sync::RaceCell`].
    Race(String),
    /// Scheduling-step limit exceeded (livelock or undersized limit).
    StepLimit(String),
    /// The chooser's planned/recorded decisions stopped matching the
    /// program (unmodeled nondeterminism, or a stale replay string).
    ReplayDivergence(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(m) => write!(f, "panic: {m}"),
            FailureKind::Deadlock(m) => write!(f, "deadlock: {m}"),
            FailureKind::LostWakeup(m) => write!(f, "lost wakeup: {m}"),
            FailureKind::Race(m) => write!(f, "data race: {m}"),
            FailureKind::StepLimit(m) => write!(f, "step limit: {m}"),
            FailureKind::ReplayDivergence(m) => write!(f, "replay divergence: {m}"),
        }
    }
}

/// A failing schedule: what went wrong and how to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The bug class and detail message.
    pub kind: FailureKind,
    /// Zero-based index of the failing schedule within the exploration.
    pub schedule_index: usize,
    /// The full decision string (comma-separated thread ids, one per
    /// scheduling decision). Feed to [`replay`] to reproduce the
    /// identical interleaving.
    pub decisions: String,
    /// The random-walk seed, when the failing run came from
    /// [`Strategy::Random`].
    pub seed: Option<u64>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model failure: {}", self.kind)?;
        writeln!(f, "  schedule index: {}", self.schedule_index)?;
        if let Some(seed) = self.seed {
            writeln!(f, "  random seed: {seed}")?;
        }
        write!(
            f,
            "  replay decisions (das_check::replay): \"{}\"",
            self.decisions
        )
    }
}

impl std::error::Error for Failure {}

fn render_decisions(decisions: &[usize]) -> String {
    decisions
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn run_one(
    chooser: Chooser,
    max_steps: usize,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> exec::RunOutcome {
    let execution = Arc::new(Execution::new(chooser, max_steps));
    let root = Arc::clone(f);
    spawn_model(&execution, None, move || root());
    {
        // Kick: grant the root thread its first slice.
        let mut st = execution.lock_state();
        execution.schedule_next(&mut st);
    }
    execution.finish()
}

/// Explores schedules of `f` under `config`. Returns exploration stats,
/// or the first failing schedule (boxed: it carries the full decision
/// trace).
///
/// `f` runs once per schedule and must be self-contained: construct all
/// model objects and threads inside it.
pub fn explore<F>(config: &Config, f: F) -> Result<Stats, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    match config.strategy {
        Strategy::Dfs => {
            let mut planned = Vec::new();
            let mut schedules = 0usize;
            loop {
                if schedules >= config.max_schedules {
                    return Ok(Stats {
                        schedules,
                        exhausted: false,
                    });
                }
                let chooser = Chooser::Dfs(DfsRun::with_path(planned));
                let outcome = run_one(chooser, config.max_steps, &f);
                schedules += 1;
                if let Some(kind) = outcome.failure {
                    return Err(Box::new(Failure {
                        kind,
                        schedule_index: schedules - 1,
                        decisions: render_decisions(&outcome.decisions),
                        seed: None,
                    }));
                }
                let Chooser::Dfs(run) = outcome.chooser else {
                    unreachable!("DFS exploration always gets its chooser back");
                };
                match advance_dfs(run.path, config.preemption_bound) {
                    Some(next) => planned = next,
                    None => {
                        return Ok(Stats {
                            schedules,
                            exhausted: true,
                        })
                    }
                }
            }
        }
        Strategy::Random { seed } => {
            let mut seeder = SplitMix64(seed);
            for index in 0..config.max_schedules {
                let chooser = Chooser::Random(SplitMix64(seeder.next()));
                let outcome = run_one(chooser, config.max_steps, &f);
                if let Some(kind) = outcome.failure {
                    return Err(Box::new(Failure {
                        kind,
                        schedule_index: index,
                        decisions: render_decisions(&outcome.decisions),
                        seed: Some(seed),
                    }));
                }
            }
            Ok(Stats {
                schedules: config.max_schedules,
                exhausted: false,
            })
        }
    }
}

/// Like [`explore`], but panics with the full failure report (decision
/// string included) on the first failing schedule. The convenient entry
/// point for tests.
pub fn check<F>(config: &Config, f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    match explore(config, f) {
        Ok(stats) => stats,
        Err(failure) => panic!("\n{failure}\n"),
    }
}

/// Re-executes `f` under a recorded decision string (from
/// [`Failure::decisions`]). Returns the failure it reproduces, or `None`
/// if the schedule completes cleanly (which, for a string taken from a
/// real failure, means the program or checker changed).
pub fn replay<F>(decisions: &str, max_steps: usize, f: F) -> Option<Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let parsed: Vec<usize> = decisions
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("malformed decision string token {s:?}"))
        })
        .collect();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let chooser = Chooser::Replay(ReplayRun {
        decisions: parsed,
        pos: 0,
    });
    let outcome = run_one(chooser, max_steps, &f);
    outcome.failure.map(|kind| {
        Box::new(Failure {
            kind,
            schedule_index: 0,
            decisions: render_decisions(&outcome.decisions),
            seed: None,
        })
    })
}
