//! Schedule choosers: who runs at each decision point.
//!
//! Three modes share one interface:
//!
//! - **DFS** — iterative depth-first enumeration of schedules with a
//!   CHESS-style bounded-preemption budget. Each run replays a planned
//!   prefix of decisions and extends it with default (non-preempting)
//!   choices; after the run, [`advance_dfs`] flips the deepest decision
//!   that still has an unexplored alternative within budget.
//! - **Random** — a seeded SplitMix64 walk, for probing state spaces too
//!   large to enumerate.
//! - **Replay** — follows a recorded comma-separated decision string
//!   exactly, for reproducing a reported failure.

/// Model thread id (index into the execution's thread table).
pub(crate) type Tid = usize;

/// Deterministic 64-bit PRNG (SplitMix64). Small, seedable, and
/// dependency-free; statistical quality is ample for schedule sampling.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One decision point in a DFS schedule.
#[derive(Debug, Clone)]
pub(crate) struct DfsNode {
    /// Enabled threads in *exploration order*: the previously running
    /// thread first (continuing it costs no preemption), then the rest by
    /// ascending tid. Backtracking walks this list left to right, so the
    /// zero-cost continuation is always explored before any preemption.
    pub(crate) candidates: Vec<Tid>,
    /// Index into `candidates` taken on the recorded run.
    pub(crate) chosen: usize,
    /// Preemptions spent strictly before this decision.
    pub(crate) preemptions_before: usize,
    /// Thread that ran into this decision point (None at the very start).
    pub(crate) prev: Option<Tid>,
}

/// Candidate list in exploration order: `prev` first if still enabled,
/// then the remaining enabled threads by ascending tid.
pub(crate) fn order_candidates(ready: &[Tid], prev: Option<Tid>) -> Vec<Tid> {
    let mut out = Vec::with_capacity(ready.len());
    if let Some(p) = prev {
        if ready.contains(&p) {
            out.push(p);
        }
    }
    for &t in ready {
        if Some(t) != prev {
            out.push(t);
        }
    }
    out
}

/// Preemption cost of granting `cand`: 1 iff the previously running
/// thread is still enabled and we switch away from it.
pub(crate) fn preempt_cost(prev: Option<Tid>, cand: Tid, candidates: &[Tid]) -> usize {
    match prev {
        Some(p) if p != cand && candidates.contains(&p) => 1,
        _ => 0,
    }
}

/// In-flight DFS state for one run.
#[derive(Debug)]
pub(crate) struct DfsRun {
    /// Planned decisions (prefix replayed, suffix appended as defaults).
    pub(crate) path: Vec<DfsNode>,
    /// Next decision index.
    pub(crate) pos: usize,
    /// Preemptions spent so far on this run.
    pub(crate) preemptions: usize,
}

impl DfsRun {
    pub(crate) fn with_path(path: Vec<DfsNode>) -> Self {
        DfsRun {
            path,
            pos: 0,
            preemptions: 0,
        }
    }
}

/// Replay state: the decision string parsed into tids.
#[derive(Debug)]
pub(crate) struct ReplayRun {
    pub(crate) decisions: Vec<Tid>,
    pub(crate) pos: usize,
}

/// The active schedule chooser for one execution.
#[derive(Debug)]
pub(crate) enum Chooser {
    Dfs(DfsRun),
    Random(SplitMix64),
    Replay(ReplayRun),
    /// Placeholder left behind when the driver extracts the real chooser.
    Taken,
}

impl Chooser {
    /// Picks the next thread to run from `ready` (non-empty, ascending).
    /// `prev` is the last thread granted. Errors abort the execution with
    /// a `ReplayDivergence` failure.
    pub(crate) fn choose(&mut self, ready: &[Tid], prev: Option<Tid>) -> Result<Tid, String> {
        match self {
            Chooser::Dfs(run) => {
                let candidates = order_candidates(ready, prev);
                if run.pos < run.path.len() {
                    let node = &run.path[run.pos];
                    if node.candidates != candidates {
                        return Err(format!(
                            "DFS prefix divergence at decision {}: planned candidates \
                             {:?} but this run enabled {:?}; the program under test \
                             makes schedule decisions the model cannot see (wall \
                             clock, real randomness, or unmodeled synchronization)",
                            run.pos, node.candidates, candidates
                        ));
                    }
                    let t = node.candidates[node.chosen];
                    run.preemptions =
                        node.preemptions_before + preempt_cost(prev, t, &node.candidates);
                    run.pos += 1;
                    Ok(t)
                } else {
                    // Past the planned prefix: take the zero-cost default.
                    let t = candidates[0];
                    run.path.push(DfsNode {
                        candidates,
                        chosen: 0,
                        preemptions_before: run.preemptions,
                        prev,
                    });
                    run.pos += 1;
                    Ok(t)
                }
            }
            Chooser::Random(rng) => {
                let idx = (rng.next() % ready.len() as u64) as usize;
                Ok(ready[idx])
            }
            Chooser::Replay(run) => {
                if run.pos >= run.decisions.len() {
                    return Err(format!(
                        "replay decision string exhausted after {} decisions but the \
                         execution needs more; the recorded schedule does not match \
                         this build",
                        run.pos
                    ));
                }
                let t = run.decisions[run.pos];
                if !ready.contains(&t) {
                    return Err(format!(
                        "replay decision {} grants T{} but the enabled set is {:?}; \
                         the recorded schedule does not match this build",
                        run.pos, t, ready
                    ));
                }
                run.pos += 1;
                Ok(t)
            }
            Chooser::Taken => Err("internal: chooser already taken by the driver".to_string()),
        }
    }
}

/// Backtracks a completed DFS path to the next unexplored schedule within
/// the preemption `bound`. Returns the planned prefix for the next run, or
/// `None` when the bounded space is exhausted.
pub(crate) fn advance_dfs(mut path: Vec<DfsNode>, bound: Option<usize>) -> Option<Vec<DfsNode>> {
    loop {
        let node = path.pop()?;
        let base = node.preemptions_before;
        for (idx, &cand) in node.candidates.iter().enumerate().skip(node.chosen + 1) {
            let cost = preempt_cost(node.prev, cand, &node.candidates);
            let within_budget = match bound {
                Some(b) => base + cost <= b,
                None => true,
            };
            if within_budget {
                let mut flipped = node;
                flipped.chosen = idx;
                path.push(flipped);
                return Some(path);
            }
        }
        // No viable alternative here; keep popping.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_put_prev_first() {
        assert_eq!(order_candidates(&[0, 1, 2], Some(1)), vec![1, 0, 2]);
        assert_eq!(order_candidates(&[0, 1, 2], None), vec![0, 1, 2]);
        assert_eq!(order_candidates(&[0, 2], Some(1)), vec![0, 2]);
    }

    #[test]
    fn preempt_cost_counts_switch_away_from_enabled_prev() {
        assert_eq!(preempt_cost(Some(1), 0, &[1, 0]), 1);
        assert_eq!(preempt_cost(Some(1), 1, &[1, 0]), 0);
        assert_eq!(preempt_cost(Some(1), 0, &[0, 2]), 0); // prev blocked
        assert_eq!(preempt_cost(None, 0, &[0]), 0);
    }

    #[test]
    fn dfs_backtracks_deepest_first() {
        let path = vec![
            DfsNode {
                candidates: vec![0, 1],
                chosen: 0,
                preemptions_before: 0,
                prev: None,
            },
            DfsNode {
                candidates: vec![0, 1],
                chosen: 0,
                preemptions_before: 0,
                prev: Some(0),
            },
        ];
        let next = advance_dfs(path, None).expect("alternative exists");
        assert_eq!(next.len(), 2);
        assert_eq!(next[1].chosen, 1);
    }

    #[test]
    fn bound_zero_prunes_preempting_alternatives() {
        // Decision 1's alternative (switching off enabled prev=0) costs a
        // preemption; under bound 0 the only other schedule is flipping
        // decision 0, which has no prev and is free.
        let path = vec![
            DfsNode {
                candidates: vec![0, 1],
                chosen: 0,
                preemptions_before: 0,
                prev: None,
            },
            DfsNode {
                candidates: vec![0, 1],
                chosen: 0,
                preemptions_before: 0,
                prev: Some(0),
            },
        ];
        let next = advance_dfs(path, Some(0)).expect("root flip is free");
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].chosen, 1);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..8 {
            assert_eq!(a.next(), b.next());
        }
    }
}
