//! End-to-end self-tests of the das-check engine: the checker must find
//! every class of seeded bug, stay quiet on correct programs, explore
//! deterministically, and reproduce failures from decision strings.

// Integration tests unwrap freely: a panic is the failure report.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use das_check::sync::{Condvar, Mutex, RaceCell};
use das_check::{explore, replay, Config, FailureKind, Strategy};

fn dfs(max_schedules: usize) -> Config {
    Config {
        strategy: Strategy::Dfs,
        max_schedules,
        ..Config::default()
    }
}

#[test]
fn guarded_counter_is_clean_and_exhausts() {
    let stats = explore(&dfs(10_000), || {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                das_check::thread::spawn(move || {
                    for _ in 0..2 {
                        *c.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 4);
    })
    .expect("guarded counter has no races");
    assert!(stats.exhausted, "bounded DFS should exhaust this program");
    assert!(stats.schedules > 1, "must explore more than one schedule");
}

#[test]
fn dfs_finds_racy_cell_write() {
    let failure = explore(&dfs(10_000), || {
        let cell = Arc::new(RaceCell::new(0u32));
        let c = Arc::clone(&cell);
        let t = das_check::thread::spawn(move || c.set(1));
        cell.set(2);
        let _ = t.join();
    })
    .expect_err("two unsynchronized writers race");
    assert!(
        matches!(failure.kind, FailureKind::Race(_)),
        "expected a data race, got {}",
        failure.kind
    );
    assert!(!failure.decisions.is_empty());
}

#[test]
fn happens_before_through_channel_suppresses_race() {
    let stats = explore(&dfs(10_000), || {
        let cell = Arc::new(RaceCell::new(0u32));
        let (tx, rx) = das_check::sync::channel::unbounded::<()>();
        let c = Arc::clone(&cell);
        let t = das_check::thread::spawn(move || {
            c.set(7);
            tx.send(()).unwrap();
        });
        rx.recv().unwrap(); // acquire the writer's clock
        assert_eq!(cell.get(), 7);
        t.join().unwrap();
    })
    .expect("recv orders the read after the write");
    assert!(stats.exhausted);
}

#[test]
fn lock_order_cycle_is_reported_and_replayable() {
    let program = || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = das_check::thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        let _ = t.join();
    };
    let failure = explore(&dfs(10_000), program).expect_err("AB/BA must deadlock");
    let FailureKind::Deadlock(ref msg) = failure.kind else {
        panic!("expected deadlock, got {}", failure.kind);
    };
    assert!(msg.contains("lock-order cycle"), "got: {msg}");

    // The decision string reproduces the identical interleaving and the
    // identical failure.
    let replayed = replay(&failure.decisions, 100_000, program)
        .expect("recorded schedule reproduces the failure");
    assert_eq!(replayed.kind, failure.kind);
    assert_eq!(replayed.decisions, failure.decisions);
}

#[test]
fn missed_notify_is_a_lost_wakeup() {
    let failure = explore(&dfs(10_000), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p = Arc::clone(&pair);
        let t = das_check::thread::spawn(move || {
            let (m, cv) = &*p;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        // Bug: sets the flag but never notifies. In schedules where the
        // waiter parks first, it parks forever.
        *pair.0.lock() = true;
        let _ = t.join();
    })
    .expect_err("some schedule parks the waiter forever");
    assert!(
        matches!(failure.kind, FailureKind::LostWakeup(_)),
        "expected lost wakeup, got {}",
        failure.kind
    );
}

#[test]
fn notify_before_wait_schedules_pass_and_buggy_ones_fail() {
    // Correct version of the above: with the notify in place, every
    // schedule completes.
    let stats = explore(&dfs(10_000), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p = Arc::clone(&pair);
        let t = das_check::thread::spawn(move || {
            let (m, cv) = &*p;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        t.join().unwrap();
    })
    .expect("notify under the predicate protocol never hangs");
    assert!(stats.exhausted);
}

#[test]
fn recv_timeout_fires_only_when_stuck() {
    let stats = explore(&dfs(10_000), || {
        let (tx, rx) = das_check::sync::channel::bounded::<u8>(1);
        // Sender alive but never sending: the only way forward is the
        // timeout, which the model fires when nothing else can run.
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(1))
            .expect_err("nothing is ever sent");
        assert_eq!(err, das_check::sync::channel::RecvTimeoutError::Timeout);
        drop(tx);
    })
    .expect("timeout path is not a failure");
    assert!(stats.exhausted);
}

#[test]
fn channel_disconnect_and_fifo() {
    let stats = explore(&dfs(10_000), || {
        let (tx, rx) = das_check::sync::channel::unbounded::<u8>();
        let t = das_check::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1)); // FIFO per sender
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err()); // all senders gone -> disconnect
        t.join().unwrap();
    })
    .expect("clean channel protocol");
    assert!(stats.exhausted);
}

#[test]
fn bounded_channel_backpressure_completes() {
    let stats = explore(&dfs(10_000), || {
        let (tx, rx) = das_check::sync::channel::bounded::<u8>(1);
        let t = das_check::thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).unwrap(); // blocks on the full buffer
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2]);
        t.join().unwrap();
    })
    .expect("backpressure hand-off completes in every schedule");
    assert!(stats.exhausted);
}

#[test]
fn spin_loop_hits_step_limit() {
    let failure = explore(
        &Config {
            max_steps: 500,
            ..dfs(4)
        },
        || {
            let (tx, rx) = das_check::sync::channel::unbounded::<u8>();
            // Polling instead of blocking: livelock under a scheduler
            // that never has to deliver.
            while rx.is_empty() {
                das_check::thread::yield_now();
            }
            drop(tx);
        },
    )
    .expect_err("unbounded poll loop must trip the step limit");
    assert!(
        matches!(failure.kind, FailureKind::StepLimit(_)),
        "expected step limit, got {}",
        failure.kind
    );
}

#[test]
fn preemption_bound_prunes_schedules() {
    let run = |bound: Option<usize>| {
        let cfg = Config {
            preemption_bound: bound,
            ..dfs(100_000)
        };
        explore(&cfg, || {
            let counter = Arc::new(Mutex::new(0u32));
            let c = Arc::clone(&counter);
            let t = das_check::thread::spawn(move || {
                for _ in 0..2 {
                    *c.lock() += 1;
                }
            });
            for _ in 0..2 {
                *counter.lock() += 1;
            }
            t.join().unwrap();
        })
        .expect("clean program")
    };
    let unbounded = run(None);
    let bounded = run(Some(1));
    assert!(unbounded.exhausted && bounded.exhausted);
    assert!(
        bounded.schedules < unbounded.schedules,
        "bound 1 ({}) must prune vs unbounded ({})",
        bounded.schedules,
        unbounded.schedules
    );
}

#[test]
fn random_walk_is_seed_deterministic() {
    let program = || {
        let cell = Arc::new(RaceCell::new(0u32));
        let c = Arc::clone(&cell);
        let t = das_check::thread::spawn(move || c.set(1));
        cell.set(2);
        let _ = t.join();
    };
    let cfg = Config {
        strategy: Strategy::Random { seed: 0xda5 },
        max_schedules: 1000,
        ..Config::default()
    };
    let a = explore(&cfg, program).expect_err("race is reachable by random walk");
    let b = explore(&cfg, program).expect_err("same seed, same walk");
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.schedule_index, b.schedule_index);
    assert_eq!(a.seed, Some(0xda5));

    // And the recorded decisions replay to the same failure without the
    // seed (the decision string alone pins the interleaving).
    let replayed = replay(&a.decisions, 100_000, program).expect("decisions reproduce");
    assert_eq!(replayed.kind, a.kind);
}

#[test]
fn panic_in_model_thread_is_reported_with_schedule() {
    let failure = explore(&dfs(100), || {
        let t = das_check::thread::spawn(|| panic!("seeded assertion"));
        let _ = t.join();
    })
    .expect_err("panic must surface as a model failure");
    let FailureKind::Panic(ref msg) = failure.kind else {
        panic!("expected panic, got {}", failure.kind);
    };
    assert!(msg.contains("seeded assertion"));
    assert!(!failure.decisions.is_empty());
}

#[test]
fn rwlock_readers_share_and_writer_excludes() {
    let stats = explore(&dfs(10_000), || {
        let l = Arc::new(das_check::sync::RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let t = das_check::thread::spawn(move || *l2.read());
        {
            let mut w = l.write();
            *w += 1;
        }
        let seen = t.join().unwrap();
        assert!(seen == 1 || seen == 2, "reader sees before or after");
        assert_eq!(*l.read(), 2);
    })
    .expect("rwlock protocol is clean");
    assert!(stats.exhausted);
}

#[test]
fn atomics_order_and_do_not_race() {
    let stats = explore(&dfs(10_000), || {
        use das_check::sync::atomic::{AtomicBool, Ordering};
        let cell = Arc::new(RaceCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (c, fl) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = das_check::thread::spawn(move || {
            c.set(9);
            fl.store(true, Ordering::Release);
        });
        // Acquire loop: atomics are modeled SC, so once the flag reads
        // true the write to the cell happens-before our read.
        if flag.load(das_check::sync::atomic::Ordering::Acquire) {
            assert_eq!(cell.get(), 9);
        }
        t.join().unwrap();
    })
    .expect("release/acquire edge suppresses the race");
    assert!(stats.exhausted);
}
