//! `das-sync`: the workspace's single doorway to synchronization.
//!
//! Normal builds re-export the vendored `parking_lot` / `crossbeam`
//! shims and `std::sync::atomic` unchanged — pure `pub use`, zero
//! overhead, byte-identical behavior. Under `RUSTFLAGS="--cfg
//! das_model"` every re-export flips to the `das-check` model
//! primitives, whose every operation is a controlled yield point for
//! the schedule-exploration checker (see `crates/check` and DESIGN.md,
//! "Concurrency model (machine-checked)").
//!
//! The `das-lint` `raw-sync` rule keeps this the *only* doorway: direct
//! `std::sync` / `parking_lot` / `crossbeam::channel` use outside this
//! crate is a lint violation, because any primitive that bypasses the
//! facade is invisible to the model checker and silently shrinks its
//! guarantees.

#![warn(missing_docs)]

#[cfg(not(das_model))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(das_model)]
pub use das_check::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Atomics: `std::sync::atomic` normally, model atomics (every op an SC
/// yield point) under `cfg(das_model)`.
pub mod atomic {
    #[cfg(not(das_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(das_model)]
    pub use das_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// MPMC channels: the vendored `crossbeam::channel` shim normally,
/// model channels under `cfg(das_model)`.
pub mod channel {
    #[cfg(not(das_model))]
    pub use crossbeam::channel::{
        bounded, unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        TryRecvError,
    };

    #[cfg(das_model)]
    pub use das_check::sync::channel::{
        bounded, unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        TryRecvError,
    };
}

/// Thread spawn/join: `std::thread` normally, model threads under
/// `cfg(das_model)`. Only the subset the model can control is exposed —
/// notably no `sleep` (sleeping is meaningless under a controlled
/// scheduler; synchronize on state instead).
pub mod thread {
    #[cfg(not(das_model))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(das_model)]
    pub use das_check::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    // These run in whichever mode the test build selects; they assert
    // the facade surface itself, so the same source must pass both ways.
    use super::*;
    use std::sync::Arc;

    fn facade_roundtrip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let (tx, rx) = channel::bounded::<u32>(2);
        let flag = Arc::new(atomic::AtomicBool::new(false));

        let pair2 = Arc::clone(&pair);
        let flag2 = Arc::clone(&flag);
        let worker = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut g = lock.lock();
            *g = 7;
            cv.notify_all();
            drop(g);
            flag2.store(true, atomic::Ordering::SeqCst);
            tx.send(42).unwrap();
        });

        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        while *g == 0 {
            cv.wait(&mut g);
        }
        assert_eq!(*g, 7);
        drop(g);
        assert_eq!(rx.recv(), Ok(42));
        assert!(flag.load(atomic::Ordering::SeqCst));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        worker.join().unwrap();
    }

    #[cfg(not(das_model))]
    #[test]
    fn normal_mode_delegates() {
        facade_roundtrip();
    }

    #[cfg(das_model)]
    #[test]
    fn model_mode_routes_through_checker() {
        let stats = das_check::check(&das_check::Config::default(), facade_roundtrip);
        assert!(stats.schedules > 0);
    }

    #[test]
    fn rwlock_surface() {
        let run = || {
            let l = RwLock::new(vec![1, 2]);
            assert_eq!(l.read().len(), 2);
            l.write().push(3);
            assert_eq!(l.read().len(), 3);
        };
        #[cfg(not(das_model))]
        run();
        #[cfg(das_model)]
        das_check::check(&das_check::Config::default(), run);
    }
}
