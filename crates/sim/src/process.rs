//! Arrival processes: Poisson, deterministic, Markov-modulated (MMPP),
//! on-off bursts, and piecewise-constant rate schedules for time-varying
//! load experiments.

use rand::RngCore;

use crate::dist::{Exponential, Sample};
use crate::time::{SimDuration, SimTime};

/// A stateful point process generating arrival instants.
pub trait ArrivalProcess {
    /// Returns the next arrival strictly after `now`, or `None` if the
    /// process has ended.
    fn next_arrival(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Option<SimTime>;

    /// The long-run average rate in arrivals per second, when known.
    fn average_rate(&self) -> Option<f64>;
}

/// Homogeneous Poisson arrivals at a constant rate.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    exp: Exponential,
}

impl PoissonProcess {
    /// Poisson process with `rate > 0` arrivals per second.
    pub fn new(rate: f64) -> Self {
        PoissonProcess {
            exp: Exponential::new(rate),
        }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_arrival(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Option<SimTime> {
        let gap = SimDuration::from_secs_f64(self.exp.sample(rng)).max(SimDuration::from_nanos(1));
        now.checked_add(gap)
    }
    fn average_rate(&self) -> Option<f64> {
        Some(self.exp.rate())
    }
}

/// Deterministic arrivals at fixed intervals.
#[derive(Debug, Clone, Copy)]
pub struct DeterministicProcess {
    interval: SimDuration,
}

impl DeterministicProcess {
    /// Arrivals every `interval`; must be non-zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be non-zero");
        DeterministicProcess { interval }
    }

    /// Arrivals at `rate > 0` per second, evenly spaced.
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate > 0.0);
        Self::new(SimDuration::from_secs_f64(1.0 / rate))
    }
}

impl ArrivalProcess for DeterministicProcess {
    fn next_arrival(&mut self, now: SimTime, _rng: &mut dyn RngCore) -> Option<SimTime> {
        now.checked_add(self.interval)
    }
    fn average_rate(&self) -> Option<f64> {
        Some(1.0 / self.interval.as_secs_f64())
    }
}

/// A piecewise-constant rate profile used for time-varying load.
///
/// The profile is a list of `(start_time, rate)` steps; the rate at time `t`
/// is that of the last step with `start_time <= t`. Before the first step the
/// first step's rate applies. The profile can optionally repeat with a
/// period.
#[derive(Debug, Clone)]
pub struct RateSchedule {
    steps: Vec<(SimTime, f64)>,
    period: Option<SimDuration>,
}

impl RateSchedule {
    /// Builds a schedule from `(start, rate)` steps sorted by start time.
    /// Panics if `steps` is empty, unsorted, or contains a non-positive or
    /// non-finite rate.
    pub fn new(steps: Vec<(SimTime, f64)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        assert!(
            steps.windows(2).all(|w| w[0].0 <= w[1].0),
            "steps must be sorted by start time"
        );
        assert!(steps.iter().all(|(_, r)| r.is_finite() && *r > 0.0));
        RateSchedule {
            steps,
            period: None,
        }
    }

    /// A constant-rate schedule.
    pub fn constant(rate: f64) -> Self {
        RateSchedule::new(vec![(SimTime::ZERO, rate)])
    }

    /// Makes the schedule repeat with `period` (measured from time zero).
    /// All step start times must fall inside one period.
    pub fn repeating(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero());
        assert!(self
            .steps
            .iter()
            .all(|(t, _)| t.as_nanos() < period.as_nanos()));
        self.period = Some(period);
        self
    }

    /// The rate in effect at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let t = match self.period {
            Some(p) => SimTime::from_nanos(t.as_nanos() % p.as_nanos()),
            None => t,
        };
        match self.steps.binary_search_by(|(s, _)| s.cmp(&t)) {
            Ok(i) => self.steps[i].1,
            Err(0) => self.steps[0].1,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The maximum rate over the whole schedule.
    pub fn peak_rate(&self) -> f64 {
        self.steps.iter().map(|(_, r)| *r).fold(f64::MIN, f64::max)
    }

    /// Time-average rate over one period (or over the finite step list,
    /// weighting the final step as one step-gap — callers needing exact
    /// horizons should integrate themselves).
    pub fn average_rate_over(&self, horizon: SimDuration) -> f64 {
        let end = SimTime::ZERO + horizon;
        let mut acc = 0.0;
        let mut t = SimTime::ZERO;
        // Integrate in 1ms slices; schedules are coarse so this is exact
        // enough for reporting and keeps the code independent of period
        // handling corner cases.
        let slice = SimDuration::from_millis(1)
            .min(horizon / 100)
            .max(SimDuration::from_nanos(1));
        let mut n = 0u64;
        while t < end {
            acc += self.rate_at(t);
            n += 1;
            t += slice;
        }
        if n == 0 {
            self.steps[0].1
        } else {
            acc / n as f64
        }
    }
}

/// Non-homogeneous Poisson process driven by a [`RateSchedule`], generated
/// with Lewis–Shedler thinning against the schedule's peak rate.
#[derive(Debug, Clone)]
pub struct ModulatedPoissonProcess {
    schedule: RateSchedule,
    peak: f64,
}

impl ModulatedPoissonProcess {
    /// Creates the process from a schedule.
    pub fn new(schedule: RateSchedule) -> Self {
        let peak = schedule.peak_rate();
        ModulatedPoissonProcess { schedule, peak }
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }
}

impl ArrivalProcess for ModulatedPoissonProcess {
    fn next_arrival(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Option<SimTime> {
        let exp = Exponential::new(self.peak);
        let mut t = now;
        loop {
            let gap = SimDuration::from_secs_f64(exp.sample(rng)).max(SimDuration::from_nanos(1));
            t = t.checked_add(gap)?;
            let accept_p = self.schedule.rate_at(t) / self.peak;
            if crate::rng::open_unit(rng) <= accept_p {
                return Some(t);
            }
        }
    }
    fn average_rate(&self) -> Option<f64> {
        None // depends on the horizon; report via the schedule instead
    }
}

/// Two-state Markov-modulated Poisson process (MMPP-2).
///
/// The process alternates between two exponentially-distributed-duration
/// states with different Poisson rates — the classic bursty-traffic model.
#[derive(Debug, Clone)]
pub struct Mmpp2 {
    rates: [f64; 2],
    /// Mean sojourn time in each state, seconds.
    sojourn: [f64; 2],
    state: usize,
    /// When the current state ends.
    state_end: SimTime,
}

impl Mmpp2 {
    /// MMPP with per-state arrival `rates` and mean state `sojourn` times
    /// (seconds). All parameters must be positive.
    pub fn new(rates: [f64; 2], sojourn: [f64; 2]) -> Self {
        assert!(rates.iter().all(|r| r.is_finite() && *r > 0.0));
        assert!(sojourn.iter().all(|s| s.is_finite() && *s > 0.0));
        Mmpp2 {
            rates,
            sojourn,
            state: 0,
            state_end: SimTime::ZERO,
        }
    }

    fn roll_state(&mut self, now: SimTime, rng: &mut dyn RngCore) {
        while self.state_end <= now {
            let dwell = Exponential::with_mean(self.sojourn[self.state]).sample(rng);
            let dwell = SimDuration::from_secs_f64(dwell).max(SimDuration::from_nanos(1));
            self.state_end = match self.state_end.checked_add(dwell) {
                Some(t) => t,
                None => SimTime::MAX,
            };
            if self.state_end <= now {
                self.state ^= 1;
            }
        }
    }
}

impl ArrivalProcess for Mmpp2 {
    fn next_arrival(&mut self, now: SimTime, rng: &mut dyn RngCore) -> Option<SimTime> {
        let mut t = now;
        loop {
            self.roll_state(t, rng);
            let gap = Exponential::new(self.rates[self.state]).sample(rng);
            let gap = SimDuration::from_secs_f64(gap).max(SimDuration::from_nanos(1));
            let cand = t.checked_add(gap)?;
            if cand <= self.state_end {
                return Some(cand);
            }
            // The state ends before the candidate arrival: restart the
            // memoryless draw from the state boundary.
            t = self.state_end;
            self.state ^= 1;
        }
    }
    fn average_rate(&self) -> Option<f64> {
        let w0 = self.sojourn[0] / (self.sojourn[0] + self.sojourn[1]);
        Some(w0 * self.rates[0] + (1.0 - w0) * self.rates[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedFactory;

    fn count_arrivals(p: &mut dyn ArrivalProcess, horizon_s: u64, seed: &str) -> usize {
        let mut rng = SeedFactory::new(21).stream(seed, 0);
        let end = SimTime::from_secs(horizon_s);
        let mut t = SimTime::ZERO;
        let mut n = 0;
        while let Some(next) = p.next_arrival(t, &mut rng) {
            if next > end {
                break;
            }
            t = next;
            n += 1;
        }
        n
    }

    #[test]
    fn poisson_rate_matches() {
        let mut p = PoissonProcess::new(1000.0);
        let n = count_arrivals(&mut p, 20, "poisson");
        let rate = n as f64 / 20.0;
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate = {rate}");
        assert_eq!(p.average_rate(), Some(1000.0));
    }

    #[test]
    fn deterministic_is_evenly_spaced() {
        let mut p = DeterministicProcess::with_rate(100.0);
        let mut rng = SeedFactory::new(1).stream("det", 0);
        let t1 = p.next_arrival(SimTime::ZERO, &mut rng).unwrap();
        let t2 = p.next_arrival(t1, &mut rng).unwrap();
        assert_eq!(t2 - t1, SimDuration::from_millis(10));
        assert_eq!(count_arrivals(&mut p, 1, "det"), 100);
    }

    #[test]
    fn schedule_lookup() {
        let s = RateSchedule::new(vec![
            (SimTime::ZERO, 100.0),
            (SimTime::from_secs(1), 500.0),
            (SimTime::from_secs(2), 50.0),
        ]);
        assert_eq!(s.rate_at(SimTime::from_millis(500)), 100.0);
        assert_eq!(s.rate_at(SimTime::from_secs(1)), 500.0);
        assert_eq!(s.rate_at(SimTime::from_millis(1500)), 500.0);
        assert_eq!(s.rate_at(SimTime::from_secs(10)), 50.0);
        assert_eq!(s.peak_rate(), 500.0);
    }

    #[test]
    fn schedule_repeats() {
        let s = RateSchedule::new(vec![(SimTime::ZERO, 100.0), (SimTime::from_secs(1), 500.0)])
            .repeating(SimDuration::from_secs(2));
        assert_eq!(s.rate_at(SimTime::from_millis(2500)), 100.0);
        assert_eq!(s.rate_at(SimTime::from_millis(3500)), 500.0);
    }

    #[test]
    fn modulated_poisson_tracks_schedule() {
        let s = RateSchedule::new(vec![
            (SimTime::ZERO, 200.0),
            (SimTime::from_secs(5), 2000.0),
        ]);
        let mut p = ModulatedPoissonProcess::new(s);
        let mut rng = SeedFactory::new(22).stream("mod", 0);
        let mut t = SimTime::ZERO;
        let mut low = 0usize;
        let mut high = 0usize;
        loop {
            let next = p.next_arrival(t, &mut rng).unwrap();
            if next > SimTime::from_secs(10) {
                break;
            }
            if next < SimTime::from_secs(5) {
                low += 1;
            } else {
                high += 1;
            }
            t = next;
        }
        let low_rate = low as f64 / 5.0;
        let high_rate = high as f64 / 5.0;
        assert!((low_rate - 200.0).abs() / 200.0 < 0.15, "low = {low_rate}");
        assert!(
            (high_rate - 2000.0).abs() / 2000.0 < 0.15,
            "high = {high_rate}"
        );
    }

    #[test]
    fn mmpp_average_rate() {
        let mut p = Mmpp2::new([100.0, 1000.0], [1.0, 1.0]);
        assert_eq!(p.average_rate(), Some(550.0));
        let n = count_arrivals(&mut p, 60, "mmpp");
        let rate = n as f64 / 60.0;
        assert!((rate - 550.0).abs() / 550.0 < 0.2, "rate = {rate}");
    }

    #[test]
    fn mmpp_is_bursty() {
        // Count arrivals in 100ms windows; burstiness shows up as a high
        // variance-to-mean ratio compared to a Poisson process.
        let mut p = Mmpp2::new([50.0, 5000.0], [0.5, 0.5]);
        let mut rng = SeedFactory::new(23).stream("burst", 0);
        let mut t = SimTime::ZERO;
        let horizon = SimTime::from_secs(30);
        let mut windows = vec![0f64; 300];
        while let Some(next) = p.next_arrival(t, &mut rng) {
            if next > horizon {
                break;
            }
            windows[(next.as_nanos() / 100_000_000) as usize % 300] += 1.0;
            t = next;
        }
        let mean = windows.iter().sum::<f64>() / windows.len() as f64;
        let var = windows.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / windows.len() as f64;
        assert!(var / mean > 5.0, "dispersion = {}", var / mean);
    }

    #[test]
    fn average_rate_over_integrates() {
        let s = RateSchedule::new(vec![(SimTime::ZERO, 100.0), (SimTime::from_secs(1), 300.0)]);
        let avg = s.average_rate_over(SimDuration::from_secs(2));
        assert!((avg - 200.0).abs() < 10.0, "avg = {avg}");
    }
}
