//! The future event list: a deterministic priority queue of timestamped
//! events.
//!
//! Events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO tie-breaking via a monotone sequence number), which makes
//! whole simulations reproducible bit-for-bit given the same seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: a payload to be delivered at a given simulated time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Delivery time.
    pub time: SimTime,
    /// Insertion sequence number; breaks ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future event list with deterministic FIFO tie-breaking.
///
/// ```
/// use das_sim::queue::EventQueue;
/// use das_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// q.schedule(SimTime::from_millis(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E: std::fmt::Debug> std::fmt::Debug for HeapEntry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEntry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .field("event", &self.event)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` for delivery at `time` and returns its sequence
    /// number.
    pub fn schedule(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, event });
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            time: e.time,
            seq: e.seq,
            event: e.event,
        })
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(7), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(5), ());
        q.schedule(SimTime::from_nanos(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(5), "b");
        assert_eq!(q.pop().unwrap().event, "b");
        q.schedule(SimTime::from_nanos(1), "c");
        // "c" is earlier even though scheduled later.
        assert_eq!(q.pop().unwrap().event, "c");
        assert_eq!(q.pop().unwrap().event, "a");
    }
}
