//! Continuous probability distributions.
//!
//! The allowed dependency set does not include `rand_distr`, so the samplers
//! needed by the simulator are implemented here: exponential, uniform,
//! lognormal (Box–Muller), Pareto, bounded Pareto, Weibull, deterministic,
//! finite mixtures, and empirical distributions. All samplers implement
//! [`Sample`] and draw from a caller-provided RNG so streams stay
//! deterministic.

use rand::RngCore;

use crate::rng::open_unit;

/// A continuous distribution sampled with an external RNG.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// The distribution mean, when finite and known in closed form.
    fn mean(&self) -> Option<f64>;
}

/// Always returns the same value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// A point mass at `value`. Panics if `value` is not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "deterministic value must be finite");
        Deterministic { value }
    }
}

impl Sample for Deterministic {
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }
    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }
}

/// Uniform on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Uniform on `[low, high)`. Panics unless `low <= high` and both are
    /// finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low.is_finite() && high.is_finite() && low <= high);
        Uniform { low, high }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = open_unit(rng);
        self.low + (self.high - self.low) * (1.0 - u)
    }
    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.low + self.high))
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "rate must be positive");
        Exponential { lambda }
    }

    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { lambda: 1.0 / mean }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        -open_unit(rng).ln() / self.lambda
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Lognormal: `exp(N(mu, sigma^2))`, sampled via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lognormal {
    mu: f64,
    sigma: f64,
}

impl Lognormal {
    /// Lognormal with log-space parameters `mu` and `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Lognormal { mu, sigma }
    }

    /// Lognormal parameterized by its own (linear-space) mean and the
    /// log-space sigma. Convenient for latency models quoted as
    /// "mean 200µs, sigma 0.5".
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0);
        assert!(sigma.is_finite() && sigma >= 0.0);
        // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        Lognormal {
            mu: mean.ln() - 0.5 * sigma * sigma,
            sigma,
        }
    }

    fn standard_normal(rng: &mut dyn RngCore) -> f64 {
        // Box–Muller; one value per call keeps the sampler stateless.
        let u1 = open_unit(rng);
        let u2 = open_unit(rng);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Sample for Lognormal {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }
    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// Pareto with scale `x_min > 0` and shape `alpha > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Pareto with scale `x_min > 0` and shape `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min.is_finite() && x_min > 0.0);
        assert!(alpha.is_finite() && alpha > 0.0);
        Pareto { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.x_min / open_unit(rng).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

/// Bounded (truncated) Pareto on `[low, high]` with shape `alpha`.
///
/// The classic heavy-tailed-but-bounded job-size model used in scheduling
/// studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    low: f64,
    high: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Bounded Pareto on `[low, high]` with shape `alpha > 0`; requires
    /// `0 < low < high`.
    pub fn new(low: f64, high: f64, alpha: f64) -> Self {
        assert!(low.is_finite() && low > 0.0 && high.is_finite() && high > low);
        assert!(alpha.is_finite() && alpha > 0.0);
        BoundedPareto { low, high, alpha }
    }
}

impl Sample for BoundedPareto {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = open_unit(rng);
        let la = self.low.powf(self.alpha);
        let ha = self.high.powf(self.alpha);
        // Inverse CDF of the truncated Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
    fn mean(&self) -> Option<f64> {
        let (l, h, a) = (self.low, self.high, self.alpha);
        if (a - 1.0).abs() < 1e-12 {
            // alpha == 1 has a log-form mean.
            Some((h / l).ln() * l * h / (h - l))
        } else {
            let num = l.powf(a) * a / (a - 1.0) * (l.powf(1.0 - a) - h.powf(1.0 - a));
            let den = 1.0 - (l / h).powf(a);
            Some(num / den)
        }
    }
}

/// Weibull with scale `lambda > 0` and shape `k > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    lambda: f64,
    k: f64,
}

impl Weibull {
    /// Weibull with scale `lambda > 0` and shape `k > 0`.
    pub fn new(lambda: f64, k: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0);
        assert!(k.is_finite() && k > 0.0);
        Weibull { lambda, k }
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.lambda * (-open_unit(rng).ln()).powf(1.0 / self.k)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.lambda * gamma(1.0 + 1.0 / self.k))
    }
}

/// Erlang-k: the sum of `k` independent exponentials — the standard
/// low-variability service-time model (CV² = 1/k).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    per_stage: Exponential,
}

impl Erlang {
    /// Erlang with `k >= 1` stages and total mean `mean > 0`.
    pub fn with_mean(k: u32, mean: f64) -> Self {
        assert!(k >= 1, "Erlang needs at least one stage");
        assert!(mean.is_finite() && mean > 0.0);
        Erlang {
            k,
            per_stage: Exponential::with_mean(mean / k as f64),
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.k
    }
}

impl Sample for Erlang {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (0..self.k).map(|_| self.per_stage.sample(rng)).sum()
    }
    fn mean(&self) -> Option<f64> {
        self.per_stage.mean().map(|m| m * self.k as f64)
    }
}

/// Two-branch hyperexponential — the standard *high*-variability service
/// model: with probability `p` an exponential of mean `mean_a`, else of
/// mean `mean_b` (CV² > 1 whenever the means differ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperexponential {
    p: f64,
    a: Exponential,
    b: Exponential,
}

impl Hyperexponential {
    /// Hyperexponential choosing mean `mean_a` with probability `p`.
    pub fn new(p: f64, mean_a: f64, mean_b: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        Hyperexponential {
            p,
            a: Exponential::with_mean(mean_a),
            b: Exponential::with_mean(mean_b),
        }
    }

    /// A hyperexponential with the given overall `mean` and squared
    /// coefficient of variation `cv2 >= 1`, using balanced means
    /// (the standard two-moment fit).
    pub fn with_mean_cv2(mean: f64, cv2: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0);
        assert!(cv2 >= 1.0, "hyperexponential requires CV^2 >= 1");
        // Balanced-means fit: p chosen so both branches contribute half the
        // mean.
        let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        Hyperexponential::new(p, mean / (2.0 * p), mean / (2.0 * (1.0 - p)))
    }
}

impl Sample for Hyperexponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        if open_unit(rng) <= self.p {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }
    fn mean(&self) -> Option<f64> {
        Some(self.p / self.a.rate() + (1.0 - self.p) / self.b.rate())
    }
}

/// A finite mixture of component distributions with given weights.
pub struct Mixture {
    components: Vec<(f64, Box<dyn Sample + Send + Sync>)>,
    total_weight: f64,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .field("total_weight", &self.total_weight)
            .finish()
    }
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs. Panics if empty or
    /// if any weight is negative or all weights are zero.
    pub fn new(components: Vec<(f64, Box<dyn Sample + Send + Sync>)>) -> Self {
        assert!(!components.is_empty(), "mixture needs >= 1 component");
        let total_weight: f64 = components
            .iter()
            .map(|(w, _)| {
                assert!(w.is_finite() && *w >= 0.0, "weights must be >= 0");
                *w
            })
            .sum();
        assert!(total_weight > 0.0, "at least one weight must be positive");
        Mixture {
            components,
            total_weight,
        }
    }

    /// A two-point bimodal distribution: `value_a` with probability `p_a`,
    /// else `value_b`.
    pub fn bimodal(value_a: f64, p_a: f64, value_b: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_a));
        Mixture::new(vec![
            (p_a, Box::new(Deterministic::new(value_a))),
            (1.0 - p_a, Box::new(Deterministic::new(value_b))),
        ])
    }
}

impl Sample for Mixture {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut pick = open_unit(rng) * self.total_weight;
        for (w, c) in &self.components {
            if pick <= *w {
                return c.sample(rng);
            }
            pick -= *w;
        }
        // Floating-point slack: fall back to the last component.
        // das-lint: allow(unwrap-lib): Mixture::new asserts the component list is non-empty
        self.components.last().expect("non-empty mixture").1.sample(rng)
    }
    fn mean(&self) -> Option<f64> {
        let mut acc = 0.0;
        for (w, c) in &self.components {
            acc += w / self.total_weight * c.mean()?;
        }
        Some(acc)
    }
}

/// Samples uniformly from a fixed set of observed values (an empirical
/// distribution).
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// Builds an empirical distribution from observed values. Panics if
    /// `values` is empty or contains non-finite entries.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical sample set must be non-empty");
        assert!(values.iter().all(|v| v.is_finite()));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Empirical { values, mean }
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let idx = (rng.next_u64() % self.values.len() as u64) as usize;
        self.values[idx]
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
}

/// Clamps another distribution's output to `[low, high]`.
#[derive(Debug, Clone, Copy)]
pub struct Clamped<D> {
    inner: D,
    low: f64,
    high: f64,
}

impl<D: Sample> Clamped<D> {
    /// Wraps `inner`, clamping every draw into `[low, high]`.
    pub fn new(inner: D, low: f64, high: f64) -> Self {
        assert!(low <= high);
        Clamped { inner, low, high }
    }
}

impl<D: Sample> Sample for Clamped<D> {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.inner.sample(rng).clamp(self.low, self.high)
    }
    fn mean(&self) -> Option<f64> {
        None // clamping shifts the mean; no closed form in general
    }
}

/// Lanczos approximation of the gamma function (for Weibull means).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedFactory;

    fn sample_mean(d: &dyn Sample, n: usize, seed_label: &str) -> f64 {
        let mut rng = SeedFactory::new(99).stream(seed_label, 0);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(3.5);
        let mut rng = SeedFactory::new(1).stream("d", 0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), Some(3.5));
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut rng = SeedFactory::new(1).stream("u", 0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=6.0).contains(&x));
        }
        assert!((sample_mean(&d, 50_000, "u2") - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(2.0);
        assert_eq!(d.mean(), Some(2.0));
        assert!((sample_mean(&d, 200_000, "e") - 2.0).abs() < 0.05);
        assert!((Exponential::new(4.0).rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_mean_matches() {
        let d = Lognormal::with_mean(10.0, 0.5);
        assert!((d.mean().unwrap() - 10.0).abs() < 1e-9);
        assert!((sample_mean(&d, 300_000, "l") - 10.0).abs() < 0.2);
    }

    #[test]
    fn pareto_mean_matches() {
        let d = Pareto::new(1.0, 2.5);
        let expect = 2.5 / 1.5;
        assert!((d.mean().unwrap() - expect).abs() < 1e-12);
        assert!((sample_mean(&d, 400_000, "p") - expect).abs() < 0.05);
        assert_eq!(Pareto::new(1.0, 0.9).mean(), None);
    }

    #[test]
    fn bounded_pareto_within_bounds_and_mean() {
        let d = BoundedPareto::new(1.0, 1000.0, 1.3);
        let mut rng = SeedFactory::new(5).stream("bp", 0);
        for _ in 0..20_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0 + 1e-9).contains(&x), "x = {x}");
        }
        let analytic = d.mean().unwrap();
        let empirical = sample_mean(&d, 400_000, "bp2");
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "analytic {analytic}, empirical {empirical}"
        );
    }

    #[test]
    fn bounded_pareto_alpha_one_mean() {
        let d = BoundedPareto::new(1.0, 100.0, 1.0);
        let analytic = d.mean().unwrap();
        let empirical = sample_mean(&d, 400_000, "bp3");
        assert!((empirical - analytic).abs() / analytic < 0.05);
    }

    #[test]
    fn weibull_mean_matches() {
        let d = Weibull::new(2.0, 1.5);
        let analytic = d.mean().unwrap();
        let empirical = sample_mean(&d, 300_000, "w");
        assert!((empirical - analytic).abs() / analytic < 0.02);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(3.0, 1.0);
        assert!((d.mean().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn erlang_mean_and_low_variance() {
        let d = Erlang::with_mean(4, 2.0);
        assert_eq!(d.stages(), 4);
        assert!((d.mean().unwrap() - 2.0).abs() < 1e-12);
        let mut rng = SeedFactory::new(50).stream("erl", 0);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.03, "mean = {mean}");
        // CV^2 = 1/k = 0.25 for Erlang-4.
        let cv2 = var / (mean * mean);
        assert!((cv2 - 0.25).abs() < 0.02, "cv2 = {cv2}");
    }

    #[test]
    fn erlang_one_is_exponential() {
        let d = Erlang::with_mean(1, 3.0);
        assert!((d.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hyperexponential_mean_and_high_variance() {
        let d = Hyperexponential::with_mean_cv2(1.0, 9.0);
        assert!((d.mean().unwrap() - 1.0).abs() < 1e-9);
        let mut rng = SeedFactory::new(51).stream("hyp", 0);
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
        let cv2 = var / (mean * mean);
        assert!((cv2 - 9.0).abs() < 0.8, "cv2 = {cv2}");
    }

    #[test]
    fn hyperexponential_explicit_branches() {
        let d = Hyperexponential::new(0.5, 1.0, 3.0);
        assert!((d.mean().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "CV^2 >= 1")]
    fn hyperexponential_rejects_low_cv() {
        let _ = Hyperexponential::with_mean_cv2(1.0, 0.5);
    }

    #[test]
    fn mixture_bimodal() {
        let d = Mixture::bimodal(1.0, 0.8, 10.0);
        assert!((d.mean().unwrap() - (0.8 + 2.0)).abs() < 1e-12);
        let m = sample_mean(&d, 200_000, "m");
        assert!((m - 2.8).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn empirical_draws_only_observed() {
        let d = Empirical::new(vec![1.0, 2.0, 4.0]);
        let mut rng = SeedFactory::new(8).stream("emp", 0);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 4.0);
        }
        assert!((d.mean().unwrap() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_respects_bounds() {
        let d = Clamped::new(Pareto::new(1.0, 1.1), 0.0, 5.0);
        let mut rng = SeedFactory::new(9).stream("c", 0);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) <= 5.0);
        }
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma(3.0) - 2.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
