//! Crash-stop fault schedules.
//!
//! A [`FaultSchedule`] lists per-server crash windows: a server is *down*
//! (crash-stop: it loses all queued and in-service work, accepts nothing)
//! from `down_secs` until `up_secs`, when it recovers empty. Schedules are
//! declarative serde data so experiments can describe fault scenarios the
//! same way they describe workloads.
//!
//! Gray failures (a server still up but serving at a tiny fraction of its
//! rate) are expressed through the existing per-server rate multipliers,
//! not here — crash windows model the *detectable* loss of a server.

use serde::{Deserialize, Serialize};

/// One crash-stop window for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// Affected server index.
    pub server: u32,
    /// When the server crashes, seconds.
    pub down_secs: f64,
    /// When it recovers (empty), seconds (`f64::INFINITY` = never).
    pub up_secs: f64,
}

impl CrashWindow {
    /// True while the server is down under this window.
    pub fn is_down_at(&self, t_secs: f64) -> bool {
        t_secs >= self.down_secs && t_secs < self.up_secs
    }
}

/// A full crash schedule: the union of per-server windows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Crash windows, in no particular order.
    pub crashes: Vec<CrashWindow>,
}

impl FaultSchedule {
    /// A schedule with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the schedule contains at least one window.
    pub fn is_active(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// True if `server` is inside any crash window at `t_secs`.
    pub fn is_down(&self, server: u32, t_secs: f64) -> bool {
        self.crashes
            .iter()
            .any(|w| w.server == server && w.is_down_at(t_secs))
    }

    /// Every crash/recover transition as `(t_secs, server, goes_down)`,
    /// sorted by time (recoveries at infinity are omitted — the server
    /// never comes back).
    pub fn transitions(&self) -> Vec<(f64, u32, bool)> {
        let mut out = Vec::with_capacity(self.crashes.len() * 2);
        for w in &self.crashes {
            out.push((w.down_secs, w.server, true));
            if w.up_secs.is_finite() {
                out.push((w.up_secs, w.server, false));
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// First malformed window, if any: a window must have
    /// `0 <= down < up` and target a server below `servers`.
    pub fn first_invalid(&self, servers: u32) -> Option<&CrashWindow> {
        self.crashes.iter().find(|w| {
            w.server >= servers
                || !w.down_secs.is_finite()
                || w.down_secs < 0.0
                || w.up_secs <= w.down_secs
                || w.up_secs.is_nan()
        })
    }

    /// First server with two overlapping crash windows, if any.
    ///
    /// Overlapping windows on one server are ambiguous: the engine books a
    /// single crash/recover transition pair per window, so a recovery from
    /// the first window would "revive" a server the second window still
    /// holds down. Windows are half-open `[down, up)`, so one window's `up`
    /// equal to the next window's `down` (back-to-back) is allowed.
    pub fn first_overlap(&self) -> Option<u32> {
        let mut by_server: Vec<&CrashWindow> = self.crashes.iter().collect();
        by_server.sort_by(|a, b| {
            a.server
                .cmp(&b.server)
                .then(a.down_secs.total_cmp(&b.down_secs))
        });
        by_server
            .windows(2)
            .find(|pair| pair[0].server == pair[1].server && pair[1].down_secs < pair[0].up_secs)
            .map(|pair| pair[0].server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_bound_downtime() {
        let w = CrashWindow {
            server: 2,
            down_secs: 1.0,
            up_secs: 3.0,
        };
        assert!(!w.is_down_at(0.999));
        assert!(w.is_down_at(1.0));
        assert!(w.is_down_at(2.999));
        assert!(!w.is_down_at(3.0));
    }

    #[test]
    fn schedule_queries_by_server() {
        let s = FaultSchedule {
            crashes: vec![
                CrashWindow {
                    server: 0,
                    down_secs: 1.0,
                    up_secs: 2.0,
                },
                CrashWindow {
                    server: 0,
                    down_secs: 4.0,
                    up_secs: f64::INFINITY,
                },
            ],
        };
        assert!(s.is_active());
        assert!(s.is_down(0, 1.5));
        assert!(!s.is_down(0, 3.0));
        assert!(s.is_down(0, 100.0)); // never recovers
        assert!(!s.is_down(1, 1.5));
    }

    #[test]
    fn transitions_sorted_and_skip_infinite_recovery() {
        let s = FaultSchedule {
            crashes: vec![
                CrashWindow {
                    server: 1,
                    down_secs: 5.0,
                    up_secs: f64::INFINITY,
                },
                CrashWindow {
                    server: 0,
                    down_secs: 1.0,
                    up_secs: 2.0,
                },
            ],
        };
        let t = s.transitions();
        assert_eq!(t, vec![(1.0, 0, true), (2.0, 0, false), (5.0, 1, true)]);
    }

    #[test]
    fn validation_catches_bad_windows() {
        let ok = FaultSchedule {
            crashes: vec![CrashWindow {
                server: 3,
                down_secs: 0.0,
                up_secs: 1.0,
            }],
        };
        assert!(ok.first_invalid(4).is_none());
        assert!(ok.first_invalid(3).is_some()); // server out of range
        let backwards = FaultSchedule {
            crashes: vec![CrashWindow {
                server: 0,
                down_secs: 2.0,
                up_secs: 1.0,
            }],
        };
        assert!(backwards.first_invalid(4).is_some());
        assert!(FaultSchedule::none().first_invalid(0).is_none());
        assert!(!FaultSchedule::none().is_active());
    }

    #[test]
    fn overlap_detection() {
        let mk = |server, down_secs, up_secs| CrashWindow {
            server,
            down_secs,
            up_secs,
        };
        // Overlap on one server, regardless of declaration order.
        let s = FaultSchedule {
            crashes: vec![mk(1, 2.0, 4.0), mk(1, 3.0, 5.0)],
        };
        assert_eq!(s.first_overlap(), Some(1));
        let s = FaultSchedule {
            crashes: vec![mk(1, 3.0, 5.0), mk(1, 2.0, 4.0)],
        };
        assert_eq!(s.first_overlap(), Some(1));
        // A never-recovering window overlaps anything after it.
        let s = FaultSchedule {
            crashes: vec![mk(0, 1.0, f64::INFINITY), mk(0, 9.0, 10.0)],
        };
        assert_eq!(s.first_overlap(), Some(0));
        // Same instants on different servers never overlap.
        let s = FaultSchedule {
            crashes: vec![mk(0, 2.0, 4.0), mk(1, 2.0, 4.0)],
        };
        assert_eq!(s.first_overlap(), None);
        // Back-to-back windows are allowed (half-open [down, up)).
        let s = FaultSchedule {
            crashes: vec![mk(2, 1.0, 2.0), mk(2, 2.0, 3.0)],
        };
        assert_eq!(s.first_overlap(), None);
        assert_eq!(FaultSchedule::none().first_overlap(), None);
    }
}
