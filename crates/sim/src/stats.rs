//! Small online statistics used inside the kernel (Welford mean/variance
//! and exponentially weighted moving averages). Heavier machinery
//! (histograms, quantiles) lives in `das-metrics`.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An exponentially weighted moving average with a fixed smoothing factor.
///
/// Used throughout the scheduler for tracking time-varying service rates and
/// queue depths (the "adaptive" part of DAS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `0 < alpha <= 1` (larger =
    /// faster adaptation).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current estimate, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate, or `default` before the first observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let data = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.record(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(10.0));
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            a.record(x);
            all.record(x);
        }
        for i in 50..100 {
            let x = (i as f64).sin() * 10.0;
            b.record(x);
            all.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.record(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(7.0), 7.0);
        for _ in 0..200 {
            e.record(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_tracks_change() {
        let mut e = Ewma::new(0.5);
        e.record(0.0);
        e.record(10.0);
        assert_eq!(e.value(), Some(5.0));
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
