//! # das-sim — deterministic discrete-event simulation kernel
//!
//! The substrate every other crate in this workspace runs on. It provides:
//!
//! * [`time`] — integer-nanosecond [`time::SimTime`] / [`time::SimDuration`];
//! * [`queue`] — a future event list with FIFO tie-breaking, making runs
//!   bit-for-bit reproducible;
//! * [`rng`] — labelled, independently seeded RNG streams;
//! * [`dist`] / [`discrete`] — the probability distributions needed by the
//!   workloads of the DAS paper (exponential, bounded Pareto, lognormal,
//!   Zipf, …), implemented locally because `rand_distr` is not in the
//!   approved dependency set;
//! * [`process`] — Poisson / MMPP / schedule-modulated arrival processes for
//!   time-varying-load experiments;
//! * [`fault`] — declarative crash-stop schedules for the fault-injection
//!   experiments;
//! * [`stats`] — Welford accumulators and EWMAs used by the adaptive
//!   scheduler.
//!
//! ## Example
//!
//! ```
//! use das_sim::prelude::*;
//!
//! // A reproducible Poisson arrival stream.
//! let seeds = SeedFactory::new(7);
//! let mut rng = seeds.stream("arrivals", 0);
//! let mut process = PoissonProcess::new(1_000.0);
//! let mut queue = EventQueue::new();
//! let mut t = SimTime::ZERO;
//! for id in 0..10u32 {
//!     t = process.next_arrival(t, &mut rng).unwrap();
//!     queue.schedule(t, id);
//! }
//! let first = queue.pop().unwrap();
//! assert_eq!(first.event, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod discrete;
pub mod dist;
pub mod fault;
pub mod process;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import of the kernel's most used types.
pub mod prelude {
    pub use crate::discrete::{SampleDiscrete, Zipf};
    pub use crate::dist::{Exponential, Sample};
    pub use crate::process::{ArrivalProcess, PoissonProcess, RateSchedule};
    pub use crate::queue::EventQueue;
    pub use crate::rng::{SeedFactory, SimRng};
    pub use crate::stats::{Ewma, OnlineStats};
    pub use crate::time::{SimDuration, SimTime};
}
