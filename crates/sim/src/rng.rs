//! Deterministic random-number streams.
//!
//! A simulation has one master [`SeedFactory`]; every component (each server,
//! each generator, each latency model) derives its own independent stream
//! from the master seed and a stable string label. Two runs with the same
//! master seed therefore produce identical results regardless of the order in
//! which components are constructed.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG type used throughout the simulator (ChaCha-based `StdRng`: fast,
/// seedable, portable across platforms).
pub type SimRng = StdRng;

/// Derives independent, reproducible RNG streams from a master seed.
///
/// ```
/// use das_sim::rng::SeedFactory;
/// use rand::RngCore;
///
/// let f = SeedFactory::new(42);
/// let mut a1 = f.stream("server", 3);
/// let mut a2 = f.stream("server", 3);
/// let mut b = f.stream("client", 3);
/// assert_eq!(a1.next_u64(), a2.next_u64()); // same label, same stream
/// let mut a3 = f.stream("server", 3);
/// assert_ne!(a3.next_u64(), b.next_u64()); // different labels diverge
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Creates a factory from a master seed.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns the derived 64-bit seed for `(label, index)` without
    /// constructing an RNG.
    pub fn derived_seed(&self, label: &str, index: u64) -> u64 {
        // FNV-1a over (master || label || index), finalized with SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.master.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        for &b in label.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        for &b in &index.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        splitmix64(h)
    }

    /// Creates the RNG stream for `(label, index)`.
    pub fn stream(&self, label: &str, index: u64) -> SimRng {
        SimRng::seed_from_u64(self.derived_seed(label, index))
    }
}

/// SplitMix64 finalizer; good avalanche properties for seed derivation.
///
/// Public so other crates (e.g. `das-trace` sampling) can hash identifiers
/// with the same mixer the seed derivation uses, without drawing from any
/// simulation RNG stream.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a uniform float in the half-open interval `(0, 1]`.
///
/// The lower bound is open so the result is always safe to pass to `ln()`
/// when sampling exponentials.
#[inline]
pub fn open_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits; add 1 so zero is excluded.
    let bits = rng.next_u64() >> 11;
    (bits + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let f = SeedFactory::new(7);
        let a: Vec<u64> = {
            let mut r = f.stream("x", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream("x", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_indices_diverge() {
        let f = SeedFactory::new(7);
        assert_ne!(f.derived_seed("x", 0), f.derived_seed("x", 1));
        assert_ne!(f.derived_seed("x", 0), f.derived_seed("y", 0));
    }

    #[test]
    fn different_master_seeds_diverge() {
        assert_ne!(
            SeedFactory::new(1).derived_seed("x", 0),
            SeedFactory::new(2).derived_seed("x", 0)
        );
    }

    #[test]
    fn open_unit_in_range() {
        let mut r = SeedFactory::new(3).stream("u", 0);
        for _ in 0..10_000 {
            let u = open_unit(&mut r);
            assert!(u > 0.0 && u <= 1.0, "u = {u}");
        }
    }

    #[test]
    fn open_unit_mean_near_half() {
        let mut r = SeedFactory::new(4).stream("u", 0);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| open_unit(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
