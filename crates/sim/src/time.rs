//! Simulation time.
//!
//! Time is kept as an integer number of nanoseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible. [`SimTime`] is a point on the
//! simulation clock, [`SimDuration`] is a span between two points. Both are
//! cheap `Copy` newtypes over `u64`.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// A point in simulated time, measured in nanoseconds since the start of the
/// simulation.
///
/// ```
/// use das_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for horizon checks.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates a time from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Raw nanoseconds since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (lossy for very large times).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since the origin as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier` is
    /// actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs saturate to zero; values
    /// past `u64::MAX` nanoseconds saturate to [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            if secs.is_infinite() && secs > 0.0 {
                return SimDuration::MAX;
            }
            return SimDuration::ZERO;
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Microseconds as a float.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

fn format_nanos(n: u64) -> String {
    if n >= NANOS_PER_SEC {
        format!("{:.3}s", n as f64 / NANOS_PER_SEC as f64)
    } else if n >= NANOS_PER_MILLI {
        format!("{:.3}ms", n as f64 / NANOS_PER_MILLI as f64)
    } else if n >= NANOS_PER_MICRO {
        format!("{:.3}us", n as f64 / NANOS_PER_MICRO as f64)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5 * NANOS_PER_MILLI);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7 * NANOS_PER_MICRO);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        let mut d = SimDuration::from_millis(1);
        d += SimDuration::from_millis(2);
        assert_eq!(d, SimDuration::from_millis(3));
        d -= SimDuration::from_millis(1);
        assert_eq!(d, SimDuration::from_millis(2));
        assert_eq!(d * 3, SimDuration::from_millis(6));
        assert_eq!(d / 2, SimDuration::from_millis(1));
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.5).as_nanos(),
            NANOS_PER_SEC / 2
        );
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scaling_by_float() {
        let d = SimDuration::from_millis(10) * 1.5;
        assert_eq!(d, SimDuration::from_millis(15));
        let d = SimDuration::from_millis(10) * 0.0;
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(1)),
            Some(SimTime::from_nanos(1))
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
