//! Discrete distributions: weighted sampling (alias method), Zipf key
//! popularity, and integer-valued distributions for request fan-outs.

use rand::RngCore;

use crate::rng::open_unit;

/// A discrete distribution over `usize` sampled with an external RNG.
pub trait SampleDiscrete {
    /// Draws one value.
    fn sample(&self, rng: &mut dyn RngCore) -> usize;

    /// The mean, when known.
    fn mean(&self) -> Option<f64>;
}

/// Walker's alias method: O(n) setup, O(1) exact weighted sampling.
///
/// ```
/// use das_sim::discrete::{AliasTable, SampleDiscrete};
/// use das_sim::rng::SeedFactory;
///
/// let t = AliasTable::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = SeedFactory::new(1).stream("alias", 0);
/// let mut counts = [0usize; 3];
/// for _ in 0..40_000 {
///     counts[t.sample(&mut rng)] += 1;
/// }
/// assert_eq!(counts[1], 0); // zero weight never drawn
/// assert!(counts[2] > counts[0] * 2);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
    mean: f64,
}

impl AliasTable {
    /// Builds the table from non-negative weights. Returns `None` if the
    /// slice is empty, contains a negative or non-finite weight, or sums to
    /// zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            // das-lint: allow(unwrap-lib): loop condition guarantees both stacks are non-empty
            let s = small.pop().expect("checked non-empty");
            // das-lint: allow(unwrap-lib): loop condition guarantees both stacks are non-empty
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        let mean = weights
            .iter()
            .enumerate()
            .map(|(i, w)| i as f64 * w / total)
            .sum();
        Some(AliasTable { prob, alias, mean })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

impl SampleDiscrete for AliasTable {
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let n = self.prob.len();
        let i = (rng.next_u64() % n as u64) as usize;
        if open_unit(rng) <= self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
}

/// Zipf distribution over ranks `0..n` with skew `theta >= 0`.
///
/// `theta = 0` is uniform; larger values concentrate probability on low
/// ranks. Implemented with a precomputed alias table, so sampling is O(1)
/// and exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    table: AliasTable,
    theta: f64,
}

impl Zipf {
    /// Zipf over `n >= 1` ranks with exponent `theta >= 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-theta)).collect();
        Zipf {
            // das-lint: allow(unwrap-lib): k^-theta weights are finite and positive for theta >= 0
            table: AliasTable::new(&weights).expect("weights are positive"),
            theta,
        }
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the distribution has no ranks (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl SampleDiscrete for Zipf {
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        self.table.sample(rng)
    }
    fn mean(&self) -> Option<f64> {
        self.table.mean()
    }
}

/// A point mass at a single integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantInt {
    value: usize,
}

impl ConstantInt {
    /// A point mass at `value`.
    pub fn new(value: usize) -> Self {
        ConstantInt { value }
    }
}

impl SampleDiscrete for ConstantInt {
    fn sample(&self, _rng: &mut dyn RngCore) -> usize {
        self.value
    }
    fn mean(&self) -> Option<f64> {
        Some(self.value as f64)
    }
}

/// Uniform over the inclusive integer range `[low, high]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformInt {
    low: usize,
    high: usize,
}

impl UniformInt {
    /// Uniform over `[low, high]`; requires `low <= high`.
    pub fn new(low: usize, high: usize) -> Self {
        assert!(low <= high);
        UniformInt { low, high }
    }
}

impl SampleDiscrete for UniformInt {
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let span = (self.high - self.low + 1) as u64;
        self.low + (rng.next_u64() % span) as usize
    }
    fn mean(&self) -> Option<f64> {
        Some((self.low + self.high) as f64 / 2.0)
    }
}

/// An integer distribution given by an explicit probability vector over
/// `offset..offset+weights.len()`.
#[derive(Debug, Clone)]
pub struct WeightedInt {
    table: AliasTable,
    offset: usize,
}

impl WeightedInt {
    /// Weighted distribution over `offset + i` for each weight index `i`.
    /// Returns `None` on invalid weights (see [`AliasTable::new`]).
    pub fn new(offset: usize, weights: &[f64]) -> Option<Self> {
        Some(WeightedInt {
            table: AliasTable::new(weights)?,
            offset,
        })
    }

    /// A two-point distribution: `a` with probability `p_a`, else `b`.
    /// Requires `a < b`.
    pub fn bimodal(a: usize, p_a: f64, b: usize) -> Self {
        assert!(a < b, "bimodal requires a < b");
        assert!((0.0..=1.0).contains(&p_a));
        let mut weights = vec![0.0; b - a + 1];
        weights[0] = p_a;
        weights[b - a] = 1.0 - p_a;
        // das-lint: allow(unwrap-lib): weights built from asserted a < b and p_a in [0, 1]
        WeightedInt::new(a, &weights).expect("valid weights")
    }
}

impl SampleDiscrete for WeightedInt {
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        self.offset + self.table.sample(rng)
    }
    fn mean(&self) -> Option<f64> {
        self.table.mean().map(|m| m + self.offset as f64)
    }
}

/// Geometric-like distribution truncated to `[1, max]`: value `k` has weight
/// `p * (1-p)^(k-1)`. Useful for fan-outs where small requests dominate.
#[derive(Debug, Clone)]
pub struct TruncatedGeometric {
    inner: WeightedInt,
}

impl TruncatedGeometric {
    /// Truncated geometric on `[1, max]` with success probability
    /// `0 < p < 1`.
    pub fn new(p: f64, max: usize) -> Self {
        assert!((0.0..1.0).contains(&p) && p > 0.0);
        assert!(max >= 1);
        let weights: Vec<f64> = (1..=max)
            .map(|k| p * (1.0 - p).powi(k as i32 - 1))
            .collect();
        TruncatedGeometric {
            // das-lint: allow(unwrap-lib): geometric weights are positive for the asserted p range
            inner: WeightedInt::new(1, &weights).expect("valid weights"),
        }
    }
}

impl SampleDiscrete for TruncatedGeometric {
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        self.inner.sample(rng)
    }
    fn mean(&self) -> Option<f64> {
        self.inner.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedFactory;

    #[test]
    fn alias_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_none());
        assert!(AliasTable::new(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn alias_matches_weights() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut rng = SeedFactory::new(11).stream("a", 0);
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "i={i} got={got}");
        }
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn alias_singleton() {
        let t = AliasTable::new(&[5.0]).unwrap();
        let mut rng = SeedFactory::new(1).stream("s", 0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SeedFactory::new(2).stream("z", 0);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let got = c as f64 / n as f64;
            assert!((got - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SeedFactory::new(3).stream("z2", 0);
        let n = 100_000;
        let mut top10 = 0usize;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With theta ~ 1, the top 1% of ranks should carry a large share.
        assert!(top10 as f64 / n as f64 > 0.3, "top10 share = {top10}");
        assert_eq!(z.len(), 1000);
        assert!((z.theta() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn constant_and_uniform_int() {
        let mut rng = SeedFactory::new(4).stream("ci", 0);
        let c = ConstantInt::new(7);
        assert_eq!(c.sample(&mut rng), 7);
        assert_eq!(c.mean(), Some(7.0));
        let u = UniformInt::new(2, 5);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((2..=5).contains(&x));
        }
        assert_eq!(u.mean(), Some(3.5));
    }

    #[test]
    fn weighted_int_offset() {
        let w = WeightedInt::new(10, &[1.0, 1.0]).unwrap();
        let mut rng = SeedFactory::new(5).stream("wi", 0);
        for _ in 0..1000 {
            let x = w.sample(&mut rng);
            assert!(x == 10 || x == 11);
        }
        assert_eq!(w.mean(), Some(10.5));
    }

    #[test]
    fn bimodal_int() {
        let w = WeightedInt::bimodal(1, 0.9, 100);
        let mut rng = SeedFactory::new(6).stream("bi", 0);
        let n = 100_000;
        let small = (0..n).filter(|_| w.sample(&mut rng) == 1).count();
        assert!((small as f64 / n as f64 - 0.9).abs() < 0.01);
    }

    #[test]
    fn truncated_geometric_range_and_skew() {
        let g = TruncatedGeometric::new(0.5, 8);
        let mut rng = SeedFactory::new(7).stream("g", 0);
        let n = 100_000;
        let mut counts = [0usize; 9];
        for _ in 0..n {
            let x = g.sample(&mut rng);
            assert!((1..=8).contains(&x));
            counts[x] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[3]);
    }
}
