//! `das_lint` — the determinism & integer-ns invariant linter CLI.
//!
//! ```text
//! das_lint --workspace [--root <dir>] [--quiet]
//! das_lint [--root <dir>] <file-or-dir>...
//! das_lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error. CI runs
//! `cargo run -p das-lint --release -- --workspace` as the first tier; see
//! DESIGN.md ("Determinism invariants (machine-checked)") for the rules.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use das_lint::{scan_files, scan_workspace, Report, RuleId};

fn usage() -> &'static str {
    "usage: das_lint --workspace [--root <dir>] [--quiet]\n\
     \x20      das_lint [--root <dir>] [--quiet] <file-or-dir>...\n\
     \x20      das_lint --list-rules"
}

fn collect(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            collect(&e.path(), out)?;
        }
    } else if path.extension().and_then(|x| x.to_str()) == Some("rs") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut workspace = false;
    let mut quiet = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--quiet" | "-q" => quiet = true,
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("das_lint: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--list-rules" => {
                for r in RuleId::MATCHED {
                    println!("{:16} {}", r.name(), r.describe());
                }
                println!("{:16} {}", RuleId::BadAllow.name(), RuleId::BadAllow.describe());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("das_lint: unknown flag `{flag}`\n{}", usage());
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }

    let report: std::io::Result<Report> = if workspace {
        if !paths.is_empty() {
            eprintln!("das_lint: --workspace takes no paths\n{}", usage());
            return ExitCode::from(2);
        }
        scan_workspace(&root)
    } else if paths.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    } else {
        let mut files = Vec::new();
        for p in &paths {
            if let Err(e) = collect(p, &mut files) {
                eprintln!("das_lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
        scan_files(&root, &files)
    };

    match report {
        Ok(r) => {
            if !quiet || !r.is_clean() {
                print!("{}", r.render());
            }
            if r.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("das_lint: {e}");
            ExitCode::from(2)
        }
    }
}
