//! # das-lint — determinism & integer-ns invariant linter
//!
//! Every headline number this reproduction publishes rests on bit-identical
//! seeded determinism: the CI golden byte-diffs (fig06, table8), the paired
//! replay-determinism test, and `das-trace`'s exact integer-ns telescoping
//! all break *silently* if a refactor introduces a randomized-hasher map
//! iteration, a wall-clock read, OS entropy, or float accumulation into a
//! hot accounting path. This crate enforces those invariants at the source
//! level, before a single golden is built.
//!
//! The scanner is deliberately primitive: std-only, line/token-level, no
//! `syn` (the vendor tree is offline and the linter must never be broken by
//! the code it checks). It strips comments and string literals with a small
//! state machine, skips `#[cfg(test)]` items and test-only files, and then
//! matches per-rule token patterns scoped by workspace-relative path. See
//! [`RuleId`] for the rule set and DESIGN.md ("Determinism invariants") for
//! the rationale behind each rule.
//!
//! ## Suppressions
//!
//! A violation can be waived per line — on the offending line or the line
//! directly above — with a mandatory reason:
//!
//! ```text
//! // das-lint: allow(default-hash): keyed access only, never iterated
//! ```
//!
//! Reasonless allows, unknown rule names, and allows that suppress nothing
//! are themselves violations (`bad-allow`), and every *used* suppression is
//! echoed in the report's summary table so waivers stay auditable.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The enforced rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `HashMap`/`HashSet` with the default `RandomState` hasher in the
    /// deterministic simulation crates: iteration order differs per
    /// process, so any order leak breaks seeded reproducibility.
    DefaultHash,
    /// `Instant::now` / `SystemTime::now` / `thread_rng` / `from_entropy` /
    /// `OsRng` outside `das-rt` and `bench`: simulated time and seeded
    /// streams are the only clocks and entropy the model may see.
    WallClock,
    /// `f32`/`f64` arithmetic (types, casts, or float literals) in the
    /// integer-ns accounting modules (`trace::analysis`, `trace::diff`):
    /// the telescoping "segments sum exactly to RCT" contract only holds
    /// in integer nanoseconds. Float presentation lives in
    /// `trace::present`.
    FloatAccounting,
    /// `thread::spawn` / `Mutex` / `RwLock` / `Condvar` in pure-simulation
    /// crates: the simulator is single-threaded by construction; real
    /// concurrency belongs in `das-rt`.
    ThreadInSim,
    /// `.unwrap()` / `.expect(` in library (non-bin, non-test) code of the
    /// simulation crates: every panic path must either be refactored away
    /// or carry an explicit invariant justification.
    UnwrapLib,
    /// Direct `std::sync` (other than `Arc`/`Weak`), `parking_lot`, or
    /// `crossbeam` outside `crates/sync` + `crates/check`: every lock,
    /// channel, atomic, and spawn must go through the `das-sync` facade,
    /// or the `--cfg das_model` build silently stops model-checking it.
    RawSync,
    /// `Ordering::Relaxed` anywhere outside `crates/sync` + `crates/check`:
    /// the model checker verifies schedules under sequential consistency,
    /// so every relaxed access is unchecked by construction and needs a
    /// human-audited waiver stating why no ordering is derived from it.
    OrderingRelaxed,
    /// A malformed `das-lint: allow(...)` comment: missing reason, unknown
    /// rule name, or an allow that suppressed nothing.
    BadAllow,
}

impl RuleId {
    /// Every real (matchable) rule; `BadAllow` is synthesized by the
    /// suppression checker, not matched against source tokens.
    pub const MATCHED: [RuleId; 7] = [
        RuleId::DefaultHash,
        RuleId::WallClock,
        RuleId::FloatAccounting,
        RuleId::ThreadInSim,
        RuleId::UnwrapLib,
        RuleId::RawSync,
        RuleId::OrderingRelaxed,
    ];

    /// The stable kebab-case name used in reports and allow comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DefaultHash => "default-hash",
            RuleId::WallClock => "wall-clock",
            RuleId::FloatAccounting => "float-accounting",
            RuleId::ThreadInSim => "thread-in-sim",
            RuleId::UnwrapLib => "unwrap-lib",
            RuleId::RawSync => "raw-sync",
            RuleId::OrderingRelaxed => "ordering-relaxed",
            RuleId::BadAllow => "bad-allow",
        }
    }

    /// Parses an allow-comment rule name.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "default-hash" => Some(RuleId::DefaultHash),
            "wall-clock" => Some(RuleId::WallClock),
            "float-accounting" => Some(RuleId::FloatAccounting),
            "thread-in-sim" => Some(RuleId::ThreadInSim),
            "unwrap-lib" => Some(RuleId::UnwrapLib),
            "raw-sync" => Some(RuleId::RawSync),
            "ordering-relaxed" => Some(RuleId::OrderingRelaxed),
            "bad-allow" => Some(RuleId::BadAllow),
            _ => None,
        }
    }

    /// One-line description shown by `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::DefaultHash => {
                "no std HashMap/HashSet (RandomState iteration order) in sim/sched/store/net/trace/workload"
            }
            RuleId::WallClock => {
                "no Instant::now/SystemTime::now/thread_rng/from_entropy/OsRng outside das-rt and bench"
            }
            RuleId::FloatAccounting => {
                "no f32/f64 arithmetic in integer-ns accounting modules (trace::analysis, trace::diff)"
            }
            RuleId::ThreadInSim => {
                "no thread::spawn/Mutex/RwLock/Condvar in pure-simulation crates"
            }
            RuleId::UnwrapLib => {
                "no .unwrap()/.expect( in simulation-crate library code without a justified allow"
            }
            RuleId::RawSync => {
                "no direct std::sync (non-Arc)/parking_lot/crossbeam outside the das-sync facade"
            }
            RuleId::OrderingRelaxed => {
                "no Ordering::Relaxed outside crates/sync + crates/check without an audited waiver"
            }
            RuleId::BadAllow => "das-lint allow comments must name a known rule and carry a reason",
        }
    }

    /// Remediation hint appended to each finding.
    fn hint(self) -> &'static str {
        match self {
            RuleId::DefaultHash => "use BTreeMap/BTreeSet or an explicitly seeded hasher",
            RuleId::WallClock => "thread sim-time / seeded RNG streams through instead",
            RuleId::FloatAccounting => "keep integer nanoseconds; convert in trace::present",
            RuleId::ThreadInSim => "the simulator is single-threaded; real concurrency lives in das-rt",
            RuleId::UnwrapLib => "return an error, or justify: // das-lint: allow(unwrap-lib): <why>",
            RuleId::RawSync => "route it through das-sync so --cfg das_model model-checks it",
            RuleId::OrderingRelaxed => {
                "use SeqCst/Acquire/Release, or justify: // das-lint: allow(ordering-relaxed): <why>"
            }
            RuleId::BadAllow => "syntax: // das-lint: allow(<rule>): <non-empty reason>",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What matched, e.g. "`HashMap`".
    pub what: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.path,
            self.line,
            self.rule,
            self.what,
            self.rule.hint()
        )
    }
}

/// One *used* suppression (an allow comment that waived a real match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule that was waived.
    pub rule: RuleId,
    /// Workspace-relative path of the waived line.
    pub path: String,
    /// 1-based line of the waived match.
    pub line: usize,
    /// The mandatory justification from the allow comment.
    pub reason: String,
}

/// The result of scanning a tree or file set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All violations, in path/line order.
    pub findings: Vec<Finding>,
    /// All used suppressions, in path/line order.
    pub suppressions: Vec<Suppression>,
    /// Files scanned (after test-file skipping).
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean (suppressions are allowed).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report: findings, the suppression
    /// summary table, and the verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        if !self.suppressions.is_empty() {
            out.push_str("\nsuppressions (justified waivers):\n");
            let width = self
                .suppressions
                .iter()
                .map(|s| format!("{}:{}", s.path, s.line).len())
                .max()
                .unwrap_or(0);
            for s in &self.suppressions {
                let loc = format!("{}:{}", s.path, s.line);
                out.push_str(&format!(
                    "  {:16} {:w$}  {}\n",
                    s.rule.name(),
                    loc,
                    s.reason,
                    w = width
                ));
            }
        }
        out.push_str(&format!(
            "\ndas-lint: {} violation(s), {} suppression(s), {} file(s) scanned\n",
            self.findings.len(),
            self.suppressions.len(),
            self.files_scanned
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

/// Crates whose in-simulation state must be iteration-order deterministic.
const DETERMINISTIC_CRATES: [&str; 7] =
    ["sim", "sched", "store", "net", "trace", "workload", "chaos"];

/// Crates that are pure simulation: no OS threads, no locks.
const PURE_SIM_CRATES: [&str; 9] = [
    "sim", "sched", "store", "net", "trace", "workload", "metrics", "core", "chaos",
];

/// Crates allowed to read real clocks and OS entropy (the real-time
/// harness and the benchmark driver).
const WALL_CLOCK_ALLOWED: [&str; 2] = ["rt", "bench"];

/// The synchronization facade and the model checker behind it: the only
/// first-party code allowed to name raw sync primitives (that is their
/// whole job), and the only code exempt from the relaxed-ordering audit
/// (the checker models all atomics as sequentially consistent).
const SYNC_FACADE_CRATES: [&str; 2] = ["sync", "check"];

/// Files whose contract is exact integer-ns telescoping. Float math here —
/// even for "just a mean" — silently breaks the residue-free attribution
/// the blame tables advertise.
const ACCOUNTING_FILES: [&str; 3] = [
    "crates/trace/src/analysis.rs",
    "crates/trace/src/diff.rs",
    "crates/trace/src/telemetry.rs",
];

/// The crate subdirectory of a `crates/<name>/src/...` path, if any.
fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

fn in_crates(rel: &str, names: &[&str]) -> bool {
    crate_of(rel).is_some_and(|c| names.contains(&c))
}

/// Whether `rule` applies to the file at workspace-relative path `rel`.
fn rule_applies(rule: RuleId, rel: &str) -> bool {
    match rule {
        RuleId::DefaultHash => in_crates(rel, &DETERMINISTIC_CRATES),
        RuleId::WallClock => {
            // Everything under crates/*/src plus the facade src/, except
            // the real-time harness and the benchmark driver.
            (crate_of(rel).is_some() || rel.starts_with("src/"))
                && !in_crates(rel, &WALL_CLOCK_ALLOWED)
        }
        RuleId::FloatAccounting => ACCOUNTING_FILES.contains(&rel),
        RuleId::ThreadInSim => in_crates(rel, &PURE_SIM_CRATES),
        RuleId::UnwrapLib => in_crates(rel, &PURE_SIM_CRATES) && !rel.contains("/bin/"),
        RuleId::RawSync | RuleId::OrderingRelaxed => {
            (crate_of(rel).is_some() || rel.starts_with("src/"))
                && !in_crates(rel, &SYNC_FACADE_CRATES)
        }
        RuleId::BadAllow => true,
    }
}

/// Test-only files are exempt from every rule: unit-test modules are also
/// skipped inline via `#[cfg(test)]` tracking, but whole files named
/// `tests*.rs` / `*_test(s).rs` (e.g. `sched/src/tests_edge.rs`, which is
/// `#[cfg(test)] mod`-included from lib.rs) never reach the matchers.
fn is_test_file(rel: &str) -> bool {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    name.starts_with("tests")
        || name.ends_with("_test.rs")
        || name.ends_with("_tests.rs")
        || rel.split('/').any(|seg| seg == "tests" || seg == "benches")
}

// ---------------------------------------------------------------------------
// Lexical stripping
// ---------------------------------------------------------------------------

/// Replaces comment and string-literal contents with spaces, preserving
/// line structure, so token matching never fires on prose. Handles nested
/// `/* */`, `//` line comments, `"..."` with escapes, raw strings
/// `r"..."`/`r#"..."#`, char literals, and leaves lifetimes (`'a`) alone.
fn strip_code(src: &str) -> String {
    strip(src, true)
}

/// Blanks string and char literals but keeps comments, for allow-comment
/// parsing: a `das-lint: allow(` inside a string constant must not read as
/// a waiver, while the same marker in a `//` comment must.
fn strip_strings(src: &str) -> String {
    strip(src, false)
}

fn strip(src: &str, blank_comments: bool) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(if blank_comments { b' ' } else { b[i] });
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                let put = |byte: u8, out: &mut Vec<u8>| {
                    out.push(if blank_comments && byte != b'\n' { b' ' } else { byte });
                };
                put(b[i], &mut out);
                put(b[i + 1], &mut out);
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        put(b[i], &mut out);
                        put(b[i + 1], &mut out);
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        put(b[i], &mut out);
                        put(b[i + 1], &mut out);
                        i += 2;
                    } else {
                        put(b[i], &mut out);
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"..." / r#"..."# / r##"..."## .
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    // Consume through the matching `"###...` terminator.
                    let n = out.len() + (j - i + 1);
                    out.resize(n, b' ');
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                let n = out.len() + (k - i);
                                out.resize(n, b' ');
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    // `r#ident` raw identifier or bare `r#` — not a string.
                    out.push(b'r');
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a char literal closes with `'`
                // within a short window; a lifetime never closes.
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    j += 2;
                    while j < b.len() && b[j] != b'\'' && j - i < 12 {
                        j += 1;
                    }
                } else if j < b.len() {
                    // Possible `'x'`; multi-byte UTF-8 chars also land here.
                    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' && j - i < 6 {
                        j += 1;
                    }
                }
                if j < b.len() && b[j] == b'\'' && j > i + 1 {
                    let n = out.len() + (j - i + 1);
                    out.resize(n, b' ');
                    i = j + 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Lossless for our purposes: only ASCII punctuation/content was
    // replaced, multi-byte sequences inside literals became spaces.
    String::from_utf8(out).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Token matching
// ---------------------------------------------------------------------------

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whole-word occurrence of `word` in `line` (identifier boundaries on
/// both sides), so `FxHashMap` does not match `HashMap`.
fn has_word(line: &str, word: &str) -> bool {
    let lb = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(lb[at - 1]);
        let end = at + word.len();
        let after_ok = end >= lb.len() || !is_ident(lb[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Detects a `std::sync::` path whose target is not `Arc`/`Weak` (those
/// are pure ownership, invisible to the schedule). Handles both direct
/// paths (`std::sync::Mutex`, `std::sync::atomic::AtomicU64`) and brace
/// groups (`use std::sync::{Arc, Mutex}` fires on `Mutex`).
fn has_raw_std_sync(line: &str) -> bool {
    const PREFIX: &str = "std::sync::";
    const ALLOWED: [&str; 2] = ["Arc", "Weak"];
    let mut start = 0;
    while let Some(pos) = line[start..].find(PREFIX) {
        let at = start + pos;
        let rest = &line[at + PREFIX.len()..];
        if let Some(braced) = rest.strip_prefix('{') {
            // Inspect each leading identifier in the brace group.
            let group = braced.split('}').next().unwrap_or("");
            for item in group.split(',') {
                let ident: String = item
                    .trim()
                    .bytes()
                    .take_while(|&c| is_ident(c))
                    .map(char::from)
                    .collect();
                if !ident.is_empty() && !ALLOWED.contains(&ident.as_str()) {
                    return true;
                }
            }
        } else {
            let ident: String = rest
                .bytes()
                .take_while(|&c| is_ident(c))
                .map(char::from)
                .collect();
            if !ident.is_empty() && !ALLOWED.contains(&ident.as_str()) {
                return true;
            }
        }
        start = at + PREFIX.len();
    }
    false
}

/// Detects a float literal on a stripped line: `1.5`, `1e-9`, `2.0e3`,
/// `1_000.25`. Hex literals (`0x1e5`) and tuple-field access (`x.0`,
/// `pair.0.1`) are excluded. Trailing-dot floats (`1.`) are not detected —
/// clippy's `lossy_float_literal`-adjacent style already keeps those out.
fn has_float_literal(line: &str) -> bool {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if !b[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // A numeric token starts here only if not preceded by an
        // identifier char (8u64's `u64` never restarts) or a `.` (tuple
        // field access / method call on a literal).
        if i > 0 && (is_ident(b[i - 1]) || b[i - 1] == b'.') {
            i += 1;
            while i < b.len() && (is_ident(b[i]) || b[i] == b'.') {
                i += 1;
            }
            continue;
        }
        // Hex/octal/binary literals can contain `e`/`E`; skip them whole.
        if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
            i += 2;
            while i < b.len() && (is_ident(b[i]) || b[i] == b'.') {
                i += 1;
            }
            continue;
        }
        let mut j = i;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
        // Fraction: `.` followed by a digit.
        if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
            return true;
        }
        // Exponent: `e`/`E` with optional sign, then a digit.
        if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
            let mut k = j + 1;
            if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
                k += 1;
            }
            if k < b.len() && b[k].is_ascii_digit() {
                return true;
            }
        }
        i = j.max(i + 1);
    }
    false
}

/// What a rule matched on a line, for the finding message.
fn match_rule(rule: RuleId, line: &str) -> Option<&'static str> {
    match rule {
        RuleId::DefaultHash => {
            if has_word(line, "HashMap") {
                Some("`HashMap` (RandomState iteration order is nondeterministic)")
            } else if has_word(line, "HashSet") {
                Some("`HashSet` (RandomState iteration order is nondeterministic)")
            } else {
                None
            }
        }
        RuleId::WallClock => {
            if line.contains("Instant::now") {
                Some("`Instant::now` (wall clock in simulated time)")
            } else if line.contains("SystemTime::now") {
                Some("`SystemTime::now` (wall clock in simulated time)")
            } else if has_word(line, "thread_rng") {
                Some("`thread_rng` (OS entropy; streams must be seeded)")
            } else if has_word(line, "from_entropy") {
                Some("`from_entropy` (OS entropy; streams must be seeded)")
            } else if has_word(line, "OsRng") {
                Some("`OsRng` (OS entropy; streams must be seeded)")
            } else {
                None
            }
        }
        RuleId::FloatAccounting => {
            if has_word(line, "f64") {
                Some("`f64` in an integer-ns accounting module")
            } else if has_word(line, "f32") {
                Some("`f32` in an integer-ns accounting module")
            } else if has_float_literal(line) {
                Some("float literal in an integer-ns accounting module")
            } else {
                None
            }
        }
        RuleId::ThreadInSim => {
            if line.contains("thread::spawn") {
                Some("`thread::spawn` in a pure-simulation crate")
            } else if has_word(line, "Mutex") {
                Some("`Mutex` in a pure-simulation crate")
            } else if has_word(line, "RwLock") {
                Some("`RwLock` in a pure-simulation crate")
            } else if has_word(line, "Condvar") {
                Some("`Condvar` in a pure-simulation crate")
            } else {
                None
            }
        }
        RuleId::UnwrapLib => {
            if line.contains(".unwrap()") {
                Some("`.unwrap()` in library code")
            } else if line.contains(".expect(") {
                Some("`.expect(` in library code")
            } else {
                None
            }
        }
        RuleId::RawSync => {
            if has_word(line, "parking_lot") {
                Some("`parking_lot` outside the das-sync facade")
            } else if has_word(line, "crossbeam") {
                Some("`crossbeam` outside the das-sync facade")
            } else if has_raw_std_sync(line) {
                Some("`std::sync` primitive (non-Arc) outside the das-sync facade")
            } else {
                None
            }
        }
        RuleId::OrderingRelaxed => line
            .contains("Ordering::Relaxed")
            .then_some("`Ordering::Relaxed` (unchecked by the SC model checker)"),
        RuleId::BadAllow => None,
    }
}

// ---------------------------------------------------------------------------
// Allow comments
// ---------------------------------------------------------------------------

/// A parsed `// das-lint: allow(rule, ...): reason` comment.
#[derive(Debug)]
struct Allow {
    line: usize,
    rules: Vec<RuleId>,
    unknown: Vec<String>,
    reason: String,
    used: bool,
}

const ALLOW_MARKER: &str = "das-lint: allow(";

/// Parses the allow comment on `line` (1-based `line_no`), if any.
///
/// `line` must come from [`strip_strings`]: string literals are blanked but
/// comments survive, so a marker inside a string constant (this crate has
/// several) is never mistaken for a waiver. Only plain `//` comments count —
/// doc comments (`///`, `//!`) *document* the syntax, they don't invoke it.
fn parse_allow(line: &str, line_no: usize) -> Option<Allow> {
    let at = line.find(ALLOW_MARKER)?;
    let comment = line[..at].find("//")?;
    let after_slashes = line.as_bytes().get(comment + 2).copied();
    if matches!(after_slashes, Some(b'/') | Some(b'!')) {
        return None;
    }
    let rest = &line[at + ALLOW_MARKER.len()..];
    let close = rest.find(')')?;
    let mut rules = Vec::new();
    let mut unknown = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match RuleId::parse(name) {
            Some(r) => rules.push(r),
            None => unknown.push(name.to_string()),
        }
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("").to_string();
    Some(Allow {
        line: line_no,
        rules,
        unknown,
        reason,
        used: false,
    })
}

// ---------------------------------------------------------------------------
// File scanning
// ---------------------------------------------------------------------------

/// Scans one file's source, given its workspace-relative path. Pure; the
/// fixture tests drive this directly.
pub fn scan_source(rel_path: &str, src: &str) -> (Vec<Finding>, Vec<Suppression>) {
    let mut findings = Vec::new();
    let mut suppressions = Vec::new();
    if is_test_file(rel_path) {
        return (findings, suppressions);
    }
    let rules: Vec<RuleId> = RuleId::MATCHED
        .into_iter()
        .filter(|&r| rule_applies(r, rel_path))
        .collect();

    let stripped = strip_code(src);
    let comments_kept = strip_strings(src);
    let code_lines: Vec<&str> = stripped.lines().collect();

    let mut allows: Vec<Allow> = comments_kept
        .lines()
        .enumerate()
        .filter_map(|(i, l)| parse_allow(l, i + 1))
        .collect();

    // `#[cfg(test)]` item skipping: from the attribute until the guarded
    // item closes (matching `}`) or ends as a declaration (`;` at depth 0).
    let mut skip_pending = false; // saw the attr, waiting for the item body
    let mut skip_depth = 0usize; // >0: inside the guarded item's braces
    for (idx, code) in code_lines.iter().enumerate() {
        let line_no = idx + 1;
        let mut in_skip = false;
        if skip_depth > 0 {
            in_skip = true;
            for c in code.bytes() {
                match c {
                    b'{' => skip_depth += 1,
                    b'}' => {
                        skip_depth -= 1;
                        if skip_depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        } else if skip_pending {
            in_skip = true;
            for c in code.bytes() {
                match c {
                    b'{' => {
                        skip_pending = false;
                        skip_depth += 1;
                    }
                    b'}' if skip_depth > 0 => {
                        skip_depth -= 1;
                        if skip_depth == 0 {
                            break;
                        }
                    }
                    b';' if skip_depth == 0 => {
                        // `#[cfg(test)] mod tests_edge;` — declaration only.
                        skip_pending = false;
                        break;
                    }
                    _ => {}
                }
            }
            if skip_depth > 0 {
                skip_pending = false;
            }
        }
        if !in_skip && (code.contains("cfg(test") || code.contains("cfg(all(test")) {
            // The attribute line itself (and anything sharing it) is part
            // of the skipped item.
            skip_pending = true;
            let mut depth = 0usize;
            for c in code.bytes() {
                match c {
                    b'{' => {
                        skip_pending = false;
                        depth += 1;
                    }
                    b'}' if depth > 0 => depth -= 1,
                    // `#[cfg(test)] use x;` — guarded declaration inline.
                    b';' if depth == 0 => skip_pending = false,
                    _ => {}
                }
            }
            skip_depth = depth;
            continue;
        }
        if in_skip {
            continue;
        }

        for &rule in &rules {
            let Some(what) = match_rule(rule, code) else {
                continue;
            };
            // An allow on this line or the line directly above waives it.
            let allow = allows
                .iter_mut()
                .find(|a| (a.line == line_no || a.line + 1 == line_no) && a.rules.contains(&rule));
            match allow {
                Some(a) if !a.reason.is_empty() => {
                    a.used = true;
                    suppressions.push(Suppression {
                        rule,
                        path: rel_path.to_string(),
                        line: line_no,
                        reason: a.reason.clone(),
                    });
                }
                _ => findings.push(Finding {
                    rule,
                    path: rel_path.to_string(),
                    line: line_no,
                    what: what.to_string(),
                }),
            }
        }
    }

    // Malformed or dead allows are violations themselves: a waiver that no
    // longer waives anything must be deleted, not silently carried.
    for a in &allows {
        if !a.unknown.is_empty() {
            findings.push(Finding {
                rule: RuleId::BadAllow,
                path: rel_path.to_string(),
                line: a.line,
                what: format!("unknown rule(s) {:?} in allow comment", a.unknown),
            });
        } else if a.reason.is_empty() {
            findings.push(Finding {
                rule: RuleId::BadAllow,
                path: rel_path.to_string(),
                line: a.line,
                what: "allow comment without a reason".to_string(),
            });
        } else if !a.used {
            findings.push(Finding {
                rule: RuleId::BadAllow,
                path: rel_path.to_string(),
                line: a.line,
                what: "unused allow comment (suppresses nothing)".to_string(),
            });
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    (findings, suppressions)
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let ty = e.file_type()?;
        if ty.is_dir() {
            walk(&path, out)?;
        } else if path.extension().and_then(|x| x.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The directories `--workspace` scans, relative to the root: every
/// workspace crate's `src/` plus the facade crate's `src/`. `vendor/`
/// (offline shims), `target/`, `tests/`, and `examples/` are out of scope
/// by construction.
fn workspace_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let src = e.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        roots.push(facade);
    }
    Ok(roots)
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans the whole workspace under `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for r in workspace_roots(root)? {
        walk(&r, &mut files)?;
    }
    scan_files(root, &files)
}

/// Scans an explicit file list, reporting paths relative to `root`.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    for path in files {
        let rel = rel_str(root, path);
        if is_test_file(&rel) {
            continue;
        }
        let src = fs::read_to_string(path)?;
        let (f, s) = scan_source(&rel, &src);
        report.findings.extend(f);
        report.suppressions.extend(s);
        report.files_scanned += 1;
    }
    Ok(report)
}
