//! Clean fixture: the real-time harness may read real clocks and spawn
//! threads — no wall-clock rule applies under `crates/rt/`.

pub fn wall_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn shared_counter() -> std::sync::Arc<das_sync::Mutex<u64>> {
    // Arc is exempt from raw-sync; the lock goes through the facade.
    std::sync::Arc::new(das_sync::Mutex::new(0))
}

pub fn served(c: &das_sync::atomic::AtomicU64) -> u64 {
    // das-lint: allow(ordering-relaxed): monotonic counter, reporting only
    c.load(das_sync::atomic::Ordering::Relaxed)
}
