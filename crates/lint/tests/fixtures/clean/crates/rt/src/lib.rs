//! Clean fixture: the real-time harness may read real clocks and spawn
//! threads — no wall-clock rule applies under `crates/rt/`.

pub fn wall_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
