//! Clean fixture: the facade crate's whole job is naming raw sync
//! primitives, so raw-sync and ordering-relaxed do not apply under
//! `crates/sync/` (nor `crates/check/`).

pub use parking_lot::{Condvar, Mutex};

pub mod channel {
    pub use crossbeam::channel::{bounded, unbounded};
}

pub fn relaxed_is_fine_here(c: &std::sync::atomic::AtomicU64) -> u64 {
    c.load(std::sync::atomic::Ordering::Relaxed)
}
