//! Clean fixture: deterministic collections, one justified suppression.

use std::collections::BTreeMap;

pub fn state() -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    m
}

pub fn head(v: &[u64]) -> u64 {
    // das-lint: allow(unwrap-lib): callers uphold the non-empty invariant
    *v.first().expect("non-empty")
}
