//! Bad fixture: trips wall-clock in a deterministic crate.

pub fn now_ns() -> u128 {
    let t = std::time::Instant::now();
    let _w = std::time::SystemTime::now();
    t.elapsed().as_nanos()
}

pub fn seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn in_string_is_fine() -> &'static str {
    // Matches inside string literals and comments must not fire:
    // Instant::now() HashMap thread_rng
    "Instant::now() HashMap thread_rng"
}
