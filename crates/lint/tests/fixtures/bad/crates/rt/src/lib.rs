//! Bad fixture: trips raw-sync and ordering-relaxed in a crate that is
//! otherwise allowed threads and wall clocks (rt). Never compiled —
//! scanned as data by the lint tests.

use parking_lot::Mutex;
use std::sync::Arc; // must NOT fire: Arc is pure ownership
use std::sync::atomic::{AtomicU64, Ordering};

pub fn raw_lock() -> Arc<Mutex<u64>> {
    Arc::new(Mutex::new(0))
}

pub fn raw_channel() -> usize {
    let (tx, rx) = crossbeam::channel::unbounded::<u8>();
    drop(tx);
    rx.len()
}

pub fn raw_std_sync() -> std::sync::Condvar {
    std::sync::Condvar::new()
}

pub fn grouped_import_fires() {
    use std::sync::{Arc as _, Mutex as StdMutex};
    let _ = StdMutex::new(0u8);
}

pub fn unaudited_relaxed(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn audited_relaxed(c: &AtomicU64) -> u64 {
    // das-lint: allow(ordering-relaxed): monotonic counter, reporting only
    c.load(Ordering::Relaxed)
}
