//! Bad fixture: trips float-accounting in an integer-ns accounting module.

pub fn mean_secs(samples: &[u64]) -> f64 {
    let sum: u64 = samples.iter().sum();
    sum as f64 * 1e-9 / samples.len() as f64
}

pub fn literal() -> u64 {
    let _x = 0.5;
    let _hex_is_not_a_float = 0x1e5;
    let _tuple = (1u64, 2u64);
    _tuple.0
}
