//! Bad fixture: trips default-hash, thread-in-sim, unwrap-lib, and the
//! allow-comment audit. Never compiled — scanned as data by the lint tests.

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Mutex;

pub fn state() -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}

pub fn members() -> HashSet<u64> {
    HashSet::new()
}

pub fn guarded() -> Mutex<u64> {
    std::thread::spawn(|| {});
    Mutex::new(0)
}

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn second(v: &[u64]) -> u64 {
    // das-lint: allow(no-such-rule): unknown rules must be reported
    *v.get(1).unwrap()
}

pub fn third(v: &[u64]) -> u64 {
    // das-lint: allow(unwrap-lib)
    *v.get(2).unwrap()
}

// das-lint: allow(unwrap-lib): this allow waives nothing and must be flagged
pub fn fourth() -> u64 {
    4
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
        let _t = std::time::Instant::now();
    }
}
