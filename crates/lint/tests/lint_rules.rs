//! Fixture-driven self-tests: every rule must fire on the bad corpus, the
//! allow escape hatch must waive (and be audited), and the binary must exit
//! nonzero on violations.

use std::path::Path;
use std::process::Command;

use das_lint::{scan_workspace, Report, RuleId};

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scan(name: &str) -> Report {
    scan_workspace(&fixture(name)).expect("fixture tree scans")
}

fn count(report: &Report, rule: RuleId) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn default_hash_fires_in_deterministic_crates() {
    let r = scan("bad");
    // HashMap (type + constructor) and HashSet (type + constructor) in
    // crates/sim/src/lib.rs; the use-declarations count too.
    assert!(count(&r, RuleId::DefaultHash) >= 4, "{}", r.render());
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == RuleId::DefaultHash && f.path == "crates/sim/src/lib.rs"));
}

#[test]
fn wall_clock_fires_outside_rt_and_bench() {
    let r = scan("bad");
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::WallClock)
        .collect();
    assert!(hits.iter().any(|f| f.what.contains("Instant::now")), "{}", r.render());
    assert!(hits.iter().any(|f| f.what.contains("SystemTime::now")));
    assert!(hits.iter().any(|f| f.what.contains("thread_rng")));
    assert!(hits.iter().all(|f| f.path == "crates/sched/src/lib.rs"));
}

#[test]
fn float_accounting_fires_in_accounting_files_only() {
    let r = scan("bad");
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::FloatAccounting)
        .collect();
    assert!(!hits.is_empty(), "{}", r.render());
    assert!(hits.iter().all(|f| f.path == "crates/trace/src/analysis.rs"));
    // `f64` words and the 0.5 literal fire; hex 0x1e5 and tuple .0 must not.
    assert!(hits.iter().any(|f| f.what.contains("f64")));
    assert!(hits.iter().any(|f| f.what.contains("float literal")));
    let float_literals = hits
        .iter()
        .filter(|f| f.what.contains("float literal"))
        .count();
    assert_eq!(float_literals, 1, "hex/tuple-field false positive: {}", r.render());
}

#[test]
fn thread_and_mutex_fire_in_pure_sim_crates() {
    let r = scan("bad");
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::ThreadInSim)
        .collect();
    assert!(hits.iter().any(|f| f.what.contains("thread::spawn")), "{}", r.render());
    assert!(hits.iter().any(|f| f.what.contains("Mutex")));
}

#[test]
fn unwrap_fires_in_library_code() {
    let r = scan("bad");
    assert!(count(&r, RuleId::UnwrapLib) >= 1, "{}", r.render());
}

#[test]
fn raw_sync_fires_outside_the_facade() {
    let r = scan("bad");
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::RawSync)
        .collect();
    // parking_lot, crossbeam, std::sync::Condvar, and the grouped
    // `std::sync::{Arc as _, Mutex}` import in the rt fixture all fire.
    assert!(hits.iter().any(|f| f.what.contains("parking_lot")), "{}", r.render());
    assert!(hits.iter().any(|f| f.what.contains("crossbeam")));
    assert!(hits.iter().any(|f| f.what.contains("std::sync")));
    assert!(
        hits.iter()
            .any(|f| f.path == "crates/rt/src/lib.rs" && f.line == 24),
        "grouped import must fire: {}",
        r.render()
    );
    // `use std::sync::Arc;` alone (bad rt fixture line 6) must NOT fire.
    assert!(
        !hits
            .iter()
            .any(|f| f.path == "crates/rt/src/lib.rs" && f.line == 6),
        "Arc-only import is exempt: {}",
        r.render()
    );
}

#[test]
fn ordering_relaxed_requires_waiver() {
    let r = scan("bad");
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::OrderingRelaxed)
        .collect();
    // The unaudited load fires; the audited load is waived (and therefore
    // appears as a suppression, not a finding).
    assert_eq!(hits.len(), 1, "{}", r.render());
    assert!(hits.iter().all(|f| f.path == "crates/rt/src/lib.rs"));
    assert!(r
        .suppressions
        .iter()
        .any(|s| s.rule == RuleId::OrderingRelaxed && s.reason.contains("monotonic")));
}

#[test]
fn bad_allows_are_flagged() {
    let r = scan("bad");
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::BadAllow)
        .collect();
    // Unknown rule name, missing reason, and an allow that waives nothing.
    assert!(hits.iter().any(|f| f.what.contains("no-such-rule")), "{}", r.render());
    assert!(hits.iter().any(|f| f.what.contains("reason")));
    assert!(hits.iter().any(|f| f.what.contains("nothing")));
}

#[test]
fn cfg_test_modules_and_strings_are_exempt() {
    let r = scan("bad");
    // The #[cfg(test)] module in sim/lib.rs uses HashMap and Instant::now;
    // sched/lib.rs mentions all the tokens inside a string and a comment.
    // None of those lines may produce findings.
    for f in &r.findings {
        assert!(
            !(f.path == "crates/sim/src/lib.rs" && f.line >= 42),
            "fired inside #[cfg(test)]: {f}"
        );
        assert!(
            !(f.path == "crates/sched/src/lib.rs" && f.line >= 14),
            "fired inside a string/comment: {f}"
        );
    }
}

#[test]
fn clean_tree_passes_with_audited_suppression() {
    let r = scan("clean");
    assert!(r.is_clean(), "{}", r.render());
    // One unwrap-lib waiver in sim, one ordering-relaxed waiver in rt; the
    // facade fixture (crates/sync) needs no waivers at all.
    assert_eq!(r.suppressions.len(), 2, "{}", r.render());
    assert!(r
        .suppressions
        .iter()
        .any(|s| s.rule == RuleId::UnwrapLib
            && s.path == "crates/sim/src/lib.rs"
            && s.reason.contains("non-empty invariant")));
    assert!(r
        .suppressions
        .iter()
        .any(|s| s.rule == RuleId::OrderingRelaxed && s.path == "crates/rt/src/lib.rs"));
    // The suppression table is part of the rendered report.
    assert!(r.render().contains("suppressions (justified waivers):"));
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_das_lint");
    let bad = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(fixture("bad"))
        .output()
        .expect("run das_lint on bad fixture");
    assert_eq!(bad.status.code(), Some(1), "bad fixture must fail");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("violation(s)"), "{stdout}");

    let clean = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(fixture("clean"))
        .output()
        .expect("run das_lint on clean fixture");
    assert_eq!(clean.status.code(), Some(0), "clean fixture must pass");

    let usage = Command::new(bin)
        .arg("--no-such-flag")
        .output()
        .expect("run das_lint with a bad flag");
    assert_eq!(usage.status.code(), Some(2), "usage errors exit 2");
}
