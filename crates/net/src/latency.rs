//! Message latency models.
//!
//! A [`NetworkModel`] converts a message of a given size into a simulated
//! one-way delay: propagation (drawn from a configurable distribution) plus
//! serialization (`bytes / bandwidth`). Configurations are plain serde
//! structs so experiments can be described declaratively.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use das_sim::dist::{Deterministic, Lognormal, Sample, Uniform};
use das_sim::time::SimDuration;

/// Declarative latency distribution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum LatencyConfig {
    /// Fixed delay.
    Constant {
        /// Delay in microseconds.
        micros: f64,
    },
    /// Uniform in `[min_micros, max_micros)`.
    Uniform {
        /// Lower bound, microseconds.
        min_micros: f64,
        /// Upper bound, microseconds.
        max_micros: f64,
    },
    /// Lognormal with the given mean and log-space sigma — the standard
    /// datacenter RTT shape (long right tail).
    Lognormal {
        /// Mean delay, microseconds.
        mean_micros: f64,
        /// Log-space standard deviation (0.3–0.7 is typical).
        sigma: f64,
    },
}

impl LatencyConfig {
    /// A typical intra-datacenter one-way delay: lognormal with 50 µs mean.
    pub fn datacenter_default() -> Self {
        LatencyConfig::Lognormal {
            mean_micros: 50.0,
            sigma: 0.4,
        }
    }

    fn build(&self) -> Box<dyn Sample + Send + Sync> {
        match *self {
            LatencyConfig::Constant { micros } => Box::new(Deterministic::new(micros)),
            LatencyConfig::Uniform {
                min_micros,
                max_micros,
            } => Box::new(Uniform::new(min_micros, max_micros)),
            LatencyConfig::Lognormal { mean_micros, sigma } => {
                Box::new(Lognormal::with_mean(mean_micros, sigma))
            }
        }
    }

    /// Mean one-way delay in seconds.
    pub fn mean_secs(&self) -> f64 {
        match *self {
            LatencyConfig::Constant { micros } => micros * 1e-6,
            LatencyConfig::Uniform {
                min_micros,
                max_micros,
            } => 0.5 * (min_micros + max_micros) * 1e-6,
            LatencyConfig::Lognormal { mean_micros, .. } => mean_micros * 1e-6,
        }
    }
}

/// Network model configuration: propagation + optional bandwidth term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Propagation/queuing delay distribution.
    pub latency: LatencyConfig,
    /// Link bandwidth in bytes/second; `None` disables the serialization
    /// term (infinite bandwidth).
    pub bandwidth_bytes_per_sec: Option<f64>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyConfig::datacenter_default(),
            // 10 Gbit/s.
            bandwidth_bytes_per_sec: Some(1.25e9),
        }
    }
}

impl NetworkConfig {
    /// An idealized zero-latency, infinite-bandwidth network (useful to
    /// isolate scheduling effects in unit tests).
    pub fn ideal() -> Self {
        NetworkConfig {
            latency: LatencyConfig::Constant { micros: 0.0 },
            bandwidth_bytes_per_sec: None,
        }
    }

    /// Builds the sampling model.
    pub fn build(&self) -> NetworkModel {
        NetworkModel {
            latency: self.latency.build(),
            bandwidth: self.bandwidth_bytes_per_sec,
        }
    }
}

/// Samples per-message one-way delays.
pub struct NetworkModel {
    latency: Box<dyn Sample + Send + Sync>,
    bandwidth: Option<f64>,
}

impl std::fmt::Debug for NetworkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkModel")
            .field("bandwidth", &self.bandwidth)
            .finish_non_exhaustive()
    }
}

impl NetworkModel {
    /// One-way delay for a message of `bytes` length.
    pub fn delay(&self, bytes: u64, rng: &mut dyn RngCore) -> SimDuration {
        let prop_micros = self.latency.sample(rng).max(0.0);
        let mut secs = prop_micros * 1e-6;
        if let Some(bw) = self.bandwidth {
            secs += bytes as f64 / bw;
        }
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sim::rng::SeedFactory;

    #[test]
    fn constant_latency() {
        let m = NetworkConfig {
            latency: LatencyConfig::Constant { micros: 100.0 },
            bandwidth_bytes_per_sec: None,
        }
        .build();
        let mut rng = SeedFactory::new(1).stream("net", 0);
        assert_eq!(m.delay(0, &mut rng), SimDuration::from_micros(100));
        assert_eq!(m.delay(1 << 30, &mut rng), SimDuration::from_micros(100));
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let m = NetworkConfig {
            latency: LatencyConfig::Constant { micros: 0.0 },
            bandwidth_bytes_per_sec: Some(1e6),
        }
        .build();
        let mut rng = SeedFactory::new(1).stream("net", 0);
        assert_eq!(m.delay(1000, &mut rng), SimDuration::from_millis(1));
        assert_eq!(m.delay(0, &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn lognormal_mean_approx() {
        let m = NetworkConfig {
            latency: LatencyConfig::Lognormal {
                mean_micros: 50.0,
                sigma: 0.4,
            },
            bandwidth_bytes_per_sec: None,
        }
        .build();
        let mut rng = SeedFactory::new(2).stream("net", 0);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| m.delay(0, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 50e-6).abs() / 50e-6 < 0.05, "mean = {mean}");
    }

    #[test]
    fn ideal_network_is_free() {
        let m = NetworkConfig::ideal().build();
        let mut rng = SeedFactory::new(3).stream("net", 0);
        assert_eq!(m.delay(1 << 20, &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = NetworkConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: NetworkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn mean_secs_matches_config() {
        assert!((LatencyConfig::Constant { micros: 10.0 }.mean_secs() - 10e-6).abs() < 1e-12);
        let uni = LatencyConfig::Uniform {
            min_micros: 0.0,
            max_micros: 20.0,
        };
        assert!((uni.mean_secs() - 10e-6).abs() < 1e-12);
        assert!((LatencyConfig::datacenter_default().mean_secs() - 50e-6).abs() < 1e-12);
    }
}
