//! Message and byte accounting for the scheduling-overhead table.
//!
//! Every control message a scheduler sends (operation metadata, piggybacked
//! load reports, progress hints) is charged here, so Table 3 of the
//! evaluation can report bytes-per-op and messages-per-request for each
//! policy.

use serde::{Deserialize, Serialize};

/// Categories of simulated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// The key-value operation itself (key + framing).
    OpRequest,
    /// The value returned to the coordinator.
    OpResponse,
    /// Extra scheduling metadata attached to a request (priority tags etc.).
    SchedulingMetadata,
    /// Piggybacked server state (queue depth, rate estimate) on responses.
    PiggybackReport,
    /// Standalone progress-hint messages between coordinator and servers.
    ProgressHint,
}

impl TrafficClass {
    /// All classes, in reporting order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::OpRequest,
        TrafficClass::OpResponse,
        TrafficClass::SchedulingMetadata,
        TrafficClass::PiggybackReport,
        TrafficClass::ProgressHint,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::OpRequest => "op request",
            TrafficClass::OpResponse => "op response",
            TrafficClass::SchedulingMetadata => "sched metadata",
            TrafficClass::PiggybackReport => "piggyback report",
            TrafficClass::ProgressHint => "progress hint",
        }
    }

    fn index(self) -> usize {
        match self {
            TrafficClass::OpRequest => 0,
            TrafficClass::OpResponse => 1,
            TrafficClass::SchedulingMetadata => 2,
            TrafficClass::PiggybackReport => 3,
            TrafficClass::ProgressHint => 4,
        }
    }
}

/// Wire-size constants for scheduling metadata, mirroring a compact binary
/// encoding a real implementation would use.
pub mod wire {
    /// Fixed framing per message (headers, ids).
    pub const MSG_HEADER_BYTES: u64 = 24;
    /// A DAS priority tag: request id (8) + bottleneck estimate (4) +
    /// remaining-width (2) + dispatch timestamp (8).
    pub const DAS_TAG_BYTES: u64 = 22;
    /// A Rein-SBF tag: request id (8) + bottleneck size (4).
    pub const REIN_TAG_BYTES: u64 = 12;
    /// A piggybacked server report: queue depth (4) + rate estimate (4).
    pub const PIGGYBACK_BYTES: u64 = 8;
    /// A progress hint: request id (8) + new remaining estimate (4).
    pub const HINT_BYTES: u64 = 12;
}

/// Counters of messages and bytes per [`TrafficClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficAccounting {
    messages: [u64; 5],
    bytes: [u64; 5],
}

impl TrafficAccounting {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one message of `bytes` in `class`.
    pub fn charge(&mut self, class: TrafficClass, bytes: u64) {
        let i = class.index();
        self.messages[i] += 1;
        self.bytes[i] += bytes;
    }

    /// Charges bytes without a message boundary (piggybacked payloads ride
    /// on an existing message).
    pub fn charge_bytes(&mut self, class: TrafficClass, bytes: u64) {
        self.bytes[class.index()] += bytes;
    }

    /// Message count for `class`.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Byte count for `class`.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Bytes of pure scheduling overhead (everything except the op request
    /// and response payloads).
    pub fn overhead_bytes(&self) -> u64 {
        self.bytes(TrafficClass::SchedulingMetadata)
            + self.bytes(TrafficClass::PiggybackReport)
            + self.bytes(TrafficClass::ProgressHint)
    }

    /// Extra messages beyond the unavoidable request/response pairs.
    pub fn overhead_messages(&self) -> u64 {
        self.messages(TrafficClass::ProgressHint)
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &TrafficAccounting) {
        for i in 0..5 {
            self.messages[i] += other.messages[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut a = TrafficAccounting::new();
        a.charge(TrafficClass::OpRequest, 100);
        a.charge(TrafficClass::OpRequest, 50);
        a.charge_bytes(TrafficClass::PiggybackReport, 8);
        assert_eq!(a.messages(TrafficClass::OpRequest), 2);
        assert_eq!(a.bytes(TrafficClass::OpRequest), 150);
        assert_eq!(a.messages(TrafficClass::PiggybackReport), 0);
        assert_eq!(a.bytes(TrafficClass::PiggybackReport), 8);
        assert_eq!(a.total_bytes(), 158);
        assert_eq!(a.total_messages(), 2);
    }

    #[test]
    fn overhead_excludes_payload() {
        let mut a = TrafficAccounting::new();
        a.charge(TrafficClass::OpRequest, 1000);
        a.charge(TrafficClass::OpResponse, 4000);
        a.charge_bytes(TrafficClass::SchedulingMetadata, 22);
        a.charge(TrafficClass::ProgressHint, 36);
        assert_eq!(a.overhead_bytes(), 58);
        assert_eq!(a.overhead_messages(), 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = TrafficAccounting::new();
        let mut b = TrafficAccounting::new();
        a.charge(TrafficClass::OpRequest, 10);
        b.charge(TrafficClass::OpRequest, 5);
        b.charge(TrafficClass::ProgressHint, 12);
        a.merge(&b);
        assert_eq!(a.bytes(TrafficClass::OpRequest), 15);
        assert_eq!(a.messages(TrafficClass::OpRequest), 2);
        assert_eq!(a.messages(TrafficClass::ProgressHint), 1);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<&str> =
            TrafficClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), TrafficClass::ALL.len());
    }
}
