//! Per-message link faults: loss, duplication, and extra delay.
//!
//! A [`LinkFaults`] describes what can happen to one message class (e.g.
//! op requests, or op responses) in flight. [`LinkFaults::decide`] rolls
//! the dice for one message and returns a [`MessageFate`]: how many copies
//! actually arrive (0 = lost, 2 = duplicated) and any extra delay beyond
//! the latency model's draw. Everything defaults to zero, in which case
//! `decide` draws **no randomness at all** — fault-free runs stay
//! bit-identical to builds that predate this module.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use das_sim::rng::open_unit;
use das_sim::time::SimDuration;

/// Fault knobs for one direction of one message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    #[serde(default)]
    pub loss: f64,
    /// Probability a message is delivered twice (loss wins if both fire).
    #[serde(default)]
    pub duplication: f64,
    /// Probability a delivered message is delayed by `extra_delay_micros`
    /// on top of the latency model's draw.
    #[serde(default)]
    pub extra_delay_prob: f64,
    /// The extra delay applied when the previous probability fires.
    #[serde(default)]
    pub extra_delay_micros: f64,
}

/// What happens to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFate {
    /// Delivered copies: 0 (lost), 1, or 2 (duplicated).
    pub copies: u8,
    /// Extra delay added to every delivered copy.
    pub extra_delay: SimDuration,
}

impl MessageFate {
    /// The fate of a message on a fault-free link.
    pub const CLEAN: MessageFate = MessageFate {
        copies: 1,
        extra_delay: SimDuration::ZERO,
    };
}

impl LinkFaults {
    /// A fault-free link.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when any knob is non-zero (i.e. `decide` may draw randomness).
    pub fn is_active(&self) -> bool {
        self.loss > 0.0 || self.duplication > 0.0 || self.extra_delay_prob > 0.0
    }

    /// Rolls the fate of one message. Draws from `rng` only for the knobs
    /// that are actually non-zero, so inactive links consume nothing.
    pub fn decide(&self, rng: &mut dyn RngCore) -> MessageFate {
        let mut fate = MessageFate::CLEAN;
        if self.loss > 0.0 && open_unit(rng) <= self.loss {
            fate.copies = 0;
            return fate;
        }
        if self.duplication > 0.0 && open_unit(rng) <= self.duplication {
            fate.copies = 2;
        }
        if self.extra_delay_prob > 0.0 && open_unit(rng) <= self.extra_delay_prob {
            fate.extra_delay = SimDuration::from_secs_f64(self.extra_delay_micros * 1e-6);
        }
        fate
    }

    /// Human-readable description of the first invalid knob, if any.
    pub fn first_invalid(&self) -> Option<&'static str> {
        let prob_ok = |p: f64| (0.0..=1.0).contains(&p);
        if !prob_ok(self.loss) {
            Some("loss must be in [0, 1]")
        } else if !prob_ok(self.duplication) {
            Some("duplication must be in [0, 1]")
        } else if !prob_ok(self.extra_delay_prob) {
            Some("extra_delay_prob must be in [0, 1]")
        } else if !(self.extra_delay_micros.is_finite() && self.extra_delay_micros >= 0.0) {
            Some("extra_delay_micros must be finite and >= 0")
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sim::rng::SeedFactory;

    #[test]
    fn inactive_link_is_clean_and_draws_nothing() {
        let mut rng = SeedFactory::new(1).stream("faults", 0);
        let mut twin = SeedFactory::new(1).stream("faults", 0);
        let fate = LinkFaults::none().decide(&mut rng);
        assert_eq!(fate, MessageFate::CLEAN);
        // No randomness consumed: the next draw matches an untouched twin.
        assert_eq!(rng.next_u64(), twin.next_u64());
        assert!(!LinkFaults::none().is_active());
    }

    #[test]
    fn certain_loss_drops_everything() {
        let lf = LinkFaults {
            loss: 1.0,
            ..Default::default()
        };
        let mut rng = SeedFactory::new(2).stream("faults", 0);
        for _ in 0..100 {
            assert_eq!(lf.decide(&mut rng).copies, 0);
        }
    }

    #[test]
    fn duplication_and_delay_compose() {
        let lf = LinkFaults {
            loss: 0.0,
            duplication: 1.0,
            extra_delay_prob: 1.0,
            extra_delay_micros: 250.0,
        };
        let mut rng = SeedFactory::new(3).stream("faults", 0);
        let fate = lf.decide(&mut rng);
        assert_eq!(fate.copies, 2);
        assert_eq!(fate.extra_delay, SimDuration::from_micros(250));
    }

    #[test]
    fn probabilistic_loss_rate_is_plausible() {
        let lf = LinkFaults {
            loss: 0.2,
            ..Default::default()
        };
        let mut rng = SeedFactory::new(4).stream("faults", 0);
        let lost = (0..20_000)
            .filter(|_| lf.decide(&mut rng).copies == 0)
            .count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn validation_catches_bad_knobs() {
        assert!(LinkFaults::none().first_invalid().is_none());
        let bad = LinkFaults {
            loss: 1.5,
            ..Default::default()
        };
        assert!(bad.first_invalid().unwrap().contains("loss"));
        let bad = LinkFaults {
            extra_delay_micros: f64::NAN,
            extra_delay_prob: 0.5,
            ..Default::default()
        };
        assert!(bad.first_invalid().unwrap().contains("extra_delay_micros"));
    }

    #[test]
    fn serde_roundtrip() {
        let lf = LinkFaults {
            loss: 0.01,
            duplication: 0.02,
            extra_delay_prob: 0.1,
            extra_delay_micros: 500.0,
        };
        let json = serde_json::to_string(&lf).unwrap();
        let back: LinkFaults = serde_json::from_str(&json).unwrap();
        assert_eq!(lf, back);
        // Missing fields default to zero.
        let empty: LinkFaults = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, LinkFaults::none());
    }
}
