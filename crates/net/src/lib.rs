//! # das-net — simulated network substrate
//!
//! Message delays and traffic accounting for the simulated cluster:
//!
//! * [`latency`] — declarative latency models ([`latency::NetworkConfig`])
//!   producing per-message one-way delays (propagation distribution +
//!   bandwidth serialization term);
//! * [`accounting`] — per-class message/byte counters used to quantify
//!   each scheduler's coordination overhead (Table 3 of the evaluation);
//! * [`faults`] — per-message loss/duplication/extra-delay injection for
//!   the fault-tolerance experiments.
//!
//! ```
//! use das_net::latency::NetworkConfig;
//! use das_sim::rng::SeedFactory;
//!
//! let net = NetworkConfig::default().build();
//! let mut rng = SeedFactory::new(1).stream("net", 0);
//! let d = net.delay(4096, &mut rng);
//! assert!(d.as_secs_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod accounting;
pub mod faults;
pub mod latency;

pub use accounting::{TrafficAccounting, TrafficClass};
pub use faults::{LinkFaults, MessageFate};
pub use latency::{LatencyConfig, NetworkConfig, NetworkModel};
