//! # das-store — simulated distributed key-value store
//!
//! The substrate the schedulers run on: a partitioned cluster of storage
//! servers, a coordinator that splits multi-get requests into per-server
//! operations, and the discrete-event engine that simulates the whole
//! system deterministically.
//!
//! * [`partition`] — hash / consistent-hash / range key placement with
//!   replication;
//! * [`server`] — scheduler-fronted service stations with time-varying
//!   performance;
//! * [`coordinator`] — piggyback-driven load and rate estimates, in-flight
//!   request tracking;
//! * [`config`] — serde cluster + run configuration (including scheduled
//!   server slowdowns for the adaptivity experiments);
//! * [`engine`] — [`engine::run_simulation`], producing a
//!   [`engine::RunResult`] with RCT distributions, slowdown classes,
//!   traffic accounting, and utilization.
//!
//! ```
//! use das_store::config::SimulationConfig;
//! use das_store::engine::{run_simulation, KeyRead, StoreRequest};
//! use das_sched::policy::PolicyKind;
//! use das_sim::time::SimTime;
//!
//! let mut cfg = SimulationConfig::new(PolicyKind::das(), 1.0);
//! cfg.cluster.servers = 4;
//! cfg.warmup_secs = 0.0;
//! let reqs = (0..100u64).map(|i| StoreRequest {
//!     id: i,
//!     arrival: SimTime::from_micros(i * 200),
//!     reads: vec![KeyRead::read(i, 1024)],
//! });
//! let result = run_simulation(&cfg, reqs).unwrap();
//! assert_eq!(result.completed, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod coordinator;
pub mod engine;
pub mod partition;
pub mod server;

pub use config::{ClusterConfig, OverloadProfile, PerfEvent, SimulationConfig};
pub use engine::{run_simulation, KeyRead, RunResult, StoreRequest};
pub use partition::{Partitioner, PartitionerConfig};
