//! The discrete-event simulation engine: coordinator, network, and servers
//! wired together.
//!
//! One run simulates a single logical coordinator (the client tier) issuing
//! multi-get requests against `N` servers. Per-key reads are coalesced into
//! one operation per target server, as real multi-get RPCs are. The engine
//! is fully deterministic given the configuration seed.

use std::collections::{BTreeMap, BTreeSet};

use das_metrics::batch::{BatchMeans, BatchingStats};
use das_metrics::quantile::P2Quantile;
use das_metrics::recovery::RecoveryStats;
use das_metrics::slowdown::SlowdownTracker;
use das_metrics::summary::LatencySummary;
use das_metrics::timeseries::TimeSeries;
use das_net::accounting::{wire, TrafficAccounting, TrafficClass};
use das_net::latency::NetworkModel;
use das_sched::scheduler::DequeueDecision;
use das_sched::types::{HintUpdate, OpId, OpTag, QueuedOp, RequestId, ServerId, ServerReport};
use das_sim::dist::{Lognormal, Sample};
use das_sim::queue::EventQueue;
use das_sim::rng::{SeedFactory, SimRng};
use das_sim::stats::OnlineStats;
use das_sim::time::{SimDuration, SimTime};
use das_trace::{DispatchKind, ShedReason, TraceEvent, TraceLog, TraceRecorder};

use crate::config::{BackpressureConfig, OverloadProfile, SimulationConfig};
use crate::coordinator::{Coordinator, PendingOp, RequestState};
use crate::partition::Partitioner;
use crate::server::{InServiceOp, Server};

/// One multi-get request as the store sees it: keys with resolved value
/// sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRequest {
    /// Request id (unique, increasing).
    pub id: u64,
    /// Arrival instant at the coordinator.
    pub arrival: SimTime,
    /// The keys to read and their value sizes.
    pub reads: Vec<KeyRead>,
}

/// One key access within a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRead {
    /// The key.
    pub key: u64,
    /// Its value size in bytes.
    pub bytes: u32,
    /// True for a put (the value travels *to* the server and the response
    /// is a small ack); false for a get.
    pub write: bool,
}

impl KeyRead {
    /// A read access.
    pub fn read(key: u64, bytes: u32) -> Self {
        KeyRead {
            key,
            bytes,
            write: false,
        }
    }

    /// A write access.
    pub fn write(key: u64, bytes: u32) -> Self {
        KeyRead {
            key,
            bytes,
            write: true,
        }
    }
}

/// Everything measured during a run.
#[derive(Debug)]
pub struct RunResult {
    /// Display name of the policy that ran.
    pub policy: String,
    /// Requests that completed (including warmup).
    pub completed: u64,
    /// Requests inside the measurement window.
    pub measured: u64,
    /// Request completion time distribution (measured window only).
    pub rct: LatencySummary,
    /// ~95% batch-means confidence half-width on the mean RCT, seconds
    /// (`None` when the run is too short for a meaningful interval).
    pub mean_rct_ci95: Option<f64>,
    /// RCT binned by request *arrival* time (all completed requests) —
    /// used by the time-varying figures.
    pub rct_over_time: Option<TimeSeries>,
    /// Per-fan-out-class slowdown (actual / zero-queueing ideal).
    pub slowdown: SlowdownTracker,
    /// Message/byte accounting.
    pub traffic: TrafficAccounting,
    /// Mean server utilization over the horizon.
    pub mean_utilization: f64,
    /// The busiest server's utilization.
    pub max_utilization: f64,
    /// Utilization of each server over the horizon (index = server id).
    pub per_server_utilization: Vec<f64>,
    /// Mean zero-queueing ideal RCT over measured requests — the lower
    /// bound no policy can beat. The per-request ideal uses *mean* network
    /// delays, so the bound holds in expectation (individual requests can
    /// undershoot it when their sampled network delays land below the
    /// mean).
    pub lower_bound_mean_rct: f64,
    /// Mean number of ops per request after per-server coalescing.
    pub mean_ops_per_request: f64,
    /// Total simulated events processed (a cost/progress indicator).
    pub events_processed: u64,
    /// Fault-recovery accounting (all zeros on a fault-free run).
    pub recovery: RecoveryStats,
    /// Structured event log (`None` unless tracing was enabled).
    pub trace: Option<TraceLog>,
}

impl RunResult {
    /// Mean RCT in seconds (measured window).
    pub fn mean_rct(&self) -> f64 {
        self.rct.mean()
    }

    /// p99 RCT in seconds (measured window).
    pub fn p99_rct(&self) -> f64 {
        self.rct.p99()
    }
}

/// Byte accounting for one in-flight op.
#[derive(Debug, Clone, Copy)]
struct OpBytes {
    /// Bytes driving the service time (reads + writes).
    service: u64,
    /// Bytes returned in the response (reads only).
    response: u64,
}

#[derive(Debug)]
enum Event {
    NextArrival,
    OpArrival {
        server: ServerId,
        op: QueuedOp,
    },
    ServiceDone {
        server: ServerId,
        op: OpId,
        bytes: u64,
        /// True service duration (for goodput/wasted-work accounting).
        service: SimDuration,
        /// Server incarnation at dispatch; a crash in between makes this
        /// stale and the completion is discarded.
        incarnation: u64,
    },
    ResponseArrival {
        op: OpId,
        /// Which server answered (attempt resolution under retries/hedges).
        server: ServerId,
        /// Service duration behind this response.
        service: SimDuration,
        report: Option<ServerReport>,
    },
    Hint {
        server: ServerId,
        request: RequestId,
        update: HintUpdate,
    },
    /// Crash-stop of one server (fault schedules only).
    ServerCrash {
        server: ServerId,
    },
    /// Recovery (empty) of one crashed server.
    ServerRecover {
        server: ServerId,
    },
    /// Per-attempt deadline expiry at the coordinator.
    OpTimeout {
        op: OpId,
        attempt: u32,
    },
    /// Hedge timer: speculatively duplicate a still-pending read.
    HedgeFire {
        op: OpId,
    },
    /// Backoff expired: re-dispatch a failed op.
    RetryDispatch {
        op: OpId,
    },
}

/// One dispatched attempt of one op, as the coordinator tracks it.
#[derive(Debug)]
struct Attempt {
    server: ServerId,
    /// Outstanding-work charge to release when the attempt resolves.
    estimate: f64,
    dispatched: SimTime,
    /// True until a response is accepted, the deadline expires, or the
    /// server crashes. Responses for closed attempts are discarded.
    open: bool,
}

/// Engine-side recovery state for one in-flight op (fault mode only).
#[derive(Debug)]
struct OpRuntime {
    /// Servers that can serve every key of this op (retry/hedge targets).
    candidates: Vec<ServerId>,
    /// Key count and written bytes (wire accounting for re-dispatches).
    keys: u32,
    written: u64,
    attempts: Vec<Attempt>,
    /// Sequential (non-hedge) dispatches so far, bounded by
    /// `retry.max_attempts`.
    seq_attempts: u32,
    /// A hedge was scheduled or fired (at most one per op).
    hedged: bool,
    /// A `RetryDispatch` is already queued.
    retry_pending: bool,
}

impl OpRuntime {
    fn open_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| a.open).count()
    }
}

/// Everything the engine tracks only when the fault layer is active. Kept
/// behind an `Option` so fault-free runs take none of these code paths and
/// stay bit-identical to builds without fault injection.
#[derive(Debug)]
struct FaultRuntime {
    /// Dedicated stream: fault randomness never perturbs the net/noise
    /// streams.
    rng: SimRng,
    ops: BTreeMap<OpId, OpRuntime>,
    /// Requests that saw at least one timeout/retry/hedge/crash/duplicate.
    exposed: BTreeSet<RequestId>,
    /// Online op-latency quantile that sets the hedge delay.
    latency: P2Quantile,
    stats: RecoveryStats,
    /// Server-seconds of service performed (including partial service cut
    /// short by crashes). `wasted = total - goodput` at the end of the run.
    total_service_secs: f64,
    goodput_service_secs: f64,
}

/// Everything the engine tracks only when any overload-control knob is
/// active (admission, bounded queues, retry budget, or batching). Kept
/// behind an `Option` so defaults-off runs take none of these code paths
/// and stay bit-identical to builds without overload control.
#[derive(Debug)]
struct OverloadRuntime {
    /// Retry/hedge token budget. Refilled purely from elapsed simulation
    /// time, so the bucket is deterministic and draws no randomness.
    tokens: f64,
    last_refill: SimTime,
    /// Requests shed at a full server queue. Their remaining deliveries
    /// and responses are dropped at the door instead of tripping the
    /// untracked-request assertions.
    shed_requests: BTreeSet<RequestId>,
    shed_admission: u64,
    shed_queue: u64,
    retries_denied: u64,
    hedges_denied: u64,
    batching: BatchingStats,
    /// Fault-free mode only: service-seconds behind accepted responses.
    /// (Fault mode already splits goodput/wasted in `FaultRuntime`.)
    goodput_service_secs: f64,
    /// Fault-free mode only: service-seconds of responses discarded
    /// because their request had been shed.
    wasted_service_secs: f64,
}

impl OverloadRuntime {
    fn new(profile: &OverloadProfile) -> Self {
        OverloadRuntime {
            tokens: profile.backpressure.burst,
            last_refill: SimTime::ZERO,
            shed_requests: BTreeSet::new(),
            shed_admission: 0,
            shed_queue: 0,
            retries_denied: 0,
            hedges_denied: 0,
            batching: BatchingStats::new(),
            goodput_service_secs: 0.0,
            wasted_service_secs: 0.0,
        }
    }

    /// Refills from simulated elapsed time and takes one token if a whole
    /// one is available.
    fn try_take_token(&mut self, cfg: &BackpressureConfig, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * cfg.tokens_per_sec).min(cfg.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn is_shed(&self, request: RequestId) -> bool {
        self.shed_requests.contains(&request)
    }
}

/// Runs one simulation over `requests` (which must arrive in
/// non-decreasing order). Returns an error message for invalid configs.
///
/// Equal-arrival requests are injected in iterator order, which is part
/// of the determinism contract: replay paths pin it to ascending
/// `(arrival, id)` (see `das_workload::trace::replay_order`), and the
/// generator emits that order natively, so a recorded trace replays
/// bit-identically to the generative stream.
pub fn run_simulation<I>(config: &SimulationConfig, requests: I) -> Result<RunResult, String>
where
    I: IntoIterator<Item = StoreRequest>,
{
    config.validate().map_err(|e| e.to_string())?;
    Engine::new(config)?.run(requests.into_iter())
}

struct Engine<'a> {
    config: &'a SimulationConfig,
    queue: EventQueue<Event>,
    servers: Vec<Server>,
    /// One per configured coordinator; a request's owner is
    /// `id % coordinators`.
    coordinators: Vec<Coordinator>,
    partitioner: Partitioner,
    net: NetworkModel,
    net_mean_secs: f64,
    net_rng: SimRng,
    noise_rng: SimRng,
    noise: Option<Lognormal>,
    traffic: TrafficAccounting,
    /// True byte accounting per in-flight op (the scheduler only sees
    /// estimates).
    op_bytes: BTreeMap<OpId, OpBytes>,
    // Policy capabilities, read once.
    wants_hints: bool,
    wants_piggyback: bool,
    metadata_bytes: u64,
    oracle: bool,
    // Measurement.
    horizon: SimTime,
    warmup: SimTime,
    rct: LatencySummary,
    rct_batches: BatchMeans,
    rct_over_time: Option<TimeSeries>,
    slowdown: SlowdownTracker,
    ideal_stats: OnlineStats,
    ops_per_request: OnlineStats,
    completed: u64,
    measured: u64,
    events_processed: u64,
    pending_next: Option<StoreRequest>,
    /// Requests admitted (dispatched) this run.
    accepted: u64,
    /// Present iff any fault knob is active; `None` keeps every hot path
    /// identical to a fault-free build.
    fault: Option<FaultRuntime>,
    /// Present iff any overload-control knob is active; `None` keeps
    /// defaults-off runs bit-identical (admission, queue bounds, the
    /// retry budget, and batching all cost a single `Option` check).
    overload: Option<OverloadRuntime>,
    /// Present iff tracing is enabled; `None` keeps untraced runs at a
    /// single `Option` check per would-be event. The recorder never draws
    /// randomness and never schedules events, so a traced run's simulation
    /// results are bit-identical to an untraced run's.
    trace: Option<TraceRecorder>,
}

impl<'a> Engine<'a> {
    fn new(config: &'a SimulationConfig) -> Result<Self, String> {
        let seeds = SeedFactory::new(config.seed);
        let cluster = &config.cluster;
        let servers: Vec<Server> = (0..cluster.servers)
            .map(|i| {
                Server::new(
                    ServerId(i),
                    config.policy.build(),
                    cluster.workers_per_server,
                )
            })
            .collect();
        let probe = config.policy.build();
        let noise = (cluster.estimate_noise > 0.0)
            .then(|| Lognormal::with_mean(1.0, cluster.estimate_noise));
        Ok(Engine {
            queue: EventQueue::with_capacity(1024),
            coordinators: (0..cluster.coordinators)
                .map(|_| Coordinator::new(cluster.servers, cluster.base_rate_bytes_per_sec))
                .collect(),
            partitioner: cluster.partitioner.build(cluster.servers),
            net: cluster.network.build(),
            net_mean_secs: cluster.network.latency.mean_secs(),
            net_rng: seeds.stream("engine-net", 0),
            noise_rng: seeds.stream("engine-noise", 0),
            noise,
            traffic: TrafficAccounting::new(),
            op_bytes: BTreeMap::new(),
            wants_hints: probe.wants_hints(),
            wants_piggyback: probe.wants_piggyback(),
            metadata_bytes: probe.metadata_bytes(),
            oracle: config.policy.is_oracle(),
            horizon: SimTime::from_secs_f64(config.horizon_secs),
            warmup: SimTime::from_secs_f64(config.warmup_secs),
            rct: LatencySummary::new(),
            rct_batches: BatchMeans::new(),
            rct_over_time: config.rct_timeseries_bin_secs.map(TimeSeries::new),
            slowdown: SlowdownTracker::fanout_default(),
            ideal_stats: OnlineStats::new(),
            ops_per_request: OnlineStats::new(),
            completed: 0,
            measured: 0,
            events_processed: 0,
            pending_next: None,
            accepted: 0,
            fault: config.faults.is_active().then(|| FaultRuntime {
                rng: seeds.stream("engine-fault", 0),
                ops: BTreeMap::new(),
                exposed: BTreeSet::new(),
                latency: P2Quantile::new(if config.faults.hedge.enabled() {
                    config.faults.hedge.quantile
                } else {
                    0.5
                }),
                stats: RecoveryStats::new(),
                total_service_secs: 0.0,
                goodput_service_secs: 0.0,
            }),
            overload: config
                .overload
                .is_active()
                .then(|| OverloadRuntime::new(&config.overload)),
            trace: config
                .trace
                .enabled
                .then(|| TraceRecorder::new(&config.trace, config.seed)),
            servers,
            config,
        })
    }

    /// True when tracing is on *and* `request` falls in the sample.
    fn traced(&self, request: RequestId) -> bool {
        self.trace.as_ref().is_some_and(|t| t.is_sampled(request.0))
    }

    /// Records `ev` if tracing is on. Callers gate on [`Engine::traced`]
    /// first so untraced runs pay only an `Option` check and sampled-out
    /// requests don't even construct the event.
    fn trace_event(&mut self, ev: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.record(ev);
        }
    }

    /// The coordinator owning request `id`.
    fn coord(&self, id: RequestId) -> &Coordinator {
        &self.coordinators[(id.0 % self.coordinators.len() as u64) as usize]
    }

    /// Mutable access to the coordinator owning request `id`.
    fn coord_mut(&mut self, id: RequestId) -> &mut Coordinator {
        let idx = (id.0 % self.coordinators.len() as u64) as usize;
        &mut self.coordinators[idx]
    }

    /// True service time of an op of `bytes` at `server` starting at `now`.
    fn true_service(&self, server: ServerId, bytes: u64, now: SimTime) -> SimDuration {
        let c = &self.config.cluster;
        let rate = c.base_rate_bytes_per_sec * c.rate_multiplier(server.0, now.as_secs_f64());
        SimDuration::from_secs_f64(c.per_op_overhead.as_secs_f64() + bytes as f64 / rate)
    }

    /// The coordinator's service-time estimate for an op of `bytes` at
    /// `server`, using the adaptive rate estimate (or oracle truth).
    fn estimate_service(
        &mut self,
        request: RequestId,
        server: ServerId,
        bytes: u64,
        now: SimTime,
    ) -> f64 {
        let c = &self.config.cluster;
        let rate = if self.oracle {
            c.base_rate_bytes_per_sec * c.rate_multiplier(server.0, now.as_secs_f64())
        } else if self.wants_piggyback {
            self.coord(request).estimate(server).rate()
        } else {
            c.base_rate_bytes_per_sec
        };
        let mut est = c.per_op_overhead.as_secs_f64() + bytes as f64 / rate;
        if let Some(noise) = &self.noise {
            if !self.oracle {
                est *= noise.sample(&mut self.noise_rng).max(0.05);
            }
        }
        est
    }

    /// Expected queueing delay at `server` as of `now`.
    fn estimate_wait(&self, request: RequestId, server: ServerId, now: SimTime) -> f64 {
        // Outstanding-work tracking is free local knowledge available to
        // every policy (and keeps replica selection fair across
        // disciplines). The oracle additionally sees the server's exact
        // current backlog — but still needs the self-charge: without it,
        // simultaneous dispatches herd onto the momentarily least-loaded
        // replica before their load becomes visible.
        let own = self.coord(request).estimate(server).wait_secs(now);
        if self.oracle {
            own.max(self.servers[server.0 as usize].backlog_secs(now))
        } else {
            own
        }
    }

    fn run(
        mut self,
        mut requests: impl Iterator<Item = StoreRequest>,
    ) -> Result<RunResult, String> {
        // Schedule crash/recovery transitions first so a crash at an
        // arrival instant is seen before that arrival.
        if self.fault.is_some() {
            for (t_secs, server, goes_down) in self.config.faults.crashes.transitions() {
                let server = ServerId(server);
                let ev = if goes_down {
                    Event::ServerCrash { server }
                } else {
                    Event::ServerRecover { server }
                };
                self.queue.schedule(SimTime::from_secs_f64(t_secs), ev);
            }
        }
        // Prime the arrival stream.
        self.pending_next = requests.next();
        if let Some(r) = &self.pending_next {
            if r.arrival < self.horizon {
                self.queue.schedule(r.arrival, Event::NextArrival);
            }
        }
        let mut final_time = SimTime::ZERO;
        while let Some(scheduled) = self.queue.pop() {
            let now = scheduled.time;
            final_time = now;
            self.events_processed += 1;
            match scheduled.event {
                Event::NextArrival => {
                    let req = self
                        .pending_next
                        .take()
                        // das-lint: allow(unwrap-lib): NextArrival is only scheduled after pending_next is set
                        .expect("NextArrival without a pending request");
                    debug_assert_eq!(req.arrival, now);
                    self.pending_next = requests.next();
                    if let Some(next) = &self.pending_next {
                        if next.arrival < self.horizon {
                            if next.arrival < now {
                                return Err(format!(
                                    "request {} arrives before its predecessor",
                                    next.id
                                ));
                            }
                            self.queue.schedule(next.arrival, Event::NextArrival);
                        }
                    }
                    self.handle_request(req, now);
                }
                Event::OpArrival { server, op } => {
                    let op_id = op.tag.op;
                    if self
                        .overload
                        .as_ref()
                        .is_some_and(|ov| ov.is_shed(op_id.request))
                    {
                        // A sibling delivery already shed this request:
                        // the op is dropped at the door.
                        self.op_bytes.remove(&op_id);
                    } else if self.fault.is_some() && !self.servers[server.0 as usize].is_up() {
                        // Crash-stop server: the op is lost on arrival and
                        // the (ideal) failure detector tells the
                        // coordinator immediately.
                        self.fail_attempt_at(op_id, server, now);
                    } else if self.queue_full(server) {
                        // Bounded queue rejected the delivery: shed the
                        // whole request (partial answers are useless).
                        self.shed_at_queue(op_id, server, now);
                    } else {
                        self.servers[server.0 as usize].enqueue(op, now);
                        if self.traced(op_id.request) {
                            let s = &self.servers[server.0 as usize];
                            let queue_len = s.queue_len() as u32;
                            let backlog_ns =
                                SimDuration::from_secs_f64(s.backlog_secs(now)).as_nanos();
                            self.trace_event(TraceEvent::OpEnqueue {
                                t_ns: now.as_nanos(),
                                request: op_id.request.0,
                                op: op_id.index,
                                server: server.0,
                                queue_len,
                            });
                            // Piggyback a load sample on each sampled
                            // enqueue: queue depth and advertised backlog.
                            self.trace_event(TraceEvent::QueueSample {
                                t_ns: now.as_nanos(),
                                server: server.0,
                                queue_len,
                                backlog_ns,
                            });
                        }
                        self.kick(server, now);
                    }
                }
                Event::ServiceDone {
                    server,
                    op,
                    bytes,
                    service,
                    incarnation,
                } => {
                    if self.servers[server.0 as usize].incarnation() != incarnation {
                        // The server crashed after this service started;
                        // the work died with it (accounted at crash time).
                        continue;
                    }
                    // `now` is the single authoritative completion instant:
                    // the event fires exactly when service ends, so the
                    // duplicate `end` timestamp the event used to carry is
                    // gone.
                    self.servers[server.0 as usize].complete_service(now, bytes);
                    if self.traced(op.request) {
                        self.trace_event(TraceEvent::ServiceEnd {
                            t_ns: now.as_nanos(),
                            request: op.request.0,
                            op: op.index,
                            server: server.0,
                            service_ns: service.as_nanos(),
                        });
                    }
                    if let Some(fr) = &mut self.fault {
                        fr.total_service_secs += service.as_secs_f64();
                    }
                    self.kick(server, now);
                    self.send_response(server, op, bytes, service, now);
                }
                Event::ResponseArrival {
                    op,
                    server,
                    service,
                    report,
                } => {
                    if let Some(r) = &report {
                        self.coord_mut(op.request).absorb_report(r, now);
                    }
                    self.handle_op_done(op, server, service, now);
                }
                Event::Hint {
                    server,
                    request,
                    update,
                } => {
                    if self.traced(request) {
                        self.trace_event(TraceEvent::HintArrive {
                            t_ns: now.as_nanos(),
                            request: request.0,
                            server: server.0,
                            eta_ns: update.bottleneck_eta.as_nanos(),
                            remaining_ns: update.remaining_demand.as_nanos(),
                        });
                    }
                    self.servers[server.0 as usize].hint(request, update, now);
                }
                Event::ServerCrash { server } => {
                    if self.trace.is_some() {
                        self.trace_event(TraceEvent::ServerCrash {
                            t_ns: now.as_nanos(),
                            server: server.0,
                        });
                    }
                    self.handle_server_crash(server, now);
                }
                Event::ServerRecover { server } => {
                    if self.trace.is_some() {
                        self.trace_event(TraceEvent::ServerRecover {
                            t_ns: now.as_nanos(),
                            server: server.0,
                        });
                    }
                    self.servers[server.0 as usize].recover();
                }
                Event::OpTimeout { op, attempt } => {
                    self.handle_op_timeout(op, attempt, now);
                }
                Event::HedgeFire { op } => {
                    self.handle_hedge_fire(op, now);
                }
                Event::RetryDispatch { op } => {
                    self.handle_retry_dispatch(op, now);
                }
            }
        }
        let horizon_secs = self.config.horizon_secs.max(final_time.as_secs_f64());
        let utils: Vec<f64> = self
            .servers
            .iter()
            .map(|s| s.busy_time().as_secs_f64() / horizon_secs)
            .collect();
        let mean_utilization = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
        let max_utilization = utils.iter().copied().fold(0.0, f64::max);
        let per_server_utilization = utils;
        let fault_mode = self.fault.is_some();
        let overload = self.overload.take();
        let shed_queue = overload.as_ref().map_or(0, |o| o.shed_queue);
        let mut recovery = match self.fault {
            Some(fr) => {
                let mut s = fr.stats;
                s.accepted = self.accepted;
                s.completed = self.completed;
                s.goodput_service_secs = fr.goodput_service_secs;
                s.wasted_service_secs = (fr.total_service_secs - fr.goodput_service_secs).max(0.0);
                debug_assert_eq!(
                    s.accepted,
                    s.completed + s.aborted + shed_queue,
                    "every accepted request must complete, abort, or shed exactly once"
                );
                debug_assert!(fr.ops.is_empty(), "op runtimes leaked past the run");
                s
            }
            None => {
                debug_assert_eq!(
                    self.accepted,
                    self.completed + shed_queue,
                    "every accepted request must complete or shed exactly once"
                );
                RecoveryStats {
                    accepted: self.accepted,
                    completed: self.completed,
                    ..RecoveryStats::new()
                }
            }
        };
        if let Some(ov) = overload {
            recovery.shed_admission = ov.shed_admission;
            recovery.shed_queue = ov.shed_queue;
            recovery.retries_denied = ov.retries_denied;
            recovery.hedges_denied = ov.hedges_denied;
            recovery.batching = ov.batching;
            if !fault_mode {
                recovery.goodput_service_secs = ov.goodput_service_secs;
                recovery.wasted_service_secs = ov.wasted_service_secs;
            }
        }
        Ok(RunResult {
            policy: self.config.policy.name().to_string(),
            completed: self.completed,
            measured: self.measured,
            rct: self.rct,
            mean_rct_ci95: self.rct_batches.ci95_half_width(),
            rct_over_time: self.rct_over_time,
            slowdown: self.slowdown,
            traffic: self.traffic,
            mean_utilization,
            max_utilization,
            per_server_utilization,
            lower_bound_mean_rct: self.ideal_stats.mean(),
            mean_ops_per_request: self.ops_per_request.mean(),
            events_processed: self.events_processed,
            recovery,
            trace: self.trace.map(TraceRecorder::finish),
        })
    }

    /// Splits a request into per-server ops, stamps tags, and dispatches.
    fn handle_request(&mut self, req: StoreRequest, now: SimTime) {
        let c = &self.config.cluster;
        let measured = req.arrival >= self.warmup;
        // Choose a replica per key (least estimated completion), then
        // coalesce per server.
        // (server, total bytes, key count, bytes written)
        let mut per_server: Vec<(ServerId, u64, u32, u64)> = Vec::new();
        // Fault mode only: per target server, the servers that hold *every*
        // key coalesced onto it — the viable retry/hedge targets.
        let mut candidate_sets: Vec<(ServerId, Vec<ServerId>)> = Vec::new();
        let request_id = RequestId(req.id);
        for read in &req.reads {
            // Writes go to the primary (single-copy write model); reads may
            // pick any replica.
            let replicas = if read.write {
                vec![self.partitioner.primary(read.key)]
            } else {
                self.partitioner.replicas(read.key, c.replication)
            };
            // In fault mode the (ideal) failure detector lets the
            // coordinator skip servers known down; if every replica is
            // down, dispatch anyway and let retries wait out the outage.
            let mut up_pool = Vec::new();
            let pool: &[ServerId] = if self.fault.is_some() {
                up_pool.extend(
                    replicas
                        .iter()
                        .copied()
                        .filter(|s| self.servers[s.0 as usize].is_up()),
                );
                if up_pool.is_empty() {
                    &replicas
                } else {
                    &up_pool
                }
            } else {
                &replicas
            };
            let server = if pool.len() == 1 {
                pool[0]
            } else {
                let coord = self.coord(request_id);
                *pool
                    .iter()
                    .min_by(|&&a, &&b| {
                        let ea = self.estimate_wait(request_id, a, now)
                            + read.bytes as f64 / coord.estimate(a).rate();
                        let eb = self.estimate_wait(request_id, b, now)
                            + read.bytes as f64 / coord.estimate(b).rate();
                        ea.total_cmp(&eb)
                    })
                    // das-lint: allow(unwrap-lib): placement never yields an empty replica set
                    .expect("non-empty replica set")
            };
            if self.fault.is_some() {
                match candidate_sets.iter_mut().find(|(s, _)| *s == server) {
                    Some((_, set)) => set.retain(|s| replicas.contains(s)),
                    None => candidate_sets.push((server, replicas.clone())),
                }
            }
            let written = if read.write { read.bytes as u64 } else { 0 };
            match per_server.iter_mut().find(|(s, _, _, _)| *s == server) {
                Some(entry) => {
                    entry.1 += read.bytes as u64;
                    entry.2 += 1;
                    entry.3 += written;
                }
                None => per_server.push((server, read.bytes as u64, 1, written)),
            }
        }
        let fanout = per_server.len() as u32;
        self.ops_per_request.record(fanout as f64);
        if self.traced(request_id) {
            self.trace_event(TraceEvent::RequestArrive {
                t_ns: now.as_nanos(),
                request: req.id,
                keys: req.reads.len() as u32,
                fanout,
            });
        }

        // Per-op estimates.
        let mut etas = Vec::with_capacity(per_server.len());
        let mut bottleneck_demand = 0.0f64;
        let mut ideal = 0.0f64;
        for &(server, bytes, _, _) in &per_server {
            let service_est = self.estimate_service(request_id, server, bytes, now);
            let wait_est = self.estimate_wait(request_id, server, now);
            let eta = now + SimDuration::from_secs_f64(self.net_mean_secs + wait_est + service_est);
            etas.push((server, service_est, eta));
            bottleneck_demand = bottleneck_demand.max(service_est);
            // The zero-queueing ideal uses *true* service times and mean
            // network delays in both directions.
            let true_secs = self.true_service(server, bytes, now).as_secs_f64();
            ideal = ideal.max(2.0 * self.net_mean_secs + true_secs);
        }
        let bottleneck_eta = etas.iter().map(|&(_, _, eta)| eta).max().unwrap_or(now);

        // Deadline-aware admission: shed the request up front when even
        // the optimistic completion estimate cannot meet its deadline.
        // Written bytes are inflated by the configured penalty, so under
        // pressure large writes are preferentially rejected — they are
        // the cheapest requests to lose (their response is a small ack
        // and they occupy the most service time per key).
        if self.overload.is_some() && self.config.overload.admission.enabled() {
            let adm = &self.config.overload.admission;
            let written_total: u64 = per_server.iter().map(|&(_, _, _, w)| w).sum();
            let penalty_secs = (adm.write_penalty - 1.0) * written_total as f64
                / self.config.cluster.base_rate_bytes_per_sec;
            let projected = bottleneck_eta + SimDuration::from_secs_f64(penalty_secs);
            let deadline_at = now + SimDuration::from_secs_f64(adm.deadline_secs);
            if projected > deadline_at {
                let bottleneck = etas
                    .iter()
                    .max_by(|a, b| a.2.cmp(&b.2))
                    .map_or(0, |&(s, _, _)| s.0);
                if let Some(ov) = &mut self.overload {
                    ov.shed_admission += 1;
                }
                if self.traced(request_id) {
                    self.trace_event(TraceEvent::Shed {
                        t_ns: now.as_nanos(),
                        request: req.id,
                        reason: ShedReason::Admission,
                        server: bottleneck,
                    });
                }
                // Nothing was dispatched, charged, or tracked yet: the
                // reject costs the system only this estimate pass.
                return;
            }
            if self.traced(request_id) {
                self.trace_event(TraceEvent::Admitted {
                    t_ns: now.as_nanos(),
                    request: req.id,
                    slack_ns: deadline_at.saturating_since(projected).as_nanos(),
                });
            }
        }

        let mut ops = Vec::with_capacity(per_server.len());
        for (index, (&(server, bytes, keys, written), &(_, service_est, eta))) in
            per_server.iter().zip(etas.iter()).enumerate()
        {
            let op_id = OpId {
                request: request_id,
                index: index as u32,
            };
            let tag = OpTag {
                op: op_id,
                request_arrival: req.arrival,
                fanout,
                local_estimate: SimDuration::from_secs_f64(service_est),
                bottleneck_eta,
                bottleneck_demand: SimDuration::from_secs_f64(bottleneck_demand),
            };
            // Wire accounting: request frame + per-key framing + policy
            // metadata.
            let req_bytes = wire::MSG_HEADER_BYTES + 16 * keys as u64 + written;
            self.traffic.charge(TrafficClass::OpRequest, req_bytes);
            if self.metadata_bytes > 0 {
                self.traffic
                    .charge_bytes(TrafficClass::SchedulingMetadata, self.metadata_bytes);
            }
            self.coord_mut(request_id)
                .estimate_mut(server)
                .charge_dispatch(service_est);
            // The response carries only the *read* value bytes; written
            // bytes already travelled in the request.
            self.op_bytes.insert(
                op_id,
                OpBytes {
                    service: bytes,
                    response: bytes - written,
                },
            );
            if self.traced(request_id) {
                self.trace_event(TraceEvent::OpDispatch {
                    t_ns: now.as_nanos(),
                    request: req.id,
                    op: index as u32,
                    server: server.0,
                    attempt: 0,
                    kind: DispatchKind::First,
                    est_ns: SimDuration::from_secs_f64(service_est).as_nanos(),
                    bytes: req_bytes,
                });
            }
            if self.fault.is_some() {
                let candidates = candidate_sets
                    .iter()
                    .find(|(s, _)| *s == server)
                    .map(|(_, set)| set.clone())
                    .filter(|set| !set.is_empty())
                    .unwrap_or_else(|| vec![server]);
                self.dispatch_first_attempt(
                    tag,
                    server,
                    candidates,
                    keys,
                    written,
                    service_est,
                    req_bytes,
                    now,
                );
            } else {
                let delay = self.net.delay(req_bytes, &mut self.net_rng);
                let op = QueuedOp {
                    tag,
                    local_estimate: tag.local_estimate,
                    // Stamped on arrival at the server (see OpArrival).
                    enqueued_at: now + delay,
                };
                self.queue
                    .schedule(now + delay, Event::OpArrival { server, op });
            }
            ops.push(PendingOp {
                server,
                eta,
                demand_est: SimDuration::from_secs_f64(service_est),
                done: false,
            });
        }
        if measured {
            self.ideal_stats.record(ideal);
        }
        self.coord_mut(request_id).track(
            request_id,
            RequestState {
                arrival: req.arrival,
                key_count: req.reads.len() as u32,
                ops,
                bottleneck_eta,
                bottleneck_demand: SimDuration::from_secs_f64(bottleneck_demand),
                ideal: SimDuration::from_secs_f64(ideal),
                measured,
            },
        );
        self.accepted += 1;
    }

    /// Fault-mode initial dispatch of one op: delivery by link fate,
    /// attempt tracking, deadline, and (for hedgeable reads) the hedge
    /// timer. The wire/coordinator charges were already applied by
    /// `handle_request`.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_first_attempt(
        &mut self,
        tag: OpTag,
        server: ServerId,
        candidates: Vec<ServerId>,
        keys: u32,
        written: u64,
        service_est: f64,
        req_bytes: u64,
        now: SimTime,
    ) {
        // das-lint: allow(unwrap-lib): fault state is only taken within one handler at a time
        let mut fr = self.fault.take().expect("fault mode");
        let op_id = tag.op;
        let fate = self.config.faults.request_faults.decide(&mut fr.rng);
        for _ in 0..fate.copies {
            let delay = self.net.delay(req_bytes, &mut self.net_rng) + fate.extra_delay;
            let op = QueuedOp {
                tag,
                local_estimate: tag.local_estimate,
                enqueued_at: now + delay,
            };
            self.queue
                .schedule(now + delay, Event::OpArrival { server, op });
        }
        let mut rt = OpRuntime {
            candidates,
            keys,
            written,
            attempts: vec![Attempt {
                server,
                estimate: service_est,
                dispatched: now,
                open: true,
            }],
            seq_attempts: 1,
            hedged: false,
            retry_pending: false,
        };
        let retry = &self.config.faults.retry;
        if retry.enabled() {
            self.queue.schedule(
                now + SimDuration::from_secs_f64(retry.deadline_secs),
                Event::OpTimeout {
                    op: op_id,
                    attempt: 0,
                },
            );
        }
        let hedge = &self.config.faults.hedge;
        if hedge.enabled()
            && written == 0
            && rt.candidates.len() >= 2
            && fr.latency.count() as u64 >= hedge.min_samples
        {
            if let Some(q) = fr.latency.estimate() {
                let delay = q.max(hedge.min_delay_secs);
                self.queue.schedule(
                    now + SimDuration::from_secs_f64(delay),
                    Event::HedgeFire { op: op_id },
                );
                rt.hedged = true;
            }
        }
        fr.ops.insert(op_id, rt);
        self.fault = Some(fr);
    }

    /// Re-dispatch (retry) or speculative duplicate (hedge) of one op to
    /// `server`: recomputes estimates, applies the wire and outstanding
    /// charges, refreshes the coordinator's per-op view, and delivers by
    /// link fate.
    fn dispatch_attempt(
        &mut self,
        fr: &mut FaultRuntime,
        op_id: OpId,
        server: ServerId,
        is_hedge: bool,
        now: SimTime,
    ) {
        let request = op_id.request;
        let bytes = self.op_bytes.get(&op_id).map_or(0, |b| b.service);
        let (keys, written) = {
            // das-lint: allow(unwrap-lib): op runtime is created at dispatch and outlives the attempt
            let rt = fr.ops.get(&op_id).expect("dispatch for live op");
            (rt.keys, rt.written)
        };
        let service_est = self.estimate_service(request, server, bytes, now);
        let wait_est = self.estimate_wait(request, server, now);
        let eta = now + SimDuration::from_secs_f64(self.net_mean_secs + wait_est + service_est);
        let req_bytes = wire::MSG_HEADER_BYTES + 16 * keys as u64 + written;
        self.traffic.charge(TrafficClass::OpRequest, req_bytes);
        if self.metadata_bytes > 0 {
            self.traffic
                .charge_bytes(TrafficClass::SchedulingMetadata, self.metadata_bytes);
        }
        self.coord_mut(request)
            .estimate_mut(server)
            .charge_dispatch(service_est);
        // Refresh the coordinator's per-op record so later hints reflect
        // the new placement and estimate.
        let (arrival, fanout, bneck_eta, bneck_demand) = {
            let state = self
                .coord_mut(request)
                .request_mut(request)
                // das-lint: allow(unwrap-lib): request state lives until its last op completes
                .expect("attempt dispatched for a live request");
            let p = &mut state.ops[op_id.index as usize];
            p.server = server;
            p.eta = eta;
            p.demand_est = SimDuration::from_secs_f64(service_est);
            (
                state.arrival,
                state.ops.len() as u32,
                state.bottleneck_eta,
                state.bottleneck_demand,
            )
        };
        let tag = OpTag {
            op: op_id,
            request_arrival: arrival,
            fanout,
            local_estimate: SimDuration::from_secs_f64(service_est),
            bottleneck_eta: bneck_eta,
            bottleneck_demand: bneck_demand,
        };
        let attempt_index = {
            // das-lint: allow(unwrap-lib): op runtime is created at dispatch and outlives the attempt
            let rt = fr.ops.get_mut(&op_id).expect("dispatch for live op");
            rt.attempts.push(Attempt {
                server,
                estimate: service_est,
                dispatched: now,
                open: true,
            });
            if !is_hedge {
                rt.seq_attempts += 1;
            }
            (rt.attempts.len() - 1) as u32
        };
        if self.traced(request) {
            self.trace_event(TraceEvent::OpDispatch {
                t_ns: now.as_nanos(),
                request: request.0,
                op: op_id.index,
                server: server.0,
                attempt: attempt_index,
                kind: if is_hedge {
                    DispatchKind::Hedge
                } else {
                    DispatchKind::Retry
                },
                est_ns: SimDuration::from_secs_f64(service_est).as_nanos(),
                bytes: req_bytes,
            });
        }
        let fate = self.config.faults.request_faults.decide(&mut fr.rng);
        for _ in 0..fate.copies {
            let delay = self.net.delay(req_bytes, &mut self.net_rng) + fate.extra_delay;
            let op = QueuedOp {
                tag,
                local_estimate: tag.local_estimate,
                enqueued_at: now + delay,
            };
            self.queue
                .schedule(now + delay, Event::OpArrival { server, op });
        }
        let retry = &self.config.faults.retry;
        if retry.enabled() {
            self.queue.schedule(
                now + SimDuration::from_secs_f64(retry.deadline_secs),
                Event::OpTimeout {
                    op: op_id,
                    attempt: attempt_index,
                },
            );
        }
    }

    /// Starts service on `server` while it has idle workers and queued ops.
    fn kick(&mut self, server: ServerId, now: SimTime) {
        loop {
            let s = &mut self.servers[server.0 as usize];
            if !s.has_idle_worker() || s.queue_len() == 0 {
                return;
            }
            // Peek the op the scheduler picks, then compute its true
            // service time from the side table.
            let op_bytes = &self.op_bytes;
            let cluster = &self.config.cluster;
            let mut served = OpBytes {
                service: 0,
                response: 0,
            };
            let service_of = |op: &QueuedOp| {
                let bytes = op_bytes.get(&op.tag.op).copied().unwrap_or(OpBytes {
                    service: 0,
                    response: 0,
                });
                served = bytes;
                let bytes = bytes.service;
                let rate = cluster.base_rate_bytes_per_sec
                    * cluster.rate_multiplier(server.0, now.as_secs_f64());
                SimDuration::from_secs_f64(
                    cluster.per_op_overhead.as_secs_f64() + bytes as f64 / rate,
                )
            };
            // The explained variant picks the exact same op; the decision
            // record exists only when tracing wants it.
            let started: Option<(QueuedOp, SimTime, Option<DequeueDecision>)> =
                if self.trace.is_some() {
                    s.try_start_service_explained(now, service_of)
                        .map(|(op, end, d)| (op, end, Some(d)))
                } else {
                    s.try_start_service(now, service_of).map(|(op, end)| (op, end, None))
                };
            match started {
                Some((op, end, decision)) => {
                    let incarnation = self.servers[server.0 as usize].incarnation();
                    self.queue.schedule(
                        end,
                        Event::ServiceDone {
                            server,
                            op: op.tag.op,
                            bytes: served.response,
                            service: end.saturating_since(now),
                            incarnation,
                        },
                    );
                    if let Some(d) = decision {
                        if self.traced(op.tag.op.request) {
                            self.trace_event(TraceEvent::SchedDecision {
                                t_ns: now.as_nanos(),
                                request: op.tag.op.request.0,
                                op: op.tag.op.index,
                                server: server.0,
                                rule: d.rule.as_str().to_string(),
                                position: d.position,
                                queue_len: d.queue_len,
                            });
                        }
                    }
                    if self.overload.is_some() {
                        self.maybe_batch(server, op.tag.op, served.service, end, incarnation, now);
                    }
                }
                None => return,
            }
        }
    }

    /// Value-size-aware coalescing: when the op that just started service
    /// is tiny, drain up to `max_ops - 1` further queued ops into the
    /// same worker visit, in scheduler order. Tiny followers pay only a
    /// fraction of the per-op overhead (the visit's setup cost is
    /// amortized); the first non-tiny follower still joins the visit at
    /// full cost but terminates the pull. Follower service slices are
    /// strictly increasing, so completion events stay totally ordered
    /// and the run deterministic.
    fn maybe_batch(
        &mut self,
        server: ServerId,
        leader: OpId,
        leader_bytes: u64,
        leader_end: SimTime,
        incarnation: u64,
        now: SimTime,
    ) {
        let cfg = self.config;
        let batch = &cfg.overload.batch;
        if !batch.enabled() || leader_bytes > batch.tiny_op_bytes {
            return;
        }
        let rate = cfg.cluster.base_rate_bytes_per_sec
            * cfg.cluster.rate_multiplier(server.0, now.as_secs_f64());
        let full_overhead = cfg.cluster.per_op_overhead.as_secs_f64();
        let mut prev_end = leader_end;
        let mut overhead_saved = 0.0f64;
        let mut members: Vec<OpId> = vec![leader];
        while (members.len() as u32) < batch.max_ops {
            let Some(fop) = self.servers[server.0 as usize].dequeue_batch_follower(now) else {
                break;
            };
            let fid = fop.tag.op;
            let fbytes = self.op_bytes.get(&fid).copied().unwrap_or(OpBytes {
                service: 0,
                response: 0,
            });
            let tiny = fbytes.service <= batch.tiny_op_bytes;
            let overhead = if tiny {
                batch.overhead_fraction * full_overhead
            } else {
                full_overhead
            };
            let mut slice =
                SimDuration::from_secs_f64(overhead + fbytes.service as f64 / rate);
            if prev_end + slice <= prev_end {
                // Degenerate zero-length slice (zero overhead and zero
                // bytes): keep completion order strict anyway.
                slice = SimDuration::from_secs_f64(1e-9);
            }
            let fend = prev_end + slice;
            self.servers[server.0 as usize].attach_batch_follower(fid, prev_end, fend);
            self.queue.schedule(
                fend,
                Event::ServiceDone {
                    server,
                    op: fid,
                    bytes: fbytes.response,
                    service: slice,
                    incarnation,
                },
            );
            if tiny {
                overhead_saved += (1.0 - batch.overhead_fraction) * full_overhead;
            }
            members.push(fid);
            prev_end = fend;
            if !tiny {
                break;
            }
        }
        if members.len() > 1 {
            let size = members.len() as u32;
            if let Some(ov) = &mut self.overload {
                ov.batching.record(size, overhead_saved);
            }
            if self.trace.is_some() {
                for id in members {
                    if self.traced(id.request) {
                        self.trace_event(TraceEvent::Batched {
                            t_ns: now.as_nanos(),
                            request: id.request.0,
                            op: id.index,
                            server: server.0,
                            size,
                        });
                    }
                }
            }
        }
    }

    /// True when the bounded-queue knob is armed and `server`'s queue is
    /// at capacity.
    fn queue_full(&self, server: ServerId) -> bool {
        self.overload.is_some()
            && self.config.overload.admission.enabled()
            && self.servers[server.0 as usize].queue_len() as u32
                >= self.config.overload.admission.queue_capacity
    }

    /// A full queue rejected one delivery of `op`: the whole request is
    /// shed (a partially answered multi-get is useless). Mirrors the
    /// `abort_request` teardown — the coordinator state leaves the table,
    /// open attempt charges are released — but the loss is accounted as
    /// `shed_queue`, and the request id is remembered so late sibling
    /// deliveries and responses are dropped quietly.
    fn shed_at_queue(&mut self, op: OpId, server: ServerId, now: SimTime) {
        let request = op.request;
        let Some(state) = self.coord_mut(request).finish(request) else {
            // The request already completed or aborted (e.g. a duplicated
            // late delivery hit the full queue): nothing left to shed.
            self.op_bytes.remove(&op);
            return;
        };
        if let Some(ov) = &mut self.overload {
            ov.shed_queue += 1;
            ov.shed_requests.insert(request);
        }
        if self.traced(request) {
            self.trace_event(TraceEvent::Shed {
                t_ns: now.as_nanos(),
                request: request.0,
                reason: ShedReason::QueueFull,
                server: server.0,
            });
        }
        if let Some(mut fr) = self.fault.take() {
            fr.exposed.remove(&request);
            for index in 0..state.ops.len() {
                let op_id = OpId {
                    request,
                    index: index as u32,
                };
                if let Some(rt) = fr.ops.remove(&op_id) {
                    for a in rt.attempts.iter().filter(|a| a.open) {
                        self.coord_mut(request)
                            .estimate_mut(a.server)
                            .complete_dispatch(a.estimate);
                    }
                }
            }
            self.fault = Some(fr);
        } else {
            for p in state.ops.iter().filter(|p| !p.done) {
                self.coord_mut(request)
                    .estimate_mut(p.server)
                    .complete_dispatch(p.demand_est.as_secs_f64());
            }
        }
        self.op_bytes.remove(&op);
    }

    /// True when the backpressure budget (if armed) grants one token for
    /// a retry or hedge dispatch at `now`.
    fn take_retry_token(&mut self, now: SimTime) -> bool {
        let cfg = self.config;
        if !cfg.overload.backpressure.enabled() {
            return true;
        }
        match &mut self.overload {
            Some(ov) => ov.try_take_token(&cfg.overload.backpressure, now),
            None => true,
        }
    }

    /// Ships the value (and a piggybacked report) back to the coordinator.
    fn send_response(
        &mut self,
        server: ServerId,
        op: OpId,
        bytes: u64,
        service: SimDuration,
        now: SimTime,
    ) {
        let resp_bytes = wire::MSG_HEADER_BYTES + bytes;
        self.traffic.charge(TrafficClass::OpResponse, resp_bytes);
        let report = if self.wants_piggyback {
            if !self.oracle {
                self.traffic
                    .charge_bytes(TrafficClass::PiggybackReport, wire::PIGGYBACK_BYTES);
            }
            let s = &self.servers[server.0 as usize];
            let c = &self.config.cluster;
            Some(ServerReport {
                server,
                backlog_secs: s.backlog_secs(now),
                service_rate: c.base_rate_bytes_per_sec
                    * c.rate_multiplier(server.0, now.as_secs_f64()),
                queue_len: s.queue_len() as u32,
            })
        } else {
            None
        };
        if let Some(mut fr) = self.fault.take() {
            let fate = self.config.faults.response_faults.decide(&mut fr.rng);
            for _ in 0..fate.copies {
                let delay = self.net.delay(resp_bytes, &mut self.net_rng) + fate.extra_delay;
                self.queue.schedule(
                    now + delay,
                    Event::ResponseArrival {
                        op,
                        server,
                        service,
                        report,
                    },
                );
            }
            self.fault = Some(fr);
        } else {
            let delay = self.net.delay(resp_bytes, &mut self.net_rng);
            self.queue.schedule(
                now + delay,
                Event::ResponseArrival {
                    op,
                    server,
                    service,
                    report,
                },
            );
        }
    }

    /// Processes an op response at the coordinator: progress tracking,
    /// hints, and (possibly) request completion.
    fn handle_op_done(&mut self, op: OpId, server: ServerId, service: SimDuration, now: SimTime) {
        if self
            .overload
            .as_ref()
            .is_some_and(|ov| ov.is_shed(op.request))
        {
            // Response for a shed request: real service, discarded. In
            // fault mode the waste is already implied by goodput never
            // crediting this response; fault-free mode counts it here.
            self.op_bytes.remove(&op);
            if self.fault.is_none() {
                if let Some(ov) = &mut self.overload {
                    ov.wasted_service_secs += service.as_secs_f64();
                }
            }
            return;
        }
        if let Some(mut fr) = self.fault.take() {
            let accepted = self.accept_response(&mut fr, op, server, service, now);
            self.fault = Some(fr);
            if self.traced(op.request) {
                self.trace_event(TraceEvent::OpResponse {
                    t_ns: now.as_nanos(),
                    request: op.request.0,
                    op: op.index,
                    server: server.0,
                    accepted,
                });
            }
            if !accepted {
                return;
            }
        } else {
            self.op_bytes.remove(&op);
            if let Some(ov) = &mut self.overload {
                ov.goodput_service_secs += service.as_secs_f64();
            }
            if self.traced(op.request) {
                self.trace_event(TraceEvent::OpResponse {
                    t_ns: now.as_nanos(),
                    request: op.request.0,
                    op: op.index,
                    server: server.0,
                    accepted: true,
                });
            }
        }
        let wants_hints = self.wants_hints;
        // Phase 1: update the owning coordinator's request state and
        // extract everything the later phases need, so the coordinator
        // borrow ends before other parts of `self` are touched.
        enum Outcome {
            Hint(HintUpdate, Vec<ServerId>),
            NoHint,
            Complete,
        }
        let (op_server, op_demand_est, outcome) = {
            let Some(state) = self.coord_mut(op.request).request_mut(op.request) else {
                debug_assert!(false, "response for untracked request");
                return;
            };
            let pending_op = state.ops[op.index as usize];
            let remaining = state.complete_op(op.index as usize);
            let outcome = match remaining {
                Some((new_eta, new_demand)) => {
                    // Only hint when the request's remaining-bottleneck
                    // view actually changed (i.e. the completed op was the
                    // current bottleneck by demand or by eta).
                    let changed =
                        new_eta != state.bottleneck_eta || new_demand != state.bottleneck_demand;
                    if wants_hints && changed {
                        state.bottleneck_eta = new_eta;
                        state.bottleneck_demand = new_demand;
                        Outcome::Hint(
                            HintUpdate {
                                bottleneck_eta: new_eta,
                                remaining_demand: new_demand,
                            },
                            state.pending_servers().collect(),
                        )
                    } else {
                        Outcome::NoHint
                    }
                }
                None => Outcome::Complete,
            };
            (
                pending_op.server,
                pending_op.demand_est.as_secs_f64(),
                outcome,
            )
        };
        if self.fault.is_none() {
            // In fault mode the outstanding charge was already released
            // per attempt by `accept_response`.
            self.coord_mut(op.request)
                .estimate_mut(op_server)
                .complete_dispatch(op_demand_est);
        }
        match outcome {
            Outcome::NoHint => {}
            Outcome::Hint(update, targets) => {
                for server in targets {
                    if self.oracle {
                        // Centralized reference: instant, free updates.
                        self.servers[server.0 as usize].hint(op.request, update, now);
                    } else {
                        let hint_bytes = wire::MSG_HEADER_BYTES + wire::HINT_BYTES;
                        self.traffic.charge(TrafficClass::ProgressHint, hint_bytes);
                        // Hints are fire-and-forget; they may be lost.
                        if self.config.cluster.hint_loss > 0.0
                            && das_sim::rng::open_unit(&mut self.net_rng)
                                <= self.config.cluster.hint_loss
                        {
                            continue;
                        }
                        let delay = self.net.delay(hint_bytes, &mut self.net_rng);
                        self.queue.schedule(
                            now + delay,
                            Event::Hint {
                                server,
                                request: op.request,
                                update,
                            },
                        );
                    }
                }
            }
            Outcome::Complete => {
                let state = self
                    .coord_mut(op.request)
                    .finish(op.request)
                    // das-lint: allow(unwrap-lib): finish() follows a successful request_mut on the same id
                    .expect("state present: we just touched it");
                let rct = now.saturating_since(state.arrival).as_secs_f64();
                if self.traced(op.request) {
                    self.trace_event(TraceEvent::RequestComplete {
                        t_ns: now.as_nanos(),
                        request: op.request.0,
                        rct_ns: now.saturating_since(state.arrival).as_nanos(),
                    });
                }
                self.completed += 1;
                if let Some(ts) = &mut self.rct_over_time {
                    ts.record(state.arrival.as_secs_f64(), rct);
                }
                if state.measured {
                    self.measured += 1;
                    self.rct.record(rct);
                    self.rct_batches.record(rct);
                    self.slowdown
                        .record(state.ops.len(), rct, state.ideal.as_secs_f64());
                }
                if let Some(fr) = &mut self.fault {
                    let exposed = fr.exposed.remove(&op.request);
                    if state.measured {
                        if exposed {
                            fr.stats.rct_fault_exposed.record(rct);
                        } else {
                            fr.stats.rct_clean.record(rct);
                        }
                    }
                }
            }
        }
    }

    /// Fault-mode response filter: accepts the response iff its op is
    /// still live and it answers an open attempt at `server`. Closes the
    /// winning attempt (plus any losing hedge attempts), releases the
    /// outstanding charges, and feeds the hedge latency estimator.
    fn accept_response(
        &mut self,
        fr: &mut FaultRuntime,
        op: OpId,
        server: ServerId,
        service: SimDuration,
        now: SimTime,
    ) -> bool {
        let Some(rt) = fr.ops.get_mut(&op) else {
            // The op already completed or its request aborted: a duplicate
            // delivery or a straggler past its closure. Real service,
            // wasted.
            fr.stats.duplicate_responses += 1;
            return false;
        };
        let Some(a) = rt
            .attempts
            .iter_mut()
            .find(|a| a.open && a.server == server)
        else {
            // The attempt was closed (timeout or crash) before this
            // response arrived, or a duplicated message answered twice.
            fr.stats.duplicate_responses += 1;
            fr.exposed.insert(op.request);
            return false;
        };
        a.open = false;
        let est = a.estimate;
        let latency = now.saturating_since(a.dispatched).as_secs_f64();
        // Close the losing attempts (hedges, straggling retries): any
        // response they still produce is discarded above.
        let losers: Vec<(ServerId, f64)> = rt
            .attempts
            .iter_mut()
            .filter(|a| a.open)
            .map(|a| {
                a.open = false;
                (a.server, a.estimate)
            })
            .collect();
        fr.ops.remove(&op);
        fr.latency.record(latency);
        fr.goodput_service_secs += service.as_secs_f64();
        self.coord_mut(op.request)
            .estimate_mut(server)
            .complete_dispatch(est);
        for (s, e) in losers {
            self.coord_mut(op.request)
                .estimate_mut(s)
                .complete_dispatch(e);
        }
        true
    }

    /// An op arrived at a crash-stopped server: the (ideal) failure
    /// detector closes the attempt immediately and the retry machinery
    /// takes over.
    fn fail_attempt_at(&mut self, op: OpId, server: ServerId, now: SimTime) {
        // das-lint: allow(unwrap-lib): fault state is only taken within one handler at a time
        let mut fr = self.fault.take().expect("fault mode");
        if let Some(rt) = fr.ops.get_mut(&op) {
            if let Some(a) = rt
                .attempts
                .iter_mut()
                .find(|a| a.open && a.server == server)
            {
                a.open = false;
                let est = a.estimate;
                fr.stats.crash_drops += 1;
                fr.exposed.insert(op.request);
                if self.traced(op.request) {
                    self.trace_event(TraceEvent::CrashDrop {
                        t_ns: now.as_nanos(),
                        request: op.request.0,
                        op: op.index,
                        server: server.0,
                    });
                }
                self.coord_mut(op.request)
                    .estimate_mut(server)
                    .complete_dispatch(est);
                self.resolve_op_failure(&mut fr, op, now);
            }
        }
        self.fault = Some(fr);
    }

    /// Crash-stops `server`: drained and cut-short ops are handed back to
    /// the coordinator, which instantly closes the affected attempts
    /// (ideal failure detection) and retries or aborts.
    fn handle_server_crash(&mut self, server: ServerId, now: SimTime) {
        let (queued, in_service) = self.servers[server.0 as usize].crash(now);
        // das-lint: allow(unwrap-lib): fault state is only taken within one handler at a time
        let mut fr = self.fault.take().expect("fault mode");
        for e in &in_service {
            // Partial service performed before the crash was spent for
            // nothing.
            fr.total_service_secs += now.saturating_since(e.started).as_secs_f64();
        }
        let mut affected: Vec<OpId> = Vec::new();
        let dropped = queued
            .iter()
            .map(|q| q.tag.op)
            .chain(in_service.iter().map(|e: &InServiceOp| e.op));
        for op in dropped {
            let Some(rt) = fr.ops.get_mut(&op) else {
                continue;
            };
            // Duplicated deliveries can drop two copies of one attempt;
            // only the first closure counts.
            if let Some(a) = rt
                .attempts
                .iter_mut()
                .find(|a| a.open && a.server == server)
            {
                a.open = false;
                let est = a.estimate;
                fr.stats.crash_drops += 1;
                fr.exposed.insert(op.request);
                if self.traced(op.request) {
                    self.trace_event(TraceEvent::CrashDrop {
                        t_ns: now.as_nanos(),
                        request: op.request.0,
                        op: op.index,
                        server: server.0,
                    });
                }
                self.coord_mut(op.request)
                    .estimate_mut(server)
                    .complete_dispatch(est);
                affected.push(op);
            }
        }
        for op in affected {
            self.resolve_op_failure(&mut fr, op, now);
        }
        self.fault = Some(fr);
    }

    /// Per-attempt deadline expired: close the attempt if still open and
    /// retry or abort.
    fn handle_op_timeout(&mut self, op: OpId, attempt: u32, now: SimTime) {
        // das-lint: allow(unwrap-lib): fault state is only taken within one handler at a time
        let mut fr = self.fault.take().expect("fault mode");
        if let Some(rt) = fr.ops.get_mut(&op) {
            let a = &mut rt.attempts[attempt as usize];
            if a.open {
                a.open = false;
                let (server, est) = (a.server, a.estimate);
                fr.stats.timeouts += 1;
                fr.exposed.insert(op.request);
                if self.traced(op.request) {
                    self.trace_event(TraceEvent::OpTimeout {
                        t_ns: now.as_nanos(),
                        request: op.request.0,
                        op: op.index,
                        attempt,
                    });
                }
                self.coord_mut(op.request)
                    .estimate_mut(server)
                    .complete_dispatch(est);
                self.resolve_op_failure(&mut fr, op, now);
            }
        }
        self.fault = Some(fr);
    }

    /// Called when an attempt just closed unsuccessfully: schedules a
    /// backed-off retry if budget remains, else aborts the whole request.
    fn resolve_op_failure(&mut self, fr: &mut FaultRuntime, op: OpId, now: SimTime) {
        let retry = &self.config.faults.retry;
        let Some(rt) = fr.ops.get_mut(&op) else {
            return;
        };
        if rt.open_attempts() > 0 || rt.retry_pending {
            return;
        }
        if retry.enabled() && rt.seq_attempts < retry.max_attempts {
            if !self.take_retry_token(now) {
                // The backpressure budget is dry: retrying now would feed
                // the overload that caused the failure. Fail fast instead
                // of retry-storming past saturation.
                if let Some(ov) = &mut self.overload {
                    ov.retries_denied += 1;
                }
                self.abort_request(fr, op.request, now);
                return;
            }
            let mut backoff = retry.backoff_secs(rt.seq_attempts + 1);
            if retry.jitter > 0.0 {
                backoff *= 1.0 + retry.jitter * das_sim::rng::open_unit(&mut fr.rng);
            }
            rt.retry_pending = true;
            self.queue.schedule(
                now + SimDuration::from_secs_f64(backoff),
                Event::RetryDispatch { op },
            );
        } else {
            self.abort_request(fr, op.request, now);
        }
    }

    /// Abandons a request after an op exhausted its attempts: the request
    /// leaves the coordinator's table, every sibling op's open attempts
    /// are closed (their charges released), and their runtimes removed so
    /// late responses and pending timers become no-ops.
    fn abort_request(&mut self, fr: &mut FaultRuntime, request: RequestId, now: SimTime) {
        let Some(state) = self.coord_mut(request).finish(request) else {
            return;
        };
        fr.stats.aborted += 1;
        fr.exposed.remove(&request);
        if self.traced(request) {
            self.trace_event(TraceEvent::RequestAbort {
                t_ns: now.as_nanos(),
                request: request.0,
            });
        }
        for index in 0..state.ops.len() {
            let op_id = OpId {
                request,
                index: index as u32,
            };
            if let Some(rt) = fr.ops.remove(&op_id) {
                for a in rt.attempts.iter().filter(|a| a.open) {
                    self.coord_mut(request)
                        .estimate_mut(a.server)
                        .complete_dispatch(a.estimate);
                }
            }
        }
    }

    /// Backoff expired: re-dispatch the op to the best live candidate.
    fn handle_retry_dispatch(&mut self, op: OpId, now: SimTime) {
        // das-lint: allow(unwrap-lib): fault state is only taken within one handler at a time
        let mut fr = self.fault.take().expect("fault mode");
        let target = match fr.ops.get_mut(&op) {
            Some(rt) => {
                rt.retry_pending = false;
                debug_assert_eq!(rt.open_attempts(), 0);
                let bytes = self.op_bytes.get(&op).map_or(0, |b| b.service);
                self.pick_target(&rt.candidates, &[], op.request, bytes, now)
            }
            // The request completed or aborted while the backoff ran.
            None => None,
        };
        if let Some(server) = target {
            fr.stats.retries += 1;
            fr.exposed.insert(op.request);
            self.dispatch_attempt(&mut fr, op, server, false, now);
        }
        self.fault = Some(fr);
    }

    /// Hedge timer fired: if the op is still waiting on an open attempt,
    /// speculatively duplicate it to its best other replica.
    fn handle_hedge_fire(&mut self, op: OpId, now: SimTime) {
        // das-lint: allow(unwrap-lib): fault state is only taken within one handler at a time
        let mut fr = self.fault.take().expect("fault mode");
        let target = match fr.ops.get(&op) {
            Some(rt) if rt.open_attempts() > 0 => {
                let exclude: Vec<ServerId> = rt
                    .attempts
                    .iter()
                    .filter(|a| a.open)
                    .map(|a| a.server)
                    .collect();
                let bytes = self.op_bytes.get(&op).map_or(0, |b| b.service);
                self.pick_target(&rt.candidates, &exclude, op.request, bytes, now)
            }
            // Already answered, or mid-retry (no open attempt to hedge).
            _ => None,
        };
        if let Some(server) = target {
            if self.take_retry_token(now) {
                fr.stats.hedges += 1;
                fr.exposed.insert(op.request);
                self.dispatch_attempt(&mut fr, op, server, true, now);
            } else {
                // Budget dry: suppress the speculation quietly — the
                // primary attempt keeps running and can still win.
                if let Some(ov) = &mut self.overload {
                    ov.hedges_denied += 1;
                }
            }
        }
        self.fault = Some(fr);
    }

    /// Least-estimated-completion candidate that is up and not excluded;
    /// falls back to down-but-not-excluded servers when everything viable
    /// is down (the retry will wait out the outage), and `None` when the
    /// exclusions leave nothing.
    fn pick_target(
        &self,
        candidates: &[ServerId],
        exclude: &[ServerId],
        request: RequestId,
        bytes: u64,
        now: SimTime,
    ) -> Option<ServerId> {
        let viable = |s: &ServerId| !exclude.contains(s);
        let up: Vec<ServerId> = candidates
            .iter()
            .copied()
            .filter(viable)
            .filter(|s| self.servers[s.0 as usize].is_up())
            .collect();
        let pool = if up.is_empty() {
            candidates.iter().copied().filter(viable).collect()
        } else {
            up
        };
        pool.into_iter().min_by(|&a, &b| {
            let coord = self.coord(request);
            let ea = self.estimate_wait(request, a, now) + bytes as f64 / coord.estimate(a).rate();
            let eb = self.estimate_wait(request, b, now) + bytes as f64 / coord.estimate(b).rate();
            ea.total_cmp(&eb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sched::policy::PolicyKind;

    fn requests(n: u64, gap_us: u64, keys_per_req: usize) -> Vec<StoreRequest> {
        (0..n)
            .map(|i| StoreRequest {
                id: i,
                arrival: SimTime::from_micros(i * gap_us),
                reads: (0..keys_per_req)
                    .map(|k| KeyRead::read(i * 37 + k as u64 * 101, 4096))
                    .collect(),
            })
            .collect()
    }

    fn quick_config(policy: PolicyKind) -> SimulationConfig {
        let mut cfg = SimulationConfig::new(policy, 1.0);
        cfg.cluster.servers = 8;
        cfg.warmup_secs = 0.0;
        cfg
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        // The whole point of the trace layer: enabling it must leave every
        // simulation result bit-identical, for every policy.
        for policy in PolicyKind::standard_set() {
            let plain = quick_config(policy);
            let mut traced = plain.clone();
            traced.trace = das_trace::TraceConfig::enabled();
            let a = run_simulation(&plain, requests(300, 80, 4)).unwrap();
            let b = run_simulation(&traced, requests(300, 80, 4)).unwrap();
            assert!(a.trace.is_none());
            assert!(b.trace.is_some(), "{}", b.policy);
            assert_eq!(
                a.mean_rct().to_bits(),
                b.mean_rct().to_bits(),
                "{}",
                b.policy
            );
            assert_eq!(a.p99_rct().to_bits(), b.p99_rct().to_bits(), "{}", b.policy);
            assert_eq!(a.events_processed, b.events_processed, "{}", b.policy);
            assert_eq!(a.traffic, b.traffic, "{}", b.policy);
        }
    }

    #[test]
    fn trace_covers_every_request_at_full_sampling() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.trace = das_trace::TraceConfig::enabled();
        let n = 200;
        let result = run_simulation(&cfg, requests(n, 80, 4)).unwrap();
        let log = result.trace.unwrap();
        assert_eq!(log.dropped, 0);
        let arrivals = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RequestArrive { .. }))
            .count() as u64;
        let completes = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RequestComplete { .. }))
            .count() as u64;
        assert_eq!(arrivals, n);
        assert_eq!(completes, result.completed);
        // Every completed request reconstructs a full critical path whose
        // segments telescope exactly to its RCT.
        let paths = das_trace::critical_paths(&log);
        assert_eq!(paths.len() as u64, result.completed);
        for p in &paths {
            assert_eq!(p.sum_ns(), p.rct_ns, "request {}", p.request);
        }
    }

    #[test]
    fn trace_sampling_subsets_the_request_space() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.trace = das_trace::TraceConfig::enabled();
        cfg.trace.sample = 0.25;
        let result = run_simulation(&cfg, requests(400, 80, 2)).unwrap();
        let log = result.trace.unwrap();
        let arrivals = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RequestArrive { .. }))
            .count();
        assert!(arrivals > 0 && arrivals < 400, "arrivals = {arrivals}");
        // Sampling is per request: each traced request still has a full
        // event chain.
        for p in das_trace::critical_paths(&log) {
            assert_eq!(p.sum_ns(), p.rct_ns);
        }
    }

    #[test]
    fn all_requests_complete() {
        let cfg = quick_config(PolicyKind::Fcfs);
        let result = run_simulation(&cfg, requests(500, 100, 4)).unwrap();
        assert_eq!(result.completed, 500);
        assert_eq!(result.measured, 500);
        assert_eq!(result.rct.count(), 500);
        assert!(result.mean_rct() > 0.0);
        assert!(result.events_processed > 500);
    }

    #[test]
    fn rct_at_least_lower_bound() {
        for policy in PolicyKind::standard_set() {
            let cfg = quick_config(policy);
            let result = run_simulation(&cfg, requests(300, 50, 6)).unwrap();
            assert!(
                result.mean_rct() >= result.lower_bound_mean_rct * 0.999,
                "{}: mean {} < bound {}",
                result.policy,
                result.mean_rct(),
                result.lower_bound_mean_rct
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_config(PolicyKind::das());
        let a = run_simulation(&cfg, requests(200, 80, 4)).unwrap();
        let b = run_simulation(&cfg, requests(200, 80, 4)).unwrap();
        assert_eq!(a.mean_rct(), b.mean_rct());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn warmup_excludes_early_requests() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.warmup_secs = 0.01;
        let result = run_simulation(&cfg, requests(300, 100, 2)).unwrap();
        assert_eq!(result.completed, 300);
        assert!(result.measured < 300);
        assert!(result.measured > 0);
    }

    #[test]
    fn traffic_charged_per_policy() {
        let fcfs = run_simulation(&quick_config(PolicyKind::Fcfs), requests(100, 100, 4)).unwrap();
        assert_eq!(fcfs.traffic.overhead_bytes(), 0);
        let das = run_simulation(&quick_config(PolicyKind::das()), requests(100, 100, 4)).unwrap();
        assert!(das.traffic.overhead_bytes() > 0);
        assert!(das.traffic.bytes(TrafficClass::SchedulingMetadata) > 0);
        // Oracle coordination is free by definition.
        let oracle =
            run_simulation(&quick_config(PolicyKind::oracle()), requests(100, 100, 4)).unwrap();
        assert_eq!(oracle.traffic.overhead_bytes(), 0);
    }

    #[test]
    fn single_key_requests_have_one_op() {
        let cfg = quick_config(PolicyKind::Fcfs);
        let result = run_simulation(&cfg, requests(50, 100, 1)).unwrap();
        assert_eq!(result.mean_ops_per_request, 1.0);
    }

    #[test]
    fn coalescing_bounds_ops_by_cluster_size() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.cluster.servers = 4;
        // 64 keys over 4 servers: at most 4 ops per request.
        let result = run_simulation(&cfg, requests(50, 1000, 64)).unwrap();
        assert!(result.mean_ops_per_request <= 4.0);
        assert!(result.mean_ops_per_request > 1.0);
    }

    #[test]
    fn timeseries_when_requested() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.rct_timeseries_bin_secs = Some(0.01);
        let result = run_simulation(&cfg, requests(200, 100, 2)).unwrap();
        let ts = result.rct_over_time.unwrap();
        assert!(!ts.bins().is_empty());
        assert_eq!(ts.bins().iter().map(|b| b.count).sum::<u64>(), 200);
    }

    #[test]
    fn replication_spreads_reads() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.replication = 3;
        let result = run_simulation(&cfg, requests(200, 50, 4)).unwrap();
        assert_eq!(result.completed, 200);
    }

    #[test]
    fn empty_workload_is_fine() {
        let cfg = quick_config(PolicyKind::Fcfs);
        let result = run_simulation(&cfg, Vec::new()).unwrap();
        assert_eq!(result.completed, 0);
        assert_eq!(result.mean_rct(), 0.0);
    }

    #[test]
    fn out_of_order_arrivals_rejected() {
        let cfg = quick_config(PolicyKind::Fcfs);
        let reqs = vec![
            StoreRequest {
                id: 0,
                arrival: SimTime::from_millis(10),
                reads: vec![KeyRead::read(1, 100)],
            },
            StoreRequest {
                id: 1,
                arrival: SimTime::from_millis(5),
                reads: vec![KeyRead::read(2, 100)],
            },
        ];
        assert!(run_simulation(&cfg, reqs).is_err());
    }

    #[test]
    fn requests_at_horizon_are_dropped() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.horizon_secs = 0.001;
        // Arrivals at 0us and 2000us; only the first is inside the horizon.
        let result = run_simulation(&cfg, requests(2, 2000, 1)).unwrap();
        assert_eq!(result.completed, 1);
    }

    #[test]
    fn multiple_coordinators_still_complete_everything() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.coordinators = 8;
        let result = run_simulation(&cfg, requests(400, 60, 5)).unwrap();
        assert_eq!(result.completed, 400);
        assert!(result.mean_rct() >= result.lower_bound_mean_rct * 0.999);
        // And stays deterministic.
        let again = run_simulation(&cfg, requests(400, 60, 5)).unwrap();
        assert_eq!(result.mean_rct().to_bits(), again.mean_rct().to_bits());
    }

    #[test]
    fn fragmented_coordinators_change_estimates_not_correctness() {
        let mut one = quick_config(PolicyKind::das());
        one.cluster.coordinators = 1;
        let mut many = one.clone();
        many.cluster.coordinators = 16;
        let a = run_simulation(&one, requests(500, 50, 5)).unwrap();
        let b = run_simulation(&many, requests(500, 50, 5)).unwrap();
        assert_eq!(a.completed, b.completed);
        // Different information quality -> different schedules.
        assert_ne!(a.mean_rct().to_bits(), b.mean_rct().to_bits());
    }

    #[test]
    fn hint_loss_drops_hints_but_not_requests() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.hint_loss = 1.0; // every hint lost
        let result = run_simulation(&cfg, requests(300, 60, 5)).unwrap();
        assert_eq!(result.completed, 300);
        // Hints are still *charged* (they were sent), just never delivered;
        // correctness must not depend on them.
        assert!(result.traffic.messages(TrafficClass::ProgressHint) > 0);
    }

    #[test]
    fn invalid_hint_loss_rejected() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.hint_loss = 1.5;
        assert!(run_simulation(&cfg, requests(1, 100, 1)).is_err());
        cfg.cluster.hint_loss = 0.5;
        cfg.cluster.coordinators = 0;
        assert!(run_simulation(&cfg, requests(1, 100, 1)).is_err());
    }

    #[test]
    fn utilization_positive_under_load() {
        let cfg = quick_config(PolicyKind::Fcfs);
        let result = run_simulation(&cfg, requests(2000, 20, 4)).unwrap();
        assert!(result.mean_utilization > 0.0);
        assert!(result.max_utilization >= result.mean_utilization);
        assert!(result.max_utilization <= 1.5, "{}", result.max_utilization);
    }

    #[test]
    fn fault_free_recovery_stats_are_benign() {
        let cfg = quick_config(PolicyKind::Fcfs);
        let result = run_simulation(&cfg, requests(100, 100, 4)).unwrap();
        let r = &result.recovery;
        assert_eq!(r.accepted, 100);
        assert_eq!(r.completed, 100);
        assert_eq!(r.aborted, 0);
        assert!(!r.any_faults_seen());
        assert_eq!(r.availability(), 1.0);
    }

    #[test]
    fn generous_deadline_without_faults_changes_nothing() {
        // Retry machinery armed but never triggered: timeout events all
        // fire after their ops completed, so the measured RCT must be
        // bit-identical to the fault-free run.
        let plain = quick_config(PolicyKind::das());
        let mut armed = plain.clone();
        armed.faults.retry.deadline_secs = 10.0;
        let a = run_simulation(&plain, requests(300, 60, 4)).unwrap();
        let b = run_simulation(&armed, requests(300, 60, 4)).unwrap();
        assert_eq!(a.mean_rct().to_bits(), b.mean_rct().to_bits());
        assert_eq!(a.completed, b.completed);
        assert_eq!(b.recovery.timeouts, 0);
        assert_eq!(b.recovery.retries, 0);
        assert_eq!(b.recovery.aborted, 0);
    }

    #[test]
    fn crash_with_retry_recovers() {
        use das_sim::fault::CrashWindow;
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.replication = 2;
        // Requests span [0, 0.1s); both crash windows sit inside that span.
        cfg.faults.crashes.crashes.push(CrashWindow {
            server: 0,
            down_secs: 0.02,
            up_secs: 0.05,
        });
        cfg.faults.crashes.crashes.push(CrashWindow {
            server: 3,
            down_secs: 0.04,
            up_secs: 0.08,
        });
        cfg.faults.retry.deadline_secs = 0.05;
        cfg.faults.retry.max_attempts = 4;
        let result = run_simulation(&cfg, requests(2000, 50, 4)).unwrap();
        let r = &result.recovery;
        assert_eq!(r.accepted, 2000);
        assert_eq!(r.accepted, r.completed + r.aborted, "exactly-once violated");
        assert!(r.crash_drops > 0, "crashes should drop work");
        assert!(r.retries > 0, "drops should trigger retries");
        assert!(
            r.availability() > 0.9,
            "availability = {}",
            r.availability()
        );
        // Completed-and-measured requests split between the clean and
        // fault-exposed RCT summaries.
        assert_eq!(
            r.rct_clean.count() + r.rct_fault_exposed.count(),
            result.measured
        );
        assert!(r.rct_fault_exposed.count() > 0);
    }

    #[test]
    fn crash_without_retry_aborts_stranded_requests() {
        use das_sim::fault::CrashWindow;
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.faults.crashes.crashes.push(CrashWindow {
            server: 1,
            down_secs: 0.05,
            up_secs: f64::INFINITY,
        });
        let result = run_simulation(&cfg, requests(800, 100, 4)).unwrap();
        let r = &result.recovery;
        assert_eq!(r.accepted, r.completed + r.aborted);
        assert!(r.aborted > 0, "no retries: dropped ops must abort");
        assert!(r.availability() < 1.0);
        assert!(r.wasted_fraction() >= 0.0);
    }

    #[test]
    fn loss_with_retries_still_completes_everything() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.faults.request_faults.loss = 0.05;
        cfg.faults.response_faults.loss = 0.05;
        cfg.faults.retry.deadline_secs = 0.05;
        cfg.faults.retry.max_attempts = 10;
        cfg.faults.retry.jitter = 0.3;
        let result = run_simulation(&cfg, requests(600, 100, 4)).unwrap();
        let r = &result.recovery;
        assert_eq!(r.accepted, r.completed + r.aborted);
        assert!(r.timeouts > 0, "lost messages must time out");
        assert!(r.retries > 0);
        // With a 10-attempt budget virtually everything survives 5% loss.
        assert!(
            r.availability() > 0.99,
            "availability = {}",
            r.availability()
        );
    }

    #[test]
    fn duplication_is_detected_and_discarded() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.faults.response_faults.duplication = 1.0;
        let result = run_simulation(&cfg, requests(200, 200, 3)).unwrap();
        let r = &result.recovery;
        assert_eq!(r.completed, 200, "duplicates must not double-complete");
        assert!(r.duplicate_responses > 0);
        assert_eq!(r.aborted, 0);
    }

    #[test]
    fn hedging_fires_on_slow_reads() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.replication = 3;
        // One gray server: up, but 50x slower — the case hedging exists for.
        cfg.cluster.perf_events.push(crate::config::PerfEvent {
            server: 2,
            start_secs: 0.0,
            end_secs: f64::INFINITY,
            multiplier: 0.02,
        });
        cfg.faults.hedge.quantile = 0.9;
        cfg.faults.hedge.min_samples = 20;
        cfg.faults.hedge.min_delay_secs = 1e-4;
        let result = run_simulation(&cfg, requests(1500, 60, 2)).unwrap();
        let r = &result.recovery;
        assert_eq!(r.accepted, r.completed + r.aborted);
        assert_eq!(r.aborted, 0, "hedging alone never aborts");
        assert!(r.hedges > 0, "gray server should trip the hedge timer");
        assert!(r.wasted_service_secs >= 0.0);
    }

    #[test]
    fn overload_armed_but_inert_changes_nothing() {
        // A generous deadline and roomy queues with light load: the
        // overload layer is active but never fires, so every simulation
        // output must stay bit-identical to the defaults-off run.
        for policy in PolicyKind::standard_set() {
            let plain = quick_config(policy);
            let mut armed = plain.clone();
            armed.overload.admission.deadline_secs = 10.0;
            armed.overload.backpressure.tokens_per_sec = 100.0;
            let a = run_simulation(&plain, requests(300, 80, 4)).unwrap();
            let b = run_simulation(&armed, requests(300, 80, 4)).unwrap();
            assert_eq!(
                a.mean_rct().to_bits(),
                b.mean_rct().to_bits(),
                "{}",
                b.policy
            );
            assert_eq!(a.p99_rct().to_bits(), b.p99_rct().to_bits(), "{}", b.policy);
            assert_eq!(a.completed, b.completed, "{}", b.policy);
            assert_eq!(a.events_processed, b.events_processed, "{}", b.policy);
            assert_eq!(a.traffic, b.traffic, "{}", b.policy);
            assert!(!b.recovery.any_overload_seen(), "{}", b.policy);
        }
    }

    #[test]
    fn admission_sheds_when_deadline_tight() {
        // Offered load well past saturation with a deadline the growing
        // backlog cannot meet: admission must start rejecting, and every
        // admitted request must still complete (no retry machinery here).
        let mut cfg = quick_config(PolicyKind::das());
        cfg.overload.admission.deadline_secs = 0.003;
        let result = run_simulation(&cfg, requests(3000, 3, 4)).unwrap();
        let r = &result.recovery;
        assert!(r.shed_admission > 0, "tight deadline must shed");
        assert_eq!(r.accepted, r.completed, "admitted requests all complete");
        assert_eq!(r.offered(), r.accepted + r.shed_admission);
        assert!(r.shed_fraction() > 0.0 && r.shed_fraction() < 1.0);
        assert!(r.completed > 0, "admission must not starve the system");
    }

    #[test]
    fn write_penalty_prefers_shedding_writes() {
        let mixed: Vec<StoreRequest> = (0..100)
            .map(|i| {
                let mut reads = vec![KeyRead::read(i * 13 + 1, 4096)];
                if i % 2 == 0 {
                    reads.push(KeyRead::write(i * 17 + 3, 1_000_000));
                }
                StoreRequest {
                    id: i,
                    arrival: SimTime::from_micros(i * 200),
                    reads,
                }
            })
            .collect();
        let mut neutral = quick_config(PolicyKind::das());
        neutral.overload.admission.deadline_secs = 0.01;
        let mut penalized = neutral.clone();
        penalized.overload.admission.write_penalty = 100.0;
        let a = run_simulation(&neutral, mixed.clone()).unwrap();
        let b = run_simulation(&penalized, mixed).unwrap();
        // Light load: without the penalty everything fits the deadline;
        // with it, exactly the write-bearing half is rejected.
        assert_eq!(a.recovery.shed_admission, 0);
        assert_eq!(b.recovery.shed_admission, 50);
        assert_eq!(b.recovery.accepted, b.recovery.completed);
    }

    #[test]
    fn bounded_queue_sheds_whole_requests() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        // Generous deadline: only the queue bound bites.
        cfg.overload.admission.deadline_secs = 1.0;
        cfg.overload.admission.queue_capacity = 4;
        let result = run_simulation(&cfg, requests(2000, 3, 4)).unwrap();
        let r = &result.recovery;
        assert!(r.shed_queue > 0, "full queues must shed");
        assert_eq!(r.accepted, r.completed + r.shed_queue);
        assert!(r.completed > 0);
        // Shed requests never record an RCT.
        assert_eq!(result.rct.count(), result.measured);
        assert_eq!(result.completed + r.shed_queue, r.accepted);
    }

    #[test]
    fn batching_coalesces_tiny_ops_and_helps_under_overload() {
        let mut plain = quick_config(PolicyKind::Fcfs);
        plain.horizon_secs = 0.1;
        let mut batched = plain.clone();
        batched.overload.batch.max_ops = 8;
        batched.overload.batch.tiny_op_bytes = 8192;
        // ~1.1x saturation on 4096-byte ops: queues grow without help.
        let a = run_simulation(&plain, requests(3000, 4, 4)).unwrap();
        let b = run_simulation(&batched, requests(3000, 4, 4)).unwrap();
        let r = &b.recovery;
        assert!(r.batching.batches > 0, "queued tiny ops must coalesce");
        assert!(r.batching.mean_batch_size() > 1.0);
        assert!(r.batching.overhead_saved_secs > 0.0);
        assert_eq!(a.completed, b.completed);
        assert!(
            b.mean_rct() < a.mean_rct(),
            "amortized overhead must relieve the overload: {} !< {}",
            b.mean_rct(),
            a.mean_rct()
        );
    }

    #[test]
    fn backpressure_denies_retries_past_budget() {
        use das_sim::fault::CrashWindow;
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.replication = 2;
        cfg.faults.crashes.crashes.push(CrashWindow {
            server: 0,
            down_secs: 0.02,
            up_secs: 0.05,
        });
        cfg.faults.crashes.crashes.push(CrashWindow {
            server: 3,
            down_secs: 0.04,
            up_secs: 0.08,
        });
        cfg.faults.retry.deadline_secs = 0.05;
        cfg.faults.retry.max_attempts = 4;
        // A near-empty budget: ~16 initial tokens, then 1/s refill over a
        // ~0.1s run — almost every retry wave is denied.
        cfg.overload.backpressure.tokens_per_sec = 1.0;
        let result = run_simulation(&cfg, requests(2000, 50, 4)).unwrap();
        let r = &result.recovery;
        assert!(r.retries_denied > 0, "the budget must deny retries");
        assert!(r.aborted > 0, "denied retries fail fast");
        assert_eq!(r.accepted, r.completed + r.aborted + r.shed_queue);
        assert!(r.retries <= 16 + r.crash_drops, "retry volume is bounded");
    }

    #[test]
    fn hedges_draw_from_the_same_budget() {
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.replication = 3;
        cfg.cluster.perf_events.push(crate::config::PerfEvent {
            server: 2,
            start_secs: 0.0,
            end_secs: f64::INFINITY,
            multiplier: 0.02,
        });
        cfg.faults.hedge.quantile = 0.9;
        cfg.faults.hedge.min_samples = 20;
        cfg.faults.hedge.min_delay_secs = 1e-4;
        cfg.overload.backpressure.tokens_per_sec = 1.0;
        cfg.overload.backpressure.burst = 2.0;
        let result = run_simulation(&cfg, requests(1500, 60, 2)).unwrap();
        let r = &result.recovery;
        assert!(r.hedges_denied > 0, "the shared budget must deny hedges");
        assert_eq!(r.aborted, 0, "a denied hedge never aborts the request");
        assert_eq!(r.accepted, r.completed);
        assert!(r.hedges <= 2 + 1, "hedge volume is bounded by the bucket");
    }

    #[test]
    fn overloaded_runs_are_deterministic() {
        use das_sim::fault::CrashWindow;
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.replication = 2;
        cfg.faults.crashes.crashes.push(CrashWindow {
            server: 2,
            down_secs: 0.01,
            up_secs: 0.04,
        });
        cfg.faults.retry.deadline_secs = 0.02;
        cfg.overload.admission.deadline_secs = 0.03;
        cfg.overload.admission.queue_capacity = 16;
        cfg.overload.backpressure.tokens_per_sec = 500.0;
        cfg.overload.backpressure.burst = 4.0;
        cfg.overload.batch.max_ops = 4;
        let a = run_simulation(&cfg, requests(2000, 5, 4)).unwrap();
        let b = run_simulation(&cfg, requests(2000, 5, 4)).unwrap();
        assert_eq!(a.mean_rct().to_bits(), b.mean_rct().to_bits());
        assert_eq!(a.recovery.shed_admission, b.recovery.shed_admission);
        assert_eq!(a.recovery.shed_queue, b.recovery.shed_queue);
        assert_eq!(a.recovery.retries_denied, b.recovery.retries_denied);
        assert_eq!(a.recovery.batching, b.recovery.batching);
        assert_eq!(a.events_processed, b.events_processed);
        assert!(a.recovery.any_overload_seen());
    }

    #[test]
    fn shed_traces_carry_terminal_shed_events() {
        let mut cfg = quick_config(PolicyKind::Fcfs);
        cfg.overload.admission.deadline_secs = 1.0;
        cfg.overload.admission.queue_capacity = 4;
        cfg.trace = das_trace::TraceConfig::enabled();
        let result = run_simulation(&cfg, requests(2000, 3, 4)).unwrap();
        let log = result.trace.unwrap();
        let sheds = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Shed { .. }))
            .count() as u64;
        assert_eq!(sheds, result.recovery.shed_queue);
        // Shed requests have no RequestComplete, so the critical-path
        // reconstruction (which telescopes exactly) skips them cleanly.
        let paths = das_trace::critical_paths(&log);
        assert_eq!(paths.len() as u64, result.completed);
        for p in &paths {
            assert_eq!(p.sum_ns(), p.rct_ns, "request {}", p.request);
        }
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        use das_sim::fault::CrashWindow;
        let mut cfg = quick_config(PolicyKind::das());
        cfg.cluster.replication = 2;
        cfg.faults.crashes.crashes.push(CrashWindow {
            server: 2,
            down_secs: 0.1,
            up_secs: 0.5,
        });
        cfg.faults.request_faults.loss = 0.02;
        cfg.faults.response_faults.duplication = 0.05;
        cfg.faults.retry.deadline_secs = 0.05;
        cfg.faults.retry.jitter = 0.5;
        cfg.faults.hedge.quantile = 0.95;
        cfg.faults.hedge.min_samples = 50;
        let a = run_simulation(&cfg, requests(800, 80, 4)).unwrap();
        let b = run_simulation(&cfg, requests(800, 80, 4)).unwrap();
        assert_eq!(a.mean_rct().to_bits(), b.mean_rct().to_bits());
        assert_eq!(a.recovery.timeouts, b.recovery.timeouts);
        assert_eq!(a.recovery.retries, b.recovery.retries);
        assert_eq!(a.recovery.hedges, b.recovery.hedges);
        assert_eq!(a.recovery.aborted, b.recovery.aborted);
        assert_eq!(a.events_processed, b.events_processed);
    }
}
