//! Coordinator-side state: per-server load/performance estimates (built
//! from piggybacked reports) and per-request progress tracking.
//!
//! This is the "distributed" half of DAS: the coordinator never queries
//! servers synchronously — everything it knows rides on responses it was
//! receiving anyway.

use std::collections::BTreeMap;

use das_sched::types::{RequestId, ServerId, ServerReport};
use das_sim::stats::Ewma;
use das_sim::time::{SimDuration, SimTime};

/// Smoothing factor for the coordinator's per-server rate estimate.
const RATE_EWMA_ALPHA: f64 = 0.3;

/// The coordinator's view of one server.
#[derive(Debug, Clone)]
pub struct ServerEstimate {
    /// EWMA of reported service rates, bytes/second.
    rate: Ewma,
    /// Nominal rate used before any report arrives.
    nominal_rate: f64,
    /// Backlog reported by the last piggybacked report, seconds.
    reported_backlog: f64,
    /// When that report was received.
    report_time: SimTime,
    /// Estimated service seconds of this coordinator's own in-flight
    /// (dispatched, not yet responded) ops at the server. Maintained for
    /// *every* policy — it is free local knowledge and drives replica
    /// selection, so client-side load balancing is identical across
    /// disciplines.
    outstanding: f64,
}

impl ServerEstimate {
    /// A fresh estimate assuming the nominal rate and an empty queue.
    pub fn new(nominal_rate: f64) -> Self {
        ServerEstimate {
            rate: Ewma::new(RATE_EWMA_ALPHA),
            nominal_rate,
            reported_backlog: 0.0,
            report_time: SimTime::ZERO,
            outstanding: 0.0,
        }
    }

    /// Current service-rate estimate, bytes/second.
    pub fn rate(&self) -> f64 {
        self.rate.value_or(self.nominal_rate)
    }

    /// Expected queueing delay at the server as of `now`: the larger of
    /// the last piggybacked backlog (drained at one second of work per
    /// second) and this coordinator's own outstanding work. `max` rather
    /// than a sum because the report already includes whatever of our
    /// outstanding work had reached the server when it was generated.
    pub fn wait_secs(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.report_time).as_secs_f64();
        (self.reported_backlog - elapsed)
            .max(0.0)
            .max(self.outstanding)
    }

    /// Folds in a piggybacked report received at `now`.
    pub fn absorb_report(&mut self, report: &ServerReport, now: SimTime) {
        self.rate.record(report.service_rate);
        self.reported_backlog = report.backlog_secs;
        self.report_time = now;
    }

    /// Charges an op the coordinator just dispatched to this server.
    pub fn charge_dispatch(&mut self, service_est_secs: f64) {
        self.outstanding += service_est_secs;
    }

    /// Releases a dispatched op's charge once its response arrives.
    pub fn complete_dispatch(&mut self, service_est_secs: f64) {
        self.outstanding = (self.outstanding - service_est_secs).max(0.0);
    }
}

/// One pending op of a tracked request.
#[derive(Debug, Clone, Copy)]
pub struct PendingOp {
    /// Where it was sent.
    pub server: ServerId,
    /// Estimated service-completion instant (dispatch-time estimate).
    pub eta: SimTime,
    /// Estimated service demand at its server.
    pub demand_est: SimDuration,
    /// Whether its response has arrived.
    pub done: bool,
}

/// Coordinator-side progress record for one in-flight request.
#[derive(Debug, Clone)]
pub struct RequestState {
    /// Arrival instant at the coordinator.
    pub arrival: SimTime,
    /// Number of keys requested (before per-server coalescing).
    pub key_count: u32,
    /// Per-op progress (one entry per target server).
    pub ops: Vec<PendingOp>,
    /// Current estimated bottleneck completion instant (max pending eta).
    pub bottleneck_eta: SimTime,
    /// Current largest estimated service demand among pending ops.
    pub bottleneck_demand: SimDuration,
    /// Zero-queueing ideal RCT (for slowdown and the lower bound).
    pub ideal: SimDuration,
    /// Whether this request falls inside the measurement window.
    pub measured: bool,
}

impl RequestState {
    /// Remaining (unresponded) op count.
    pub fn pending(&self) -> usize {
        self.ops.iter().filter(|o| !o.done).count()
    }

    /// Marks op `index` done and returns the new `(max eta, max demand)`
    /// over pending ops (`None` if the request is now complete).
    pub fn complete_op(&mut self, index: usize) -> Option<(SimTime, SimDuration)> {
        self.ops[index].done = true;
        let mut result: Option<(SimTime, SimDuration)> = None;
        for o in self.ops.iter().filter(|o| !o.done) {
            result = Some(match result {
                None => (o.eta, o.demand_est),
                Some((eta, demand)) => (eta.max(o.eta), demand.max(o.demand_est)),
            });
        }
        result
    }

    /// The servers still holding pending ops.
    pub fn pending_servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.ops.iter().filter(|o| !o.done).map(|o| o.server)
    }
}

/// The coordinator: server estimates plus the in-flight request table.
#[derive(Debug)]
pub struct Coordinator {
    estimates: Vec<ServerEstimate>,
    requests: BTreeMap<RequestId, RequestState>,
    /// Highest backlog estimate seen recently — a cheap cluster-load signal.
    peak_wait: Ewma,
}

impl Coordinator {
    /// A coordinator for `servers` servers with the given nominal rate.
    pub fn new(servers: u32, nominal_rate: f64) -> Self {
        Coordinator {
            estimates: (0..servers)
                .map(|_| ServerEstimate::new(nominal_rate))
                .collect(),
            requests: BTreeMap::new(),
            peak_wait: Ewma::new(0.1),
        }
    }

    /// The estimate for `server`.
    pub fn estimate(&self, server: ServerId) -> &ServerEstimate {
        &self.estimates[server.0 as usize]
    }

    /// Mutable estimate for `server`.
    pub fn estimate_mut(&mut self, server: ServerId) -> &mut ServerEstimate {
        &mut self.estimates[server.0 as usize]
    }

    /// Absorbs a piggybacked report.
    pub fn absorb_report(&mut self, report: &ServerReport, now: SimTime) {
        self.peak_wait.record(report.backlog_secs);
        self.estimates[report.server.0 as usize].absorb_report(report, now);
    }

    /// EWMA of reported backlogs — a coarse cluster-load indicator.
    pub fn cluster_load_signal(&self) -> f64 {
        self.peak_wait.value_or(0.0)
    }

    /// Registers an in-flight request.
    pub fn track(&mut self, id: RequestId, state: RequestState) {
        self.requests.insert(id, state);
    }

    /// Access a tracked request.
    pub fn request(&self, id: RequestId) -> Option<&RequestState> {
        self.requests.get(&id)
    }

    /// Mutable access to a tracked request.
    pub fn request_mut(&mut self, id: RequestId) -> Option<&mut RequestState> {
        self.requests.get_mut(&id)
    }

    /// Removes a completed request, returning its state.
    pub fn finish(&mut self, id: RequestId) -> Option<RequestState> {
        self.requests.remove(&id)
    }

    /// Number of requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_defaults_to_nominal() {
        let e = ServerEstimate::new(1e9);
        assert_eq!(e.rate(), 1e9);
        assert_eq!(e.wait_secs(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn report_updates_rate_and_backlog() {
        let mut e = ServerEstimate::new(1e9);
        let report = ServerReport {
            server: ServerId(0),
            backlog_secs: 0.010,
            service_rate: 5e8,
            queue_len: 7,
        };
        e.absorb_report(&report, SimTime::from_secs(1));
        assert!(e.rate() < 1e9);
        assert!((e.wait_secs(SimTime::from_secs(1)) - 0.010).abs() < 1e-12);
        // Backlog drains over time.
        let w = e.wait_secs(SimTime::from_secs(1) + SimDuration::from_millis(4));
        assert!((w - 0.006).abs() < 1e-9, "w = {w}");
        // And hits zero eventually.
        assert_eq!(e.wait_secs(SimTime::from_secs(2)), 0.0);
    }

    #[test]
    fn dispatches_add_to_wait_and_release_on_response() {
        let mut e = ServerEstimate::new(1e9);
        e.charge_dispatch(0.002);
        e.charge_dispatch(0.003);
        assert!((e.wait_secs(SimTime::ZERO) - 0.005).abs() < 1e-12);
        // A smaller report does not shrink the estimate below our own
        // outstanding work (max semantics)...
        e.absorb_report(
            &ServerReport {
                server: ServerId(0),
                backlog_secs: 0.001,
                service_rate: 1e9,
                queue_len: 1,
            },
            SimTime::from_secs(1),
        );
        assert!((e.wait_secs(SimTime::from_secs(1)) - 0.005).abs() < 1e-12);
        // ...a larger one does raise it...
        e.absorb_report(
            &ServerReport {
                server: ServerId(0),
                backlog_secs: 0.020,
                service_rate: 1e9,
                queue_len: 9,
            },
            SimTime::from_secs(1),
        );
        assert!((e.wait_secs(SimTime::from_secs(1)) - 0.020).abs() < 1e-12);
        // ...and responses release the outstanding charge.
        e.complete_dispatch(0.002);
        e.complete_dispatch(0.003);
        e.complete_dispatch(99.0); // over-release clamps at zero
                                   // With the outstanding charge gone and the report fully drained,
                                   // the wait estimate returns to zero.
        assert_eq!(e.wait_secs(SimTime::from_secs(2)), 0.0);
    }

    #[test]
    fn request_state_tracks_completion() {
        let mut st = RequestState {
            arrival: SimTime::ZERO,
            key_count: 3,
            ops: vec![
                PendingOp {
                    server: ServerId(0),
                    eta: SimTime::from_micros(100),
                    demand_est: SimDuration::from_micros(80),
                    done: false,
                },
                PendingOp {
                    server: ServerId(1),
                    eta: SimTime::from_micros(500),
                    demand_est: SimDuration::from_micros(400),
                    done: false,
                },
            ],
            bottleneck_eta: SimTime::from_micros(500),
            bottleneck_demand: SimDuration::from_micros(400),
            ideal: SimDuration::from_micros(500),
            measured: true,
        };
        assert_eq!(st.pending(), 2);
        // Completing the bottleneck shrinks both the max eta and the max
        // remaining demand.
        let remaining = st.complete_op(1);
        assert_eq!(
            remaining,
            Some((SimTime::from_micros(100), SimDuration::from_micros(80)))
        );
        assert_eq!(st.pending_servers().collect::<Vec<_>>(), vec![ServerId(0)]);
        assert_eq!(st.complete_op(0), None);
        assert_eq!(st.pending(), 0);
    }

    #[test]
    fn coordinator_tracks_requests() {
        let mut c = Coordinator::new(4, 1e9);
        assert_eq!(c.in_flight(), 0);
        c.track(
            RequestId(9),
            RequestState {
                arrival: SimTime::ZERO,
                key_count: 1,
                ops: vec![PendingOp {
                    server: ServerId(2),
                    eta: SimTime::from_micros(10),
                    demand_est: SimDuration::from_micros(10),
                    done: false,
                }],
                bottleneck_eta: SimTime::from_micros(10),
                bottleneck_demand: SimDuration::from_micros(10),
                ideal: SimDuration::from_micros(10),
                measured: false,
            },
        );
        assert_eq!(c.in_flight(), 1);
        assert!(c.request(RequestId(9)).is_some());
        assert!(c.request_mut(RequestId(9)).is_some());
        let st = c.finish(RequestId(9)).unwrap();
        assert_eq!(st.key_count, 1);
        assert_eq!(c.in_flight(), 0);
        assert!(c.finish(RequestId(9)).is_none());
    }

    #[test]
    fn load_signal_follows_reports() {
        let mut c = Coordinator::new(2, 1e9);
        assert_eq!(c.cluster_load_signal(), 0.0);
        for _ in 0..50 {
            c.absorb_report(
                &ServerReport {
                    server: ServerId(0),
                    backlog_secs: 0.02,
                    service_rate: 1e9,
                    queue_len: 10,
                },
                SimTime::ZERO,
            );
        }
        assert!(c.cluster_load_signal() > 0.015);
    }
}
