//! Key partitioning: which server owns which key.
//!
//! Three strategies are provided: plain hash-modulo, consistent hashing
//! with virtual nodes (what Cassandra/Dynamo-style stores deploy), and
//! contiguous range partitioning. Replication places `r` copies on distinct
//! servers following the primary.

use serde::{Deserialize, Serialize};

use das_sched::types::ServerId;

/// Declarative partitioner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PartitionerConfig {
    /// `server = hash(key) % n`.
    HashMod,
    /// Consistent hashing with `vnodes` virtual nodes per server.
    ConsistentHash {
        /// Virtual nodes per server (64–256 typical).
        vnodes: u32,
    },
    /// Contiguous key ranges of equal width.
    Range {
        /// Total number of keys (needed to size the ranges).
        n_keys: u64,
    },
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        PartitionerConfig::ConsistentHash { vnodes: 128 }
    }
}

impl PartitionerConfig {
    /// Builds the partitioner for a cluster of `servers` servers.
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn build(&self, servers: u32) -> Partitioner {
        assert!(servers > 0, "cluster must have at least one server");
        match *self {
            PartitionerConfig::HashMod => Partitioner::HashMod { servers },
            PartitionerConfig::ConsistentHash { vnodes } => {
                assert!(vnodes > 0, "need at least one vnode per server");
                // Domain-separate vnode hashes from key hashes: without the
                // salt, server 0's vnode inputs are the raw integers
                // 0..vnodes, which collide *exactly* with the hashes of
                // keys 0..vnodes — handing every low-numbered (Zipf-hot)
                // key to server 0.
                const VNODE_SALT: u64 = 0x5bd1_e995_97f4_a7c5;
                let mut ring: Vec<(u64, ServerId)> = (0..servers)
                    .flat_map(|s| {
                        (0..vnodes).map(move |v| {
                            (
                                mix(VNODE_SALT ^ (((s as u64) << 32) | v as u64)),
                                ServerId(s),
                            )
                        })
                    })
                    .collect();
                ring.sort_unstable_by_key(|&(h, _)| h);
                ring.dedup_by_key(|&mut (h, _)| h);
                Partitioner::ConsistentHash { ring, servers }
            }
            PartitionerConfig::Range { n_keys } => {
                assert!(n_keys > 0);
                Partitioner::Range { n_keys, servers }
            }
        }
    }
}

/// A built partitioner mapping keys to servers.
#[derive(Debug, Clone)]
pub enum Partitioner {
    /// Hash-modulo placement.
    HashMod {
        /// Cluster size.
        servers: u32,
    },
    /// Consistent-hash ring.
    ConsistentHash {
        /// Sorted `(hash, server)` ring points.
        ring: Vec<(u64, ServerId)>,
        /// Cluster size.
        servers: u32,
    },
    /// Equal-width contiguous ranges.
    Range {
        /// Total key population.
        n_keys: u64,
        /// Cluster size.
        servers: u32,
    },
}

/// SplitMix64 — cheap, well-mixed 64-bit hash for key placement.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Partitioner {
    /// Number of servers.
    pub fn servers(&self) -> u32 {
        match *self {
            Partitioner::HashMod { servers }
            | Partitioner::ConsistentHash { servers, .. }
            | Partitioner::Range { servers, .. } => servers,
        }
    }

    /// The primary server for `key`.
    pub fn primary(&self, key: u64) -> ServerId {
        match self {
            Partitioner::HashMod { servers } => ServerId((mix(key) % *servers as u64) as u32),
            Partitioner::ConsistentHash { ring, .. } => {
                let h = mix(key);
                let idx = match ring.binary_search_by_key(&h, |&(rh, _)| rh) {
                    Ok(i) => i,
                    Err(i) => i % ring.len(),
                };
                ring[idx].1
            }
            Partitioner::Range { n_keys, servers } => {
                let width = n_keys.div_ceil(*servers as u64);
                ServerId(((key / width).min(*servers as u64 - 1)) as u32)
            }
        }
    }

    /// The `replicas` distinct servers holding `key` (primary first).
    /// Clamped to the cluster size.
    pub fn replicas(&self, key: u64, replicas: u32) -> Vec<ServerId> {
        let n = self.servers();
        let r = replicas.clamp(1, n);
        let primary = self.primary(key);
        // Successor placement: the next r-1 distinct servers on the ring
        // (or numerically, for non-ring partitioners).
        match self {
            Partitioner::ConsistentHash { ring, .. } => {
                let h = mix(key);
                let start = match ring.binary_search_by_key(&h, |&(rh, _)| rh) {
                    Ok(i) => i,
                    Err(i) => i % ring.len(),
                };
                let mut out = Vec::with_capacity(r as usize);
                for offset in 0..ring.len() {
                    let s = ring[(start + offset) % ring.len()].1;
                    if !out.contains(&s) {
                        out.push(s);
                        if out.len() == r as usize {
                            break;
                        }
                    }
                }
                out
            }
            _ => (0..r).map(|i| ServerId((primary.0 + i) % n)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn balance_check(p: &Partitioner, n_keys: u64, servers: u32, tolerance: f64) {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for k in 0..n_keys {
            *counts.entry(p.primary(k).0).or_default() += 1;
        }
        let expect = n_keys as f64 / servers as f64;
        for s in 0..servers {
            let c = *counts.get(&s).unwrap_or(&0) as f64;
            assert!(
                (c - expect).abs() / expect < tolerance,
                "server {s}: {c} keys vs expected {expect}"
            );
        }
    }

    #[test]
    fn hash_mod_balances() {
        let p = PartitionerConfig::HashMod.build(16);
        balance_check(&p, 100_000, 16, 0.1);
    }

    #[test]
    fn consistent_hash_balances() {
        let p = PartitionerConfig::ConsistentHash { vnodes: 256 }.build(16);
        balance_check(&p, 100_000, 16, 0.35);
    }

    #[test]
    fn range_partitions_contiguously() {
        let p = PartitionerConfig::Range { n_keys: 100 }.build(4);
        assert_eq!(p.primary(0), ServerId(0));
        assert_eq!(p.primary(24), ServerId(0));
        assert_eq!(p.primary(25), ServerId(1));
        assert_eq!(p.primary(99), ServerId(3));
        // Out-of-range keys clamp to the last server.
        assert_eq!(p.primary(1_000_000), ServerId(3));
    }

    #[test]
    fn placement_is_stable() {
        let p1 = PartitionerConfig::default().build(10);
        let p2 = PartitionerConfig::default().build(10);
        for k in 0..1000 {
            assert_eq!(p1.primary(k), p2.primary(k));
        }
    }

    #[test]
    fn consecutive_hot_keys_spread_across_servers() {
        // Regression test: vnode hashes must be domain-separated from key
        // hashes, or keys 0..vnodes (the hottest ranks under Zipf
        // popularity) all collide onto server 0's vnodes.
        let p = PartitionerConfig::ConsistentHash { vnodes: 128 }.build(50);
        let owners: std::collections::HashSet<u32> = (0..64u64).map(|k| p.primary(k).0).collect();
        assert!(
            owners.len() > 10,
            "first 64 keys land on only {} servers",
            owners.len()
        );
    }

    #[test]
    fn consistent_hash_minimal_movement() {
        // Growing the cluster by one server should move roughly 1/(n+1) of
        // keys — the whole point of consistent hashing.
        let p10 = PartitionerConfig::ConsistentHash { vnodes: 128 }.build(10);
        let p11 = PartitionerConfig::ConsistentHash { vnodes: 128 }.build(11);
        let moved = (0..50_000u64)
            .filter(|&k| p10.primary(k) != p11.primary(k))
            .count();
        let frac = moved as f64 / 50_000.0;
        assert!(frac < 0.25, "moved fraction = {frac}");
        assert!(frac > 0.02, "suspiciously little movement: {frac}");
    }

    #[test]
    fn replicas_distinct_and_primary_first() {
        for cfg in [
            PartitionerConfig::HashMod,
            PartitionerConfig::default(),
            PartitionerConfig::Range { n_keys: 10_000 },
        ] {
            let p = cfg.build(8);
            for k in 0..500u64 {
                let reps = p.replicas(k, 3);
                assert_eq!(reps.len(), 3);
                assert_eq!(reps[0], p.primary(k));
                let set: std::collections::HashSet<ServerId> = reps.iter().copied().collect();
                assert_eq!(set.len(), 3, "{cfg:?} key {k}: {reps:?}");
            }
        }
    }

    #[test]
    fn replicas_clamped_to_cluster() {
        let p = PartitionerConfig::HashMod.build(2);
        assert_eq!(p.replicas(1, 5).len(), 2);
        assert_eq!(p.replicas(1, 0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = PartitionerConfig::HashMod.build(0);
    }
}
