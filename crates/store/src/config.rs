//! Cluster and simulation configuration.

use serde::{Deserialize, Serialize};

use das_net::latency::NetworkConfig;
use das_sched::policy::PolicyKind;
use das_sim::time::SimDuration;

use crate::partition::PartitionerConfig;

fn default_coordinators() -> u32 {
    1
}

/// A scheduled change to one server's performance — the substrate for the
/// time-varying-server-performance experiments (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfEvent {
    /// Affected server index.
    pub server: u32,
    /// When the change takes effect, seconds.
    pub start_secs: f64,
    /// When the server recovers, seconds (`f64::INFINITY` = never).
    pub end_secs: f64,
    /// Service-rate multiplier during the window (0.25 = 4× slower).
    pub multiplier: f64,
}

impl PerfEvent {
    /// The multiplier in effect for this event at time `t` (1.0 outside
    /// the window).
    pub fn multiplier_at(&self, t_secs: f64) -> f64 {
        if t_secs >= self.start_secs && t_secs < self.end_secs {
            self.multiplier
        } else {
            1.0
        }
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers.
    pub servers: u32,
    /// Concurrent workers (service slots) per server.
    pub workers_per_server: u32,
    /// Nominal service rate, bytes/second (e.g. `1e9` ≈ memcached-class).
    pub base_rate_bytes_per_sec: f64,
    /// Fixed per-operation service overhead (parsing, lookup, framing).
    pub per_op_overhead: SimDuration,
    /// Network model between coordinator and servers.
    pub network: NetworkConfig,
    /// Key→server placement.
    pub partitioner: PartitionerConfig,
    /// Replication factor (1 = no replication). Reads go to the replica
    /// with the lowest estimated completion time.
    pub replication: u32,
    /// Number of independent client coordinators. Requests are spread
    /// round-robin across them; each maintains its *own* piggyback-fed
    /// estimates and only sees its own responses, so higher counts mean
    /// staler, more fragmented information — the realistic stress test of
    /// the "distributed" claim.
    #[serde(default = "default_coordinators")]
    pub coordinators: u32,
    /// Probability that a progress-hint message is lost in flight
    /// (hints are fire-and-forget; DAS must tolerate losing them).
    #[serde(default)]
    pub hint_loss: f64,
    /// Scheduled server slowdowns/speedups.
    pub perf_events: Vec<PerfEvent>,
    /// Relative standard deviation of the coordinator's service-time
    /// estimates (0 = perfect size knowledge).
    pub estimate_noise: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 100,
            workers_per_server: 1,
            base_rate_bytes_per_sec: 1e9,
            per_op_overhead: SimDuration::from_micros(5),
            network: NetworkConfig::default(),
            partitioner: PartitionerConfig::default(),
            replication: 1,
            coordinators: 1,
            hint_loss: 0.0,
            perf_events: Vec::new(),
            estimate_noise: 0.0,
        }
    }
}

impl ClusterConfig {
    /// Effective rate multiplier for `server` at `t_secs`, combining all
    /// overlapping events multiplicatively.
    pub fn rate_multiplier(&self, server: u32, t_secs: f64) -> f64 {
        self.perf_events
            .iter()
            .filter(|e| e.server == server)
            .map(|e| e.multiplier_at(t_secs))
            .product()
    }

    /// Mean service time for an op of `bytes` at nominal rate.
    pub fn nominal_service_secs(&self, bytes: u64) -> f64 {
        self.per_op_overhead.as_secs_f64() + bytes as f64 / self.base_rate_bytes_per_sec
    }

    /// Validates invariants, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("servers must be >= 1".into());
        }
        if self.workers_per_server == 0 {
            return Err("workers_per_server must be >= 1".into());
        }
        if !(self.base_rate_bytes_per_sec.is_finite() && self.base_rate_bytes_per_sec > 0.0) {
            return Err("base_rate_bytes_per_sec must be positive".into());
        }
        if self.replication == 0 {
            return Err("replication must be >= 1".into());
        }
        if self.coordinators == 0 {
            return Err("coordinators must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.hint_loss) {
            return Err("hint_loss must be in [0, 1]".into());
        }
        if !(self.estimate_noise.is_finite() && self.estimate_noise >= 0.0) {
            return Err("estimate_noise must be >= 0".into());
        }
        for e in &self.perf_events {
            if e.server >= self.servers {
                return Err(format!("perf event for nonexistent server {}", e.server));
            }
            if !(e.multiplier.is_finite() && e.multiplier > 0.0) {
                return Err("perf multiplier must be positive".into());
            }
            if e.end_secs < e.start_secs {
                return Err("perf event ends before it starts".into());
            }
        }
        Ok(())
    }
}

/// Everything one simulation run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// The cluster under test.
    pub cluster: ClusterConfig,
    /// The scheduling policy deployed on every server.
    pub policy: PolicyKind,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
    /// Simulated run length, seconds.
    pub horizon_secs: f64,
    /// Requests arriving before this instant are excluded from statistics.
    pub warmup_secs: f64,
    /// Bin width for the RCT-over-time series, seconds (`None` = skip).
    pub rct_timeseries_bin_secs: Option<f64>,
}

impl SimulationConfig {
    /// A run of `horizon_secs` with the given policy on a default cluster.
    pub fn new(policy: PolicyKind, horizon_secs: f64) -> Self {
        SimulationConfig {
            cluster: ClusterConfig::default(),
            policy,
            seed: 1,
            horizon_secs,
            warmup_secs: (horizon_secs * 0.1).min(2.0),
            rct_timeseries_bin_secs: None,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        if !(self.horizon_secs.is_finite() && self.horizon_secs > 0.0) {
            return Err("horizon must be positive".into());
        }
        if self.warmup_secs < 0.0 || self.warmup_secs >= self.horizon_secs {
            return Err("warmup must be in [0, horizon)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(ClusterConfig::default().validate(), Ok(()));
        assert_eq!(
            SimulationConfig::new(PolicyKind::Fcfs, 10.0).validate(),
            Ok(())
        );
    }

    #[test]
    fn perf_event_windows() {
        let e = PerfEvent {
            server: 3,
            start_secs: 1.0,
            end_secs: 2.0,
            multiplier: 0.25,
        };
        assert_eq!(e.multiplier_at(0.5), 1.0);
        assert_eq!(e.multiplier_at(1.0), 0.25);
        assert_eq!(e.multiplier_at(1.999), 0.25);
        assert_eq!(e.multiplier_at(2.0), 1.0);
    }

    #[test]
    fn multipliers_compose() {
        let c = ClusterConfig {
            perf_events: perf_event_fixture(),
            ..Default::default()
        };
        fn perf_event_fixture() -> Vec<PerfEvent> {
            vec![
                PerfEvent {
                    server: 0,
                    start_secs: 0.0,
                    end_secs: 10.0,
                    multiplier: 0.5,
                },
                PerfEvent {
                    server: 0,
                    start_secs: 5.0,
                    end_secs: 10.0,
                    multiplier: 0.5,
                },
                PerfEvent {
                    server: 1,
                    start_secs: 0.0,
                    end_secs: 10.0,
                    multiplier: 2.0,
                },
            ]
        }
        assert_eq!(c.rate_multiplier(0, 1.0), 0.5);
        assert_eq!(c.rate_multiplier(0, 6.0), 0.25);
        assert_eq!(c.rate_multiplier(1, 6.0), 2.0);
        assert_eq!(c.rate_multiplier(2, 6.0), 1.0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = ClusterConfig {
            servers: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.perf_events.push(PerfEvent {
            server: 1000,
            start_secs: 0.0,
            end_secs: 1.0,
            multiplier: 0.5,
        });
        assert!(c.validate().unwrap_err().contains("nonexistent"));

        let mut s = SimulationConfig::new(PolicyKind::Fcfs, 10.0);
        s.warmup_secs = 20.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn nominal_service_time() {
        let c = ClusterConfig::default();
        let t = c.nominal_service_secs(1_000_000);
        assert!((t - (5e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let s = SimulationConfig::new(PolicyKind::das(), 5.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: SimulationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
