//! Cluster and simulation configuration.

use serde::{Deserialize, Serialize};

use das_net::faults::LinkFaults;
use das_net::latency::NetworkConfig;
use das_sched::policy::PolicyKind;
use das_sim::fault::FaultSchedule;
use das_sim::time::SimDuration;
use das_trace::TraceConfig;

use crate::partition::PartitionerConfig;

fn default_coordinators() -> u32 {
    1
}

/// A structured validation failure. Every invariant the configuration can
/// break has its own variant, so callers can match on the cause instead of
/// scraping strings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `servers` was zero.
    ZeroServers,
    /// `workers_per_server` was zero.
    ZeroWorkers,
    /// `base_rate_bytes_per_sec` was not finite and positive.
    NonPositiveBaseRate,
    /// `replication` was zero.
    ZeroReplication,
    /// `coordinators` was zero.
    ZeroCoordinators,
    /// `hint_loss` fell outside `[0, 1]`.
    HintLossOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// `estimate_noise` was negative or non-finite.
    NegativeEstimateNoise {
        /// The offending value.
        value: f64,
    },
    /// A perf event targeted a server index outside the cluster.
    PerfEventUnknownServer {
        /// The offending server index.
        server: u32,
    },
    /// A perf event's multiplier was not finite and positive.
    PerfEventNonPositiveMultiplier {
        /// The offending multiplier.
        multiplier: f64,
    },
    /// A perf event ended before it started.
    PerfEventEndsBeforeStart {
        /// The server it targeted.
        server: u32,
    },
    /// `horizon_secs` was not finite and positive.
    NonPositiveHorizon {
        /// The offending value.
        value: f64,
    },
    /// `warmup_secs` fell outside `[0, horizon)`.
    WarmupOutsideHorizon {
        /// The configured warmup.
        warmup_secs: f64,
        /// The configured horizon.
        horizon_secs: f64,
    },
    /// A crash window was malformed (unknown server, negative start, or
    /// recovery at or before the crash instant).
    CrashWindowInvalid {
        /// The server the window targeted.
        server: u32,
    },
    /// Two crash windows on the same server overlap in time: the engine
    /// books one crash/recover transition pair per window, so a recovery
    /// from the first window would revive a server the second still holds
    /// down.
    CrashWindowsOverlap {
        /// The server with overlapping windows.
        server: u32,
    },
    /// A link-fault knob was out of range.
    LinkFaultInvalid {
        /// Which direction (`"request"` or `"response"`).
        direction: &'static str,
        /// What was wrong.
        reason: &'static str,
    },
    /// Message loss was configured without retries: a lost op would hang
    /// its request forever.
    LossWithoutRetry,
    /// The per-op deadline was negative or non-finite.
    InvalidDeadline {
        /// The offending value.
        value: f64,
    },
    /// Retries were enabled with a zero attempt budget.
    ZeroRetryAttempts,
    /// The retry backoff base was not finite and positive.
    NonPositiveBackoffBase {
        /// The offending value.
        value: f64,
    },
    /// The retry backoff multiplier was below one.
    BackoffMultiplierBelowOne {
        /// The offending value.
        value: f64,
    },
    /// The retry jitter fraction fell outside `[0, 1]`.
    JitterOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// The hedge quantile fell outside `(0, 1)`.
    HedgeQuantileOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// The hedge delay floor was negative or non-finite.
    NegativeHedgeDelayFloor {
        /// The offending value.
        value: f64,
    },
    /// The hedge warmup sample count was too small for the streaming
    /// quantile estimator.
    HedgeMinSamplesTooSmall {
        /// The offending value.
        value: u64,
    },
    /// The trace sampling rate fell outside `(0, 1]`.
    TraceSampleOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// Tracing was enabled with a zero-capacity ring buffer.
    ZeroTraceCapacity,
    /// The admission deadline was negative or non-finite.
    InvalidAdmissionDeadline {
        /// The offending value.
        value: f64,
    },
    /// Admission was enabled with a zero-capacity server queue: every op
    /// would be shed on arrival and no request could ever complete.
    ZeroQueueCapacity,
    /// The admission write penalty was below one (writes may never be
    /// *cheaper* to admit than the bytes they carry).
    WritePenaltyBelowOne {
        /// The offending value.
        value: f64,
    },
    /// The backpressure token rate was negative or non-finite.
    InvalidTokenRate {
        /// The offending value.
        value: f64,
    },
    /// The backpressure token burst was below one: no retry or hedge could
    /// ever be granted.
    TokenBurstBelowOne {
        /// The offending value.
        value: f64,
    },
    /// The per-attempt retry budget exceeds the request admission deadline:
    /// every retried attempt would outlive the request it serves.
    BudgetExceedsDeadline {
        /// The per-attempt retry deadline, seconds.
        budget_secs: f64,
        /// The request admission deadline, seconds.
        deadline_secs: f64,
    },
    /// The batch-coalescing bounds were inconsistent.
    BatchBoundsInconsistent {
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroServers => write!(f, "servers must be >= 1"),
            ConfigError::ZeroWorkers => write!(f, "workers_per_server must be >= 1"),
            ConfigError::NonPositiveBaseRate => {
                write!(f, "base_rate_bytes_per_sec must be positive")
            }
            ConfigError::ZeroReplication => write!(f, "replication must be >= 1"),
            ConfigError::ZeroCoordinators => write!(f, "coordinators must be >= 1"),
            ConfigError::HintLossOutOfRange { value } => {
                write!(f, "hint_loss must be in [0, 1], got {value}")
            }
            ConfigError::NegativeEstimateNoise { value } => {
                write!(f, "estimate_noise must be >= 0, got {value}")
            }
            ConfigError::PerfEventUnknownServer { server } => {
                write!(f, "perf event for nonexistent server {server}")
            }
            ConfigError::PerfEventNonPositiveMultiplier { multiplier } => {
                write!(f, "perf multiplier must be positive, got {multiplier}")
            }
            ConfigError::PerfEventEndsBeforeStart { server } => {
                write!(f, "perf event for server {server} ends before it starts")
            }
            ConfigError::NonPositiveHorizon { value } => {
                write!(f, "horizon must be positive, got {value}")
            }
            ConfigError::WarmupOutsideHorizon {
                warmup_secs,
                horizon_secs,
            } => write!(
                f,
                "warmup must be in [0, horizon): {warmup_secs} vs horizon {horizon_secs}"
            ),
            ConfigError::CrashWindowInvalid { server } => {
                write!(f, "malformed crash window for server {server}")
            }
            ConfigError::CrashWindowsOverlap { server } => {
                write!(f, "overlapping crash windows for server {server}")
            }
            ConfigError::LinkFaultInvalid { direction, reason } => {
                write!(f, "{direction} link faults: {reason}")
            }
            ConfigError::LossWithoutRetry => write!(
                f,
                "message loss requires retries (a lost op would hang its request): \
                 set faults.retry.deadline_secs > 0"
            ),
            ConfigError::InvalidDeadline { value } => {
                write!(
                    f,
                    "retry deadline_secs must be finite and >= 0, got {value}"
                )
            }
            ConfigError::ZeroRetryAttempts => {
                write!(
                    f,
                    "retry max_attempts must be >= 1 when retries are enabled"
                )
            }
            ConfigError::NonPositiveBackoffBase { value } => {
                write!(f, "retry backoff_base_secs must be positive, got {value}")
            }
            ConfigError::BackoffMultiplierBelowOne { value } => {
                write!(f, "retry backoff_multiplier must be >= 1, got {value}")
            }
            ConfigError::JitterOutOfRange { value } => {
                write!(f, "retry jitter must be in [0, 1], got {value}")
            }
            ConfigError::HedgeQuantileOutOfRange { value } => {
                write!(f, "hedge quantile must be in (0, 1), got {value}")
            }
            ConfigError::NegativeHedgeDelayFloor { value } => {
                write!(
                    f,
                    "hedge min_delay_secs must be finite and >= 0, got {value}"
                )
            }
            ConfigError::HedgeMinSamplesTooSmall { value } => {
                write!(f, "hedge min_samples must be >= 5, got {value}")
            }
            ConfigError::TraceSampleOutOfRange { value } => {
                write!(f, "trace sample must be in (0, 1], got {value}")
            }
            ConfigError::ZeroTraceCapacity => {
                write!(f, "trace capacity must be >= 1 when tracing is enabled")
            }
            ConfigError::InvalidAdmissionDeadline { value } => {
                write!(
                    f,
                    "admission deadline_secs must be finite and >= 0, got {value}"
                )
            }
            ConfigError::ZeroQueueCapacity => {
                write!(
                    f,
                    "admission queue_capacity must be >= 1 when admission is enabled"
                )
            }
            ConfigError::WritePenaltyBelowOne { value } => {
                write!(f, "admission write_penalty must be >= 1, got {value}")
            }
            ConfigError::InvalidTokenRate { value } => {
                write!(
                    f,
                    "backpressure tokens_per_sec must be finite and >= 0, got {value}"
                )
            }
            ConfigError::TokenBurstBelowOne { value } => {
                write!(f, "backpressure burst must be >= 1, got {value}")
            }
            ConfigError::BudgetExceedsDeadline {
                budget_secs,
                deadline_secs,
            } => write!(
                f,
                "retry deadline_secs {budget_secs} exceeds the admission deadline \
                 {deadline_secs}: every retried attempt would outlive its request"
            ),
            ConfigError::BatchBoundsInconsistent { reason } => {
                write!(f, "batch coalescing bounds: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A scheduled change to one server's performance — the substrate for the
/// time-varying-server-performance experiments (Fig. 12) and, with
/// near-zero multipliers, for gray failures (Fig. 23).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfEvent {
    /// Affected server index.
    pub server: u32,
    /// When the change takes effect, seconds.
    pub start_secs: f64,
    /// When the server recovers, seconds (`f64::INFINITY` = never).
    pub end_secs: f64,
    /// Service-rate multiplier during the window (0.25 = 4× slower).
    pub multiplier: f64,
}

impl PerfEvent {
    /// The multiplier in effect for this event at time `t` (1.0 outside
    /// the window).
    pub fn multiplier_at(&self, t_secs: f64) -> f64 {
        if t_secs >= self.start_secs && t_secs < self.end_secs {
            self.multiplier
        } else {
            1.0
        }
    }
}

fn default_retry_attempts() -> u32 {
    3
}

fn default_backoff_base() -> f64 {
    5e-4
}

fn default_backoff_multiplier() -> f64 {
    2.0
}

/// Per-op timeout and retry policy at the coordinator.
///
/// Disabled by default (`deadline_secs == 0`): no timeout events are ever
/// scheduled and fault-free runs are bit-identical to builds without this
/// machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Per-attempt deadline, seconds; `0` disables timeouts and retries.
    #[serde(default)]
    pub deadline_secs: f64,
    /// Total attempts per op, including the first (>= 1 when enabled).
    #[serde(default = "default_retry_attempts")]
    pub max_attempts: u32,
    /// Backoff before the second attempt, seconds.
    #[serde(default = "default_backoff_base")]
    pub backoff_base_secs: f64,
    /// Backoff growth factor per further attempt (exponential backoff).
    #[serde(default = "default_backoff_multiplier")]
    pub backoff_multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by
    /// `1 + jitter * U(0, 1)` to decorrelate retry storms.
    #[serde(default)]
    pub jitter: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            deadline_secs: 0.0,
            max_attempts: default_retry_attempts(),
            backoff_base_secs: default_backoff_base(),
            backoff_multiplier: default_backoff_multiplier(),
            jitter: 0.0,
        }
    }
}

impl RetryConfig {
    /// True when per-op deadlines (and thus retries) are in effect.
    pub fn enabled(&self) -> bool {
        self.deadline_secs > 0.0
    }

    /// The backoff before attempt `attempt` (2-based: the first retry is
    /// attempt 2), without jitter.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(2);
        self.backoff_base_secs * self.backoff_multiplier.powi(exp as i32)
    }
}

fn default_hedge_min_delay() -> f64 {
    5e-4
}

fn default_hedge_min_samples() -> u64 {
    100
}

/// Hedged-read policy: after a delay set by an online latency quantile,
/// read-only ops still outstanding are speculatively duplicated to their
/// least-loaded other replica. Disabled by default (`quantile == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeConfig {
    /// The op-latency quantile that arms the hedge timer (e.g. `0.95`);
    /// `0` disables hedging.
    #[serde(default)]
    pub quantile: f64,
    /// Floor on the hedge delay, seconds (guards against hedging storms
    /// while the quantile estimate is still tiny).
    #[serde(default = "default_hedge_min_delay")]
    pub min_delay_secs: f64,
    /// Completed-attempt samples required before hedging arms.
    #[serde(default = "default_hedge_min_samples")]
    pub min_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            quantile: 0.0,
            min_delay_secs: default_hedge_min_delay(),
            min_samples: default_hedge_min_samples(),
        }
    }
}

impl HedgeConfig {
    /// True when hedged reads are in effect.
    pub fn enabled(&self) -> bool {
        self.quantile > 0.0
    }
}

/// The complete fault model of one run: crash-stop schedule, per-message
/// link faults in each direction, and the coordinator's recovery policy.
/// Everything defaults to "off"; a default profile injects nothing,
/// schedules nothing, and draws no randomness.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Crash-stop windows per server.
    #[serde(default)]
    pub crashes: FaultSchedule,
    /// Faults on coordinator→server op-request messages.
    #[serde(default)]
    pub request_faults: LinkFaults,
    /// Faults on server→coordinator op-response messages.
    #[serde(default)]
    pub response_faults: LinkFaults,
    /// Per-op deadline / retry policy.
    #[serde(default)]
    pub retry: RetryConfig,
    /// Hedged-read policy.
    #[serde(default)]
    pub hedge: HedgeConfig,
}

impl FaultProfile {
    /// A profile that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when any part of the fault machinery is switched on.
    pub fn is_active(&self) -> bool {
        self.crashes.is_active()
            || self.request_faults.is_active()
            || self.response_faults.is_active()
            || self.retry.enabled()
            || self.hedge.enabled()
    }

    /// Validates the profile against a cluster of `servers` servers.
    pub fn validate(&self, servers: u32) -> Result<(), ConfigError> {
        if let Some(w) = self.crashes.first_invalid(servers) {
            return Err(ConfigError::CrashWindowInvalid { server: w.server });
        }
        if let Some(server) = self.crashes.first_overlap() {
            return Err(ConfigError::CrashWindowsOverlap { server });
        }
        if let Some(reason) = self.request_faults.first_invalid() {
            return Err(ConfigError::LinkFaultInvalid {
                direction: "request",
                reason,
            });
        }
        if let Some(reason) = self.response_faults.first_invalid() {
            return Err(ConfigError::LinkFaultInvalid {
                direction: "response",
                reason,
            });
        }
        let r = &self.retry;
        if !(r.deadline_secs.is_finite() && r.deadline_secs >= 0.0) {
            return Err(ConfigError::InvalidDeadline {
                value: r.deadline_secs,
            });
        }
        if r.enabled() {
            if r.max_attempts == 0 {
                return Err(ConfigError::ZeroRetryAttempts);
            }
            if !(r.backoff_base_secs.is_finite() && r.backoff_base_secs > 0.0) {
                return Err(ConfigError::NonPositiveBackoffBase {
                    value: r.backoff_base_secs,
                });
            }
            if !(r.backoff_multiplier.is_finite() && r.backoff_multiplier >= 1.0) {
                return Err(ConfigError::BackoffMultiplierBelowOne {
                    value: r.backoff_multiplier,
                });
            }
            if !(0.0..=1.0).contains(&r.jitter) {
                return Err(ConfigError::JitterOutOfRange { value: r.jitter });
            }
        }
        let h = &self.hedge;
        if h.enabled() {
            if !(h.quantile > 0.0 && h.quantile < 1.0) {
                return Err(ConfigError::HedgeQuantileOutOfRange { value: h.quantile });
            }
            if !(h.min_delay_secs.is_finite() && h.min_delay_secs >= 0.0) {
                return Err(ConfigError::NegativeHedgeDelayFloor {
                    value: h.min_delay_secs,
                });
            }
            if h.min_samples < 5 {
                return Err(ConfigError::HedgeMinSamplesTooSmall {
                    value: h.min_samples,
                });
            }
        }
        let lossy = self.request_faults.loss > 0.0 || self.response_faults.loss > 0.0;
        if lossy && !r.enabled() {
            return Err(ConfigError::LossWithoutRetry);
        }
        Ok(())
    }
}

fn default_queue_capacity() -> u32 {
    1024
}

fn default_write_penalty() -> f64 {
    1.0
}

/// Deadline- and size-aware admission control: a request-level completion
/// deadline at the coordinator plus bounded per-server queues.
///
/// Disabled by default (`deadline_secs == 0`): no request is ever shed and
/// queues stay unbounded, keeping every default-config run bit-identical to
/// builds without the overload layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Request-level completion deadline, seconds; `0` disables admission
    /// control (and queue bounding) entirely.
    #[serde(default)]
    pub deadline_secs: f64,
    /// Bounded per-server queue capacity, in queued ops. Arrivals beyond
    /// it shed their whole request (>= 1 when admission is enabled).
    #[serde(default = "default_queue_capacity")]
    pub queue_capacity: u32,
    /// Multiplier on written bytes when estimating a request's cost at
    /// admission (>= 1). Values above one make large writes look more
    /// expensive than same-size reads, so under pressure they are shed
    /// first — "reject cheapest to lose".
    #[serde(default = "default_write_penalty")]
    pub write_penalty: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            deadline_secs: 0.0,
            queue_capacity: default_queue_capacity(),
            write_penalty: default_write_penalty(),
        }
    }
}

impl AdmissionConfig {
    /// True when deadline-aware admission (and queue bounding) is in effect.
    pub fn enabled(&self) -> bool {
        self.deadline_secs > 0.0
    }
}

fn default_token_burst() -> f64 {
    16.0
}

/// Coordinator backpressure: a token bucket shared by retries and hedges,
/// so the recovery layer cannot retry-storm a saturated cluster.
///
/// Disabled by default (`tokens_per_sec == 0`): retries and hedges are
/// never denied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackpressureConfig {
    /// Token refill rate, tokens/second; `0` disables the budget. Each
    /// retry or hedge dispatch consumes one token.
    #[serde(default)]
    pub tokens_per_sec: f64,
    /// Bucket capacity (>= 1 when enabled): the largest retry/hedge burst
    /// the coordinator may emit back-to-back.
    #[serde(default = "default_token_burst")]
    pub burst: f64,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            tokens_per_sec: 0.0,
            burst: default_token_burst(),
        }
    }
}

impl BackpressureConfig {
    /// True when the retry/hedge token budget is in effect.
    pub fn enabled(&self) -> bool {
        self.tokens_per_sec > 0.0
    }
}

fn default_tiny_op_bytes() -> u64 {
    4096
}

fn default_batch_overhead_fraction() -> f64 {
    0.2
}

/// Value-size-aware batch coalescing: when a worker frees up, tiny queued
/// ops are coalesced into one server visit, amortizing the fixed per-op
/// overhead across the batch.
///
/// Disabled by default (`max_ops <= 1`): every op is its own server visit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Largest number of ops coalesced into one visit; `0` or `1`
    /// disables batching.
    #[serde(default)]
    pub max_ops: u32,
    /// Only ops of at most this many service bytes are batchable
    /// (> 0 when batching is enabled).
    #[serde(default = "default_tiny_op_bytes")]
    pub tiny_op_bytes: u64,
    /// Fraction of the fixed per-op overhead each batch *follower* still
    /// pays, in `(0, 1]`. Strictly positive so follower completions keep
    /// strictly increasing timestamps (the engine's completion identity).
    #[serde(default = "default_batch_overhead_fraction")]
    pub overhead_fraction: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_ops: 0,
            tiny_op_bytes: default_tiny_op_bytes(),
            overhead_fraction: default_batch_overhead_fraction(),
        }
    }
}

impl BatchConfig {
    /// True when batch coalescing is in effect.
    pub fn enabled(&self) -> bool {
        self.max_ops > 1
    }
}

/// The complete overload-control model of one run: deadline-aware
/// admission with bounded queues, a retry/hedge token budget, and tiny-op
/// batch coalescing. Everything defaults to "off"; a default profile sheds
/// nothing, denies nothing, batches nothing, and draws no randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverloadProfile {
    /// Deadline-aware admission and bounded per-server queues.
    #[serde(default)]
    pub admission: AdmissionConfig,
    /// Retry/hedge token-bucket budget.
    #[serde(default)]
    pub backpressure: BackpressureConfig,
    /// Tiny-op batch coalescing.
    #[serde(default)]
    pub batch: BatchConfig,
}

impl OverloadProfile {
    /// A profile with every overload knob off.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when any part of the overload machinery is switched on.
    pub fn is_active(&self) -> bool {
        self.admission.enabled() || self.backpressure.enabled() || self.batch.enabled()
    }

    /// Validates the profile. `retry_deadline_secs` is the fault layer's
    /// per-attempt retry deadline (`0` = retries off), cross-checked so a
    /// retry budget can never exceed the request admission deadline.
    pub fn validate(&self, retry_deadline_secs: f64) -> Result<(), ConfigError> {
        let a = &self.admission;
        if !(a.deadline_secs.is_finite() && a.deadline_secs >= 0.0) {
            return Err(ConfigError::InvalidAdmissionDeadline {
                value: a.deadline_secs,
            });
        }
        if a.enabled() {
            if a.queue_capacity == 0 {
                return Err(ConfigError::ZeroQueueCapacity);
            }
            if !(a.write_penalty.is_finite() && a.write_penalty >= 1.0) {
                return Err(ConfigError::WritePenaltyBelowOne {
                    value: a.write_penalty,
                });
            }
            if retry_deadline_secs > a.deadline_secs {
                return Err(ConfigError::BudgetExceedsDeadline {
                    budget_secs: retry_deadline_secs,
                    deadline_secs: a.deadline_secs,
                });
            }
        }
        let b = &self.backpressure;
        if !(b.tokens_per_sec.is_finite() && b.tokens_per_sec >= 0.0) {
            return Err(ConfigError::InvalidTokenRate {
                value: b.tokens_per_sec,
            });
        }
        if b.enabled() && !(b.burst.is_finite() && b.burst >= 1.0) {
            return Err(ConfigError::TokenBurstBelowOne { value: b.burst });
        }
        let c = &self.batch;
        if c.enabled() {
            if c.tiny_op_bytes == 0 {
                return Err(ConfigError::BatchBoundsInconsistent {
                    reason: "tiny_op_bytes must be >= 1 when batching is enabled",
                });
            }
            if !(c.overhead_fraction.is_finite()
                && c.overhead_fraction > 0.0
                && c.overhead_fraction <= 1.0)
            {
                return Err(ConfigError::BatchBoundsInconsistent {
                    reason: "overhead_fraction must be in (0, 1]",
                });
            }
        }
        Ok(())
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers.
    pub servers: u32,
    /// Concurrent workers (service slots) per server.
    pub workers_per_server: u32,
    /// Nominal service rate, bytes/second (e.g. `1e9` ≈ memcached-class).
    pub base_rate_bytes_per_sec: f64,
    /// Fixed per-operation service overhead (parsing, lookup, framing).
    pub per_op_overhead: SimDuration,
    /// Network model between coordinator and servers.
    pub network: NetworkConfig,
    /// Key→server placement.
    pub partitioner: PartitionerConfig,
    /// Replication factor (1 = no replication). Reads go to the replica
    /// with the lowest estimated completion time.
    pub replication: u32,
    /// Number of independent client coordinators. Requests are spread
    /// round-robin across them; each maintains its *own* piggyback-fed
    /// estimates and only sees its own responses, so higher counts mean
    /// staler, more fragmented information — the realistic stress test of
    /// the "distributed" claim.
    #[serde(default = "default_coordinators")]
    pub coordinators: u32,
    /// Probability that a progress-hint message is lost in flight
    /// (hints are fire-and-forget; DAS must tolerate losing them).
    #[serde(default)]
    pub hint_loss: f64,
    /// Scheduled server slowdowns/speedups.
    pub perf_events: Vec<PerfEvent>,
    /// Relative standard deviation of the coordinator's service-time
    /// estimates (0 = perfect size knowledge).
    pub estimate_noise: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 100,
            workers_per_server: 1,
            base_rate_bytes_per_sec: 1e9,
            per_op_overhead: SimDuration::from_micros(5),
            network: NetworkConfig::default(),
            partitioner: PartitionerConfig::default(),
            replication: 1,
            coordinators: 1,
            hint_loss: 0.0,
            perf_events: Vec::new(),
            estimate_noise: 0.0,
        }
    }
}

impl ClusterConfig {
    /// Effective rate multiplier for `server` at `t_secs`, combining all
    /// overlapping events multiplicatively.
    pub fn rate_multiplier(&self, server: u32, t_secs: f64) -> f64 {
        self.perf_events
            .iter()
            .filter(|e| e.server == server)
            .map(|e| e.multiplier_at(t_secs))
            .product()
    }

    /// Mean service time for an op of `bytes` at nominal rate.
    pub fn nominal_service_secs(&self, bytes: u64) -> f64 {
        self.per_op_overhead.as_secs_f64() + bytes as f64 / self.base_rate_bytes_per_sec
    }

    /// Validates invariants, returning the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.servers == 0 {
            return Err(ConfigError::ZeroServers);
        }
        if self.workers_per_server == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if !(self.base_rate_bytes_per_sec.is_finite() && self.base_rate_bytes_per_sec > 0.0) {
            return Err(ConfigError::NonPositiveBaseRate);
        }
        if self.replication == 0 {
            return Err(ConfigError::ZeroReplication);
        }
        if self.coordinators == 0 {
            return Err(ConfigError::ZeroCoordinators);
        }
        if !(0.0..=1.0).contains(&self.hint_loss) {
            return Err(ConfigError::HintLossOutOfRange {
                value: self.hint_loss,
            });
        }
        if !(self.estimate_noise.is_finite() && self.estimate_noise >= 0.0) {
            return Err(ConfigError::NegativeEstimateNoise {
                value: self.estimate_noise,
            });
        }
        for e in &self.perf_events {
            if e.server >= self.servers {
                return Err(ConfigError::PerfEventUnknownServer { server: e.server });
            }
            if !(e.multiplier.is_finite() && e.multiplier > 0.0) {
                return Err(ConfigError::PerfEventNonPositiveMultiplier {
                    multiplier: e.multiplier,
                });
            }
            if e.end_secs < e.start_secs {
                return Err(ConfigError::PerfEventEndsBeforeStart { server: e.server });
            }
        }
        Ok(())
    }
}

/// Everything one simulation run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// The cluster under test.
    pub cluster: ClusterConfig,
    /// The scheduling policy deployed on every server.
    pub policy: PolicyKind,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
    /// Simulated run length, seconds.
    pub horizon_secs: f64,
    /// Requests arriving before this instant are excluded from statistics.
    pub warmup_secs: f64,
    /// Bin width for the RCT-over-time series, seconds (`None` = skip).
    pub rct_timeseries_bin_secs: Option<f64>,
    /// Fault injection and recovery policy (defaults to none).
    #[serde(default)]
    pub faults: FaultProfile,
    /// Structured event tracing (defaults to off; off keeps every result
    /// bit-identical to a build without the trace layer).
    #[serde(default)]
    pub trace: TraceConfig,
    /// Overload control: admission, backpressure, batching (defaults to
    /// off; off keeps every result bit-identical to a build without the
    /// overload layer).
    #[serde(default)]
    pub overload: OverloadProfile,
}

impl SimulationConfig {
    /// A run of `horizon_secs` with the given policy on a default cluster.
    pub fn new(policy: PolicyKind, horizon_secs: f64) -> Self {
        SimulationConfig {
            cluster: ClusterConfig::default(),
            policy,
            seed: 1,
            horizon_secs,
            warmup_secs: (horizon_secs * 0.1).min(2.0),
            rct_timeseries_bin_secs: None,
            faults: FaultProfile::none(),
            trace: TraceConfig::default(),
            overload: OverloadProfile::none(),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cluster.validate()?;
        self.faults.validate(self.cluster.servers)?;
        self.overload.validate(self.faults.retry.deadline_secs)?;
        if !(self.horizon_secs.is_finite() && self.horizon_secs > 0.0) {
            return Err(ConfigError::NonPositiveHorizon {
                value: self.horizon_secs,
            });
        }
        if self.warmup_secs < 0.0 || self.warmup_secs >= self.horizon_secs {
            return Err(ConfigError::WarmupOutsideHorizon {
                warmup_secs: self.warmup_secs,
                horizon_secs: self.horizon_secs,
            });
        }
        if self.trace.enabled {
            if !(self.trace.sample.is_finite()
                && self.trace.sample > 0.0
                && self.trace.sample <= 1.0)
            {
                return Err(ConfigError::TraceSampleOutOfRange {
                    value: self.trace.sample,
                });
            }
            if self.trace.capacity == 0 {
                return Err(ConfigError::ZeroTraceCapacity);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sim::fault::CrashWindow;

    #[test]
    fn default_is_valid() {
        assert_eq!(ClusterConfig::default().validate(), Ok(()));
        assert_eq!(
            SimulationConfig::new(PolicyKind::Fcfs, 10.0).validate(),
            Ok(())
        );
    }

    #[test]
    fn perf_event_windows() {
        let e = PerfEvent {
            server: 3,
            start_secs: 1.0,
            end_secs: 2.0,
            multiplier: 0.25,
        };
        assert_eq!(e.multiplier_at(0.5), 1.0);
        assert_eq!(e.multiplier_at(1.0), 0.25);
        assert_eq!(e.multiplier_at(1.999), 0.25);
        assert_eq!(e.multiplier_at(2.0), 1.0);
    }

    #[test]
    fn multipliers_compose() {
        let c = ClusterConfig {
            perf_events: perf_event_fixture(),
            ..Default::default()
        };
        fn perf_event_fixture() -> Vec<PerfEvent> {
            vec![
                PerfEvent {
                    server: 0,
                    start_secs: 0.0,
                    end_secs: 10.0,
                    multiplier: 0.5,
                },
                PerfEvent {
                    server: 0,
                    start_secs: 5.0,
                    end_secs: 10.0,
                    multiplier: 0.5,
                },
                PerfEvent {
                    server: 1,
                    start_secs: 0.0,
                    end_secs: 10.0,
                    multiplier: 2.0,
                },
            ]
        }
        assert_eq!(c.rate_multiplier(0, 1.0), 0.5);
        assert_eq!(c.rate_multiplier(0, 6.0), 0.25);
        assert_eq!(c.rate_multiplier(1, 6.0), 2.0);
        assert_eq!(c.rate_multiplier(2, 6.0), 1.0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = ClusterConfig {
            servers: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroServers));

        let mut c = ClusterConfig::default();
        c.perf_events.push(PerfEvent {
            server: 1000,
            start_secs: 0.0,
            end_secs: 1.0,
            multiplier: 0.5,
        });
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::PerfEventUnknownServer { server: 1000 });
        assert!(err.to_string().contains("nonexistent"));

        let mut s = SimulationConfig::new(PolicyKind::Fcfs, 10.0);
        s.warmup_secs = 20.0;
        assert!(matches!(
            s.validate(),
            Err(ConfigError::WarmupOutsideHorizon { .. })
        ));
    }

    #[test]
    fn config_error_implements_error() {
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroServers);
        assert!(err.to_string().contains("servers"));
    }

    #[test]
    fn nominal_service_time() {
        let c = ClusterConfig::default();
        let t = c.nominal_service_secs(1_000_000);
        assert!((t - (5e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = SimulationConfig::new(PolicyKind::das(), 5.0);
        s.faults.crashes.crashes.push(CrashWindow {
            server: 1,
            down_secs: 1.0,
            up_secs: 2.0,
        });
        s.faults.retry.deadline_secs = 0.05;
        s.faults.hedge.quantile = 0.95;
        s.overload.admission.deadline_secs = 0.08;
        s.overload.backpressure.tokens_per_sec = 50.0;
        s.overload.batch.max_ops = 4;
        let json = serde_json::to_string(&s).unwrap();
        let back: SimulationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn faults_field_defaults_when_missing() {
        // Configs written before the fault layer still deserialize.
        let s = SimulationConfig::new(PolicyKind::Fcfs, 5.0);
        let json = serde_json::to_string(&s).unwrap();
        let stripped = json.replace(
            &format!(",\"faults\":{}", serde_json::to_string(&s.faults).unwrap()),
            "",
        );
        assert_ne!(json, stripped, "faults field expected in serialized form");
        let back: SimulationConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.faults, FaultProfile::none());
        assert!(!back.faults.is_active());
    }

    #[test]
    fn trace_field_defaults_when_missing() {
        // Configs written before the trace layer still deserialize.
        let s = SimulationConfig::new(PolicyKind::Fcfs, 5.0);
        let json = serde_json::to_string(&s).unwrap();
        let stripped = json.replace(
            &format!(",\"trace\":{}", serde_json::to_string(&s.trace).unwrap()),
            "",
        );
        assert_ne!(json, stripped, "trace field expected in serialized form");
        let back: SimulationConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.trace, TraceConfig::default());
        assert!(!back.trace.enabled);
    }

    #[test]
    fn trace_validation() {
        let mut s = SimulationConfig::new(PolicyKind::Fcfs, 5.0);
        s.trace = TraceConfig::enabled();
        assert_eq!(s.validate(), Ok(()));
        s.trace.sample = 0.0;
        assert!(matches!(
            s.validate(),
            Err(ConfigError::TraceSampleOutOfRange { .. })
        ));
        s.trace.sample = 1.5;
        assert!(matches!(
            s.validate(),
            Err(ConfigError::TraceSampleOutOfRange { .. })
        ));
        s.trace.sample = 0.5;
        s.trace.capacity = 0;
        assert_eq!(s.validate(), Err(ConfigError::ZeroTraceCapacity));
        // Disabled tracing skips the knob checks entirely.
        s.trace.enabled = false;
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn fault_profile_validation() {
        let mut p = FaultProfile::none();
        assert_eq!(p.validate(4), Ok(()));
        assert!(!p.is_active());

        // Crash window for a server outside the cluster.
        p.crashes.crashes.push(CrashWindow {
            server: 9,
            down_secs: 0.0,
            up_secs: 1.0,
        });
        assert_eq!(
            p.validate(4),
            Err(ConfigError::CrashWindowInvalid { server: 9 })
        );
        p.crashes.crashes.clear();

        // Loss without retries must be rejected in either direction.
        p.request_faults.loss = 0.01;
        assert_eq!(p.validate(4), Err(ConfigError::LossWithoutRetry));
        p.request_faults.loss = 0.0;
        p.response_faults.loss = 0.01;
        assert_eq!(p.validate(4), Err(ConfigError::LossWithoutRetry));
        p.retry.deadline_secs = 0.05;
        assert_eq!(p.validate(4), Ok(()));
        assert!(p.is_active());

        // Out-of-range link probability.
        p.request_faults.duplication = 1.5;
        assert!(matches!(
            p.validate(4),
            Err(ConfigError::LinkFaultInvalid {
                direction: "request",
                ..
            })
        ));
        p.request_faults.duplication = 0.0;

        // Bad retry knobs.
        p.retry.max_attempts = 0;
        assert_eq!(p.validate(4), Err(ConfigError::ZeroRetryAttempts));
        p.retry.max_attempts = 3;
        p.retry.backoff_base_secs = 0.0;
        assert!(matches!(
            p.validate(4),
            Err(ConfigError::NonPositiveBackoffBase { .. })
        ));
        p.retry.backoff_base_secs = 1e-3;
        p.retry.backoff_multiplier = 0.5;
        assert!(matches!(
            p.validate(4),
            Err(ConfigError::BackoffMultiplierBelowOne { .. })
        ));
        p.retry.backoff_multiplier = 2.0;
        p.retry.jitter = 1.5;
        assert!(matches!(
            p.validate(4),
            Err(ConfigError::JitterOutOfRange { .. })
        ));
        p.retry.jitter = 0.3;

        // Bad hedge knobs.
        p.hedge.quantile = 1.0;
        assert!(matches!(
            p.validate(4),
            Err(ConfigError::HedgeQuantileOutOfRange { .. })
        ));
        p.hedge.quantile = 0.95;
        p.hedge.min_samples = 2;
        assert!(matches!(
            p.validate(4),
            Err(ConfigError::HedgeMinSamplesTooSmall { .. })
        ));
        p.hedge.min_samples = 100;
        assert_eq!(p.validate(4), Ok(()));
    }

    #[test]
    fn overlapping_crash_windows_rejected() {
        let mut p = FaultProfile::none();
        p.crashes.crashes.push(CrashWindow {
            server: 2,
            down_secs: 1.0,
            up_secs: 3.0,
        });
        p.crashes.crashes.push(CrashWindow {
            server: 2,
            down_secs: 2.0,
            up_secs: 4.0,
        });
        let err = p.validate(4).unwrap_err();
        assert_eq!(err, ConfigError::CrashWindowsOverlap { server: 2 });
        assert!(err.to_string().contains("overlapping"));

        // Back-to-back windows on one server are fine ([down, up) is
        // half-open), as are identical windows on different servers.
        p.crashes.crashes[1].down_secs = 3.0;
        assert_eq!(p.validate(4), Ok(()));
        p.crashes.crashes[1].server = 3;
        p.crashes.crashes[1].down_secs = 1.0;
        assert_eq!(p.validate(4), Ok(()));
    }

    #[test]
    fn recovery_before_crash_rejected() {
        let mut p = FaultProfile::none();
        p.crashes.crashes.push(CrashWindow {
            server: 1,
            down_secs: 2.0,
            up_secs: 1.0,
        });
        assert_eq!(
            p.validate(4),
            Err(ConfigError::CrashWindowInvalid { server: 1 })
        );
        // Recovery *at* the crash instant is an empty window — same error.
        p.crashes.crashes[0].up_secs = 2.0;
        assert_eq!(
            p.validate(4),
            Err(ConfigError::CrashWindowInvalid { server: 1 })
        );
    }

    #[test]
    fn link_probabilities_outside_unit_interval_rejected() {
        // Each probability knob, in each direction, above 1 and below 0.
        for bad in [1.5, -0.1] {
            for knob in 0..3 {
                for direction in ["request", "response"] {
                    let mut p = FaultProfile::none();
                    p.retry.deadline_secs = 0.05; // so loss alone can't trip LossWithoutRetry
                    let faults = if direction == "request" {
                        &mut p.request_faults
                    } else {
                        &mut p.response_faults
                    };
                    match knob {
                        0 => faults.loss = bad,
                        1 => faults.duplication = bad,
                        _ => faults.extra_delay_prob = bad,
                    }
                    let err = p.validate(4).unwrap_err();
                    assert!(
                        matches!(err, ConfigError::LinkFaultInvalid { direction: d, .. } if d == direction),
                        "knob {knob} {direction} {bad}: got {err:?}"
                    );
                }
            }
        }
        // Negative extra delay is rejected too.
        let mut p = FaultProfile::none();
        p.request_faults.extra_delay_prob = 0.1;
        p.request_faults.extra_delay_micros = -5.0;
        assert!(matches!(
            p.validate(4),
            Err(ConfigError::LinkFaultInvalid {
                direction: "request",
                ..
            })
        ));
    }

    #[test]
    fn overload_field_defaults_when_missing() {
        // Configs written before the overload layer still deserialize.
        let s = SimulationConfig::new(PolicyKind::Fcfs, 5.0);
        let json = serde_json::to_string(&s).unwrap();
        let stripped = json.replace(
            &format!(
                ",\"overload\":{}",
                serde_json::to_string(&s.overload).unwrap()
            ),
            "",
        );
        assert_ne!(json, stripped, "overload field expected in serialized form");
        let back: SimulationConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.overload, OverloadProfile::none());
        assert!(!back.overload.is_active());
    }

    #[test]
    fn overload_profile_validation() {
        let mut p = OverloadProfile::none();
        assert_eq!(p.validate(0.0), Ok(()));
        assert!(!p.is_active());

        // Bad admission knobs.
        p.admission.deadline_secs = f64::NAN;
        assert!(matches!(
            p.validate(0.0),
            Err(ConfigError::InvalidAdmissionDeadline { .. })
        ));
        p.admission.deadline_secs = 0.05;
        assert!(p.is_active());
        p.admission.queue_capacity = 0;
        assert_eq!(p.validate(0.0), Err(ConfigError::ZeroQueueCapacity));
        p.admission.queue_capacity = 64;
        p.admission.write_penalty = 0.5;
        assert!(matches!(
            p.validate(0.0),
            Err(ConfigError::WritePenaltyBelowOne { .. })
        ));
        p.admission.write_penalty = 2.0;
        assert_eq!(p.validate(0.0), Ok(()));

        // A per-attempt retry budget longer than the request deadline is
        // rejected: every retried attempt would outlive its request.
        assert!(matches!(
            p.validate(0.2),
            Err(ConfigError::BudgetExceedsDeadline { .. })
        ));
        assert_eq!(p.validate(0.05), Ok(()));

        // Bad backpressure knobs.
        p.backpressure.tokens_per_sec = -1.0;
        assert!(matches!(
            p.validate(0.0),
            Err(ConfigError::InvalidTokenRate { .. })
        ));
        p.backpressure.tokens_per_sec = 100.0;
        p.backpressure.burst = 0.0;
        assert!(matches!(
            p.validate(0.0),
            Err(ConfigError::TokenBurstBelowOne { .. })
        ));
        p.backpressure.burst = 8.0;
        assert_eq!(p.validate(0.0), Ok(()));

        // Inconsistent batch bounds.
        p.batch.max_ops = 1;
        assert!(!p.batch.enabled());
        p.batch.max_ops = 8;
        p.batch.tiny_op_bytes = 0;
        assert!(matches!(
            p.validate(0.0),
            Err(ConfigError::BatchBoundsInconsistent { .. })
        ));
        p.batch.tiny_op_bytes = 4096;
        p.batch.overhead_fraction = 0.0;
        assert!(matches!(
            p.validate(0.0),
            Err(ConfigError::BatchBoundsInconsistent { .. })
        ));
        p.batch.overhead_fraction = 1.5;
        assert!(matches!(
            p.validate(0.0),
            Err(ConfigError::BatchBoundsInconsistent { .. })
        ));
        p.batch.overhead_fraction = 0.25;
        assert_eq!(p.validate(0.0), Ok(()));
    }

    #[test]
    fn overload_cross_check_through_simulation_config() {
        let mut s = SimulationConfig::new(PolicyKind::das(), 5.0);
        s.faults.retry.deadline_secs = 0.5;
        s.overload.admission.deadline_secs = 0.1;
        assert!(matches!(
            s.validate(),
            Err(ConfigError::BudgetExceedsDeadline { .. })
        ));
        s.faults.retry.deadline_secs = 0.05;
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let r = RetryConfig {
            deadline_secs: 0.01,
            max_attempts: 4,
            backoff_base_secs: 1e-3,
            backoff_multiplier: 2.0,
            jitter: 0.0,
        };
        assert!(r.enabled());
        assert!((r.backoff_secs(2) - 1e-3).abs() < 1e-15);
        assert!((r.backoff_secs(3) - 2e-3).abs() < 1e-15);
        assert!((r.backoff_secs(4) - 4e-3).abs() < 1e-15);
    }
}
