//! The simulated storage server: a scheduler-fronted service station with
//! one or more workers and a (possibly time-varying) service rate.

use das_sched::scheduler::{DequeueDecision, Scheduler};
use das_sched::types::{OpId, QueuedOp, ServerId};
use das_sim::time::{SimDuration, SimTime};

/// One op currently occupying a worker.
#[derive(Debug, Clone, Copy)]
pub struct InServiceOp {
    /// The op being served.
    pub op: OpId,
    /// When service completes.
    pub end: SimTime,
    /// When service started (for partial-work accounting on a crash).
    pub started: SimTime,
    /// Whether completing this entry releases its worker. True for every
    /// ordinary op; inside a coalesced batch only the entry with the
    /// latest end holds the worker (the earlier members ride along).
    pub frees_worker: bool,
}

/// One storage server.
pub struct Server {
    id: ServerId,
    scheduler: Box<dyn Scheduler>,
    workers: u32,
    busy_workers: u32,
    /// Ops currently in service (for exact backlog and crash accounting).
    in_service: Vec<InServiceOp>,
    /// Accumulated busy time across all workers.
    busy_time: SimDuration,
    ops_served: u64,
    bytes_served: u64,
    /// False while crash-stopped.
    up: bool,
    /// Bumped on every crash; stale service completions carry the old
    /// value and are discarded by the engine.
    incarnation: u64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("id", &self.id)
            .field("queue_len", &self.scheduler.len())
            .field("busy_workers", &self.busy_workers)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a server with `workers` service slots fronted by
    /// `scheduler`.
    pub fn new(id: ServerId, scheduler: Box<dyn Scheduler>, workers: u32) -> Self {
        assert!(workers >= 1);
        Server {
            id,
            scheduler,
            workers,
            busy_workers: 0,
            in_service: Vec::new(),
            busy_time: SimDuration::ZERO,
            ops_served: 0,
            bytes_served: 0,
            up: true,
            incarnation: 0,
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Queued (not yet serving) operations.
    pub fn queue_len(&self) -> usize {
        self.scheduler.len()
    }

    /// True if a worker is free.
    pub fn has_idle_worker(&self) -> bool {
        self.busy_workers < self.workers
    }

    /// Adds an op to the wait queue.
    pub fn enqueue(&mut self, op: QueuedOp, now: SimTime) {
        self.scheduler.enqueue(op, now);
    }

    /// Delivers a progress hint to the scheduler.
    pub fn hint(
        &mut self,
        request: das_sched::types::RequestId,
        update: das_sched::types::HintUpdate,
        now: SimTime,
    ) {
        self.scheduler.on_hint(request, update, now);
    }

    /// If a worker is idle and the queue is non-empty, starts service on the
    /// scheduler's pick and returns it with its completion instant
    /// (`now + service`). The caller supplies the true service time.
    pub fn try_start_service(
        &mut self,
        now: SimTime,
        service_of: impl FnOnce(&QueuedOp) -> SimDuration,
    ) -> Option<(QueuedOp, SimTime)> {
        if !self.has_idle_worker() {
            return None;
        }
        let op = self.scheduler.dequeue(now)?;
        Some(self.start(op, now, service_of))
    }

    /// [`Server::try_start_service`] plus the scheduler's explanation of
    /// *why* it picked the op — used by the engine only while tracing.
    /// Picks the identical op (see
    /// [`Scheduler::dequeue_explained`]), so traced and untraced runs
    /// cannot diverge.
    pub fn try_start_service_explained(
        &mut self,
        now: SimTime,
        service_of: impl FnOnce(&QueuedOp) -> SimDuration,
    ) -> Option<(QueuedOp, SimTime, DequeueDecision)> {
        if !self.has_idle_worker() {
            return None;
        }
        let (op, decision) = self.scheduler.dequeue_explained(now)?;
        let (op, end) = self.start(op, now, service_of);
        Some((op, end, decision))
    }

    /// Occupies a worker with `op` and books its service time.
    fn start(
        &mut self,
        op: QueuedOp,
        now: SimTime,
        service_of: impl FnOnce(&QueuedOp) -> SimDuration,
    ) -> (QueuedOp, SimTime) {
        let service = service_of(&op);
        let end = now + service;
        self.busy_workers += 1;
        self.in_service.push(InServiceOp {
            op: op.tag.op,
            end,
            started: now,
            frees_worker: true,
        });
        self.busy_time += service;
        (op, end)
    }

    /// Dequeues the scheduler's next pick *without* occupying a worker —
    /// the op will ride an already-busy worker as a batch follower. The
    /// caller must follow up with [`Server::attach_batch_follower`].
    pub fn dequeue_batch_follower(&mut self, now: SimTime) -> Option<QueuedOp> {
        self.scheduler.dequeue(now)
    }

    /// Books `op` onto the worker already occupied by the visit whose last
    /// entry ends at `prev_end`: that entry stops holding the worker and
    /// this one (ending at `end`, strictly later) takes over. Service for
    /// the follower occupies the worker over `[prev_end, end)`.
    pub fn attach_batch_follower(&mut self, op: OpId, prev_end: SimTime, end: SimTime) {
        debug_assert!(end > prev_end, "batch follower must end strictly later");
        if let Some(e) = self.in_service.iter_mut().find(|e| e.end == prev_end) {
            e.frees_worker = false;
        }
        self.in_service.push(InServiceOp {
            op,
            end,
            started: prev_end,
            frees_worker: true,
        });
        self.busy_time += end.saturating_since(prev_end);
    }

    /// Marks the op that completes at `end` as done, freeing its worker —
    /// unless the entry is a non-final batch member, whose worker stays
    /// held by the rest of the visit.
    pub fn complete_service(&mut self, end: SimTime, bytes: u64) {
        debug_assert!(self.busy_workers > 0);
        let frees = match self.in_service.iter().position(|e| e.end == end) {
            Some(pos) => self.in_service.swap_remove(pos).frees_worker,
            None => true,
        };
        if frees {
            self.busy_workers = self.busy_workers.saturating_sub(1);
        }
        self.ops_served += 1;
        self.bytes_served += bytes;
    }

    /// Crash-stops the server at `now`: every queued op is drained, every
    /// in-service op is cut short, all workers free, and the incarnation
    /// counter advances so stale completion events can be recognized.
    /// Returns the dropped work for the coordinator's recovery bookkeeping.
    /// Busy-time accounting keeps only the service actually performed
    /// before the crash.
    pub fn crash(&mut self, now: SimTime) -> (Vec<QueuedOp>, Vec<InServiceOp>) {
        self.up = false;
        self.incarnation += 1;
        let queued = self.scheduler.drain(now);
        let in_service = std::mem::take(&mut self.in_service);
        for e in &in_service {
            // Work not yet performed: for batch followers whose slice has
            // not started, that's the whole slice, not `end - now`.
            let undone = e.end.saturating_since(now).min(e.end.saturating_since(e.started));
            self.busy_time = self.busy_time.saturating_sub(undone);
        }
        self.busy_workers = 0;
        (queued, in_service)
    }

    /// Brings a crashed server back, empty.
    pub fn recover(&mut self) {
        self.up = true;
    }

    /// False while crash-stopped.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Crash count; completion events stamped with an older incarnation
    /// refer to work that died with a previous life of this server.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Expected seconds of work at this server as of `now`: remaining
    /// in-service time plus the scheduler's queued work estimate. This is
    /// what the server piggybacks on responses.
    pub fn backlog_secs(&self, now: SimTime) -> f64 {
        let in_service: f64 = self
            .in_service
            .iter()
            // A batch follower's slice starts at its predecessor's end;
            // counting `end - now` for it would double-bill the shared
            // worker. The min is `end - now` for every ordinary entry.
            .map(|e| {
                e.end
                    .saturating_since(now)
                    .min(e.end.saturating_since(e.started))
                    .as_secs_f64()
            })
            .sum();
        in_service + self.scheduler.queued_work().as_secs_f64()
    }

    /// Whether the scheduler consumes progress hints.
    pub fn wants_hints(&self) -> bool {
        self.scheduler.wants_hints()
    }

    /// Whether the scheduler benefits from piggybacked reports.
    pub fn wants_piggyback(&self) -> bool {
        self.scheduler.wants_piggyback()
    }

    /// Metadata bytes this server's policy attaches per op.
    pub fn metadata_bytes(&self) -> u64 {
        self.scheduler.metadata_bytes()
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Operations served to completion.
    pub fn ops_served(&self) -> u64 {
        self.ops_served
    }

    /// Bytes served to completion.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sched::policy::PolicyKind;
    use das_sched::types::{OpId, OpTag, RequestId};

    fn op(req: u64, est_us: u64) -> QueuedOp {
        let now = SimTime::ZERO;
        QueuedOp {
            tag: OpTag {
                op: OpId {
                    request: RequestId(req),
                    index: 0,
                },
                request_arrival: now,
                fanout: 1,
                local_estimate: SimDuration::from_micros(est_us),
                bottleneck_eta: now + SimDuration::from_micros(est_us),
                bottleneck_demand: SimDuration::from_micros(est_us),
            },
            local_estimate: SimDuration::from_micros(est_us),
            enqueued_at: now,
        }
    }

    fn server(workers: u32) -> Server {
        Server::new(ServerId(0), PolicyKind::Fcfs.build(), workers)
    }

    #[test]
    fn single_worker_serializes() {
        let mut s = server(1);
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100), now);
        s.enqueue(op(2, 100), now);
        let (first, end1) = s
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .unwrap();
        assert_eq!(first.tag.op.request, RequestId(1));
        assert_eq!(end1, SimTime::from_micros(100));
        // Worker busy: second op must wait.
        assert!(s.try_start_service(now, |_| SimDuration::ZERO).is_none());
        s.complete_service(end1, 50);
        let (second, _) = s
            .try_start_service(end1, |_| SimDuration::from_micros(100))
            .unwrap();
        assert_eq!(second.tag.op.request, RequestId(2));
        assert_eq!(s.ops_served(), 1);
        assert_eq!(s.bytes_served(), 50);
    }

    #[test]
    fn multiple_workers_run_concurrently() {
        let mut s = server(2);
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100), now);
        s.enqueue(op(2, 100), now);
        s.enqueue(op(3, 100), now);
        assert!(s
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .is_some());
        assert!(s
            .try_start_service(now, |_| SimDuration::from_micros(200))
            .is_some());
        assert!(!s.has_idle_worker());
        assert!(s.try_start_service(now, |_| SimDuration::ZERO).is_none());
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn backlog_counts_queue_and_in_service() {
        let mut s = server(1);
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100), now);
        s.enqueue(op(2, 300), now);
        let (_, end) = s
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .unwrap();
        // In service: 100us remaining; queued: 300us estimate.
        let b = s.backlog_secs(now);
        assert!((b - 400e-6).abs() < 1e-9, "backlog = {b}");
        // Halfway through service the in-service part shrinks.
        let b2 = s.backlog_secs(SimTime::from_micros(50));
        assert!((b2 - 350e-6).abs() < 1e-9, "backlog = {b2}");
        s.complete_service(end, 1);
        let b3 = s.backlog_secs(end);
        assert!((b3 - 300e-6).abs() < 1e-9, "backlog = {b3}");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut s = server(1);
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100), now);
        let (_, end) = s
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .unwrap();
        s.complete_service(end, 1);
        assert_eq!(s.busy_time(), SimDuration::from_micros(100));
    }

    #[test]
    fn crash_drops_everything_and_advances_incarnation() {
        let mut s = server(1);
        let now = SimTime::ZERO;
        assert!(s.is_up());
        assert_eq!(s.incarnation(), 0);
        s.enqueue(op(1, 100), now);
        s.enqueue(op(2, 100), now);
        let (_, _end) = s
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .unwrap();
        // Crash halfway through service: 50us of real work was done.
        let crash_at = SimTime::from_micros(50);
        let (queued, in_service) = s.crash(crash_at);
        assert_eq!(queued.len(), 1);
        assert_eq!(queued[0].tag.op.request, RequestId(2));
        assert_eq!(in_service.len(), 1);
        assert_eq!(in_service[0].op.request, RequestId(1));
        assert_eq!(in_service[0].started, now);
        assert!(!s.is_up());
        assert_eq!(s.incarnation(), 1);
        assert_eq!(s.queue_len(), 0);
        assert!(s.has_idle_worker());
        assert_eq!(s.busy_time(), SimDuration::from_micros(50));
        assert_eq!(s.backlog_secs(crash_at), 0.0);
        // Recovery brings it back, empty and serving.
        s.recover();
        assert!(s.is_up());
        s.enqueue(op(3, 100), crash_at);
        assert!(s
            .try_start_service(crash_at, |_| SimDuration::from_micros(10))
            .is_some());
    }

    #[test]
    fn batch_visit_holds_one_worker_until_last_member() {
        let mut s = server(1);
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100), now);
        s.enqueue(op(2, 100), now);
        s.enqueue(op(3, 100), now);
        let (leader, end1) = s
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .unwrap();
        assert_eq!(leader.tag.op.request, RequestId(1));
        // Coalesce op 2 onto the same worker.
        let follower = s.dequeue_batch_follower(now).unwrap();
        assert_eq!(follower.tag.op.request, RequestId(2));
        let end2 = end1 + SimDuration::from_micros(30);
        s.attach_batch_follower(follower.tag.op, end1, end2);
        // Still the only worker, still busy; op 3 keeps waiting.
        assert!(!s.has_idle_worker());
        assert_eq!(s.queue_len(), 1);
        // Backlog counts the visit once, not per member.
        let b = s.backlog_secs(now);
        assert!((b - 230e-6).abs() < 1e-9, "backlog = {b}");
        // Leader completes: worker stays held by the follower.
        s.complete_service(end1, 10);
        assert!(!s.has_idle_worker());
        // Last member completes: worker frees.
        s.complete_service(end2, 10);
        assert!(s.has_idle_worker());
        assert_eq!(s.ops_served(), 2);
        assert_eq!(s.busy_time(), SimDuration::from_micros(130));
    }

    #[test]
    fn crash_mid_batch_keeps_only_performed_work() {
        let mut s = server(1);
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100), now);
        s.enqueue(op(2, 100), now);
        let (_, end1) = s
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .unwrap();
        let f = s.dequeue_batch_follower(now).unwrap();
        let end2 = end1 + SimDuration::from_micros(40);
        s.attach_batch_follower(f.tag.op, end1, end2);
        // Crash halfway through the leader's slice: only 50us was real.
        let (_, in_service) = s.crash(SimTime::from_micros(50));
        assert_eq!(in_service.len(), 2);
        assert_eq!(s.busy_time(), SimDuration::from_micros(50));
    }

    #[test]
    fn explained_start_matches_plain_start() {
        use das_sched::scheduler::DequeueRule;
        let mut a = server(1);
        let mut b = server(1);
        let now = SimTime::ZERO;
        for s in [&mut a, &mut b] {
            s.enqueue(op(1, 100), now);
            s.enqueue(op(2, 100), now);
        }
        let (pa, ea) = a
            .try_start_service(now, |_| SimDuration::from_micros(100))
            .unwrap();
        let (pb, eb, d) = b
            .try_start_service_explained(now, |_| SimDuration::from_micros(100))
            .unwrap();
        assert_eq!(pa.tag.op, pb.tag.op);
        assert_eq!(ea, eb);
        assert_eq!(d.rule, DequeueRule::PolicyOrder);
        assert_eq!(d.queue_len, 2);
        // Worker busy either way.
        assert!(b
            .try_start_service_explained(now, |_| SimDuration::ZERO)
            .is_none());
    }

    #[test]
    fn policy_properties_pass_through() {
        let fcfs = server(1);
        assert_eq!(fcfs.policy_name(), "FCFS");
        assert!(!fcfs.wants_hints());
        let das = Server::new(ServerId(1), PolicyKind::das().build(), 1);
        assert!(das.wants_hints());
        assert!(das.wants_piggyback());
        assert!(das.metadata_bytes() > 0);
        assert_eq!(das.id(), ServerId(1));
    }
}
