//! Baseline disciplines: FCFS (the default every key-value store ships),
//! SJF, EDF, and LRPT-last-only.

use std::collections::VecDeque;

use das_sim::time::{SimDuration, SimTime};

use crate::scheduler::{KeyedQueue, Scheduler};
use crate::types::QueuedOp;

/// First-come-first-served: the default discipline of production key-value
/// stores and the paper's primary baseline.
#[derive(Debug, Default)]
pub struct Fcfs {
    queue: VecDeque<QueuedOp>,
    queued_work: SimDuration,
}

impl Fcfs {
    /// An empty FCFS queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        self.queued_work += op.local_estimate;
        self.queue.push_back(op);
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedOp> {
        let op = self.queue.pop_front()?;
        self.queued_work = self.queued_work.saturating_sub(op.local_estimate);
        Some(op)
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn queued_work(&self) -> SimDuration {
        self.queued_work
    }
}

/// Shortest job first on the *local* operation's expected service time.
/// Oblivious to the multi-get structure: a small op of a huge multi-get
/// jumps the queue even though its request cannot finish soon.
#[derive(Debug, Default)]
pub struct Sjf {
    queue: KeyedQueue,
}

impl Sjf {
    /// An empty SJF queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Sjf {
    fn name(&self) -> &'static str {
        "SJF"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        self.queue.push(op.local_estimate.as_nanos(), op);
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedOp> {
        self.queue.pop()
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn queued_work(&self) -> SimDuration {
        self.queue.queued_work()
    }
}

/// Earliest (virtual) deadline first: deadline = request arrival + the
/// request's bottleneck service demand. Requests that *could* finish soon
/// are served first; unlike DAS the deadline never adapts after dispatch.
#[derive(Debug, Default)]
pub struct Edf {
    queue: KeyedQueue,
}

impl Edf {
    /// An empty EDF queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Edf {
    fn name(&self) -> &'static str {
        "EDF"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        let deadline = op.tag.request_arrival + op.tag.bottleneck_demand;
        self.queue.push(deadline.as_nanos(), op);
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedOp> {
        self.queue.pop()
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn metadata_bytes(&self) -> u64 {
        das_net_tag_bytes::SMALL_TAG
    }
    fn queued_work(&self) -> SimDuration {
        self.queue.queued_work()
    }
}

/// The LRPT-last component of DAS in isolation: ops whose request still has
/// a lot of remaining bottleneck work elsewhere are postponed; ties (and
/// requests whose bottleneck has notionally passed) are FCFS. There is no
/// SRPT-across-requests term and no aging.
#[derive(Debug, Default)]
pub struct LrptLast {
    queue: Vec<QueuedOp>,
    queued_work: SimDuration,
}

impl LrptLast {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LrptLast {
    fn name(&self) -> &'static str {
        "LRPT-last"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        self.queued_work += op.local_estimate;
        self.queue.push(op);
    }
    fn dequeue(&mut self, now: SimTime) -> Option<QueuedOp> {
        if self.queue.is_empty() {
            return None;
        }
        // Serve the op whose request has the *least* remaining bottleneck
        // time (postponing the largest remaining = LRPT-last); break ties
        // by arrival order (stable because Vec preserves insertion order).
        let best = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(i, op)| (op.tag.remaining_at(now).as_nanos(), *i))
            .map(|(i, _)| i)?;
        let op = self.queue.remove(best);
        self.queued_work = self.queued_work.saturating_sub(op.local_estimate);
        Some(op)
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn on_hint(
        &mut self,
        request: crate::types::RequestId,
        update: crate::types::HintUpdate,
        _now: SimTime,
    ) {
        for op in &mut self.queue {
            if op.tag.op.request == request {
                op.tag.bottleneck_eta = update.bottleneck_eta;
                op.tag.bottleneck_demand = update.remaining_demand;
            }
        }
    }
    fn wants_hints(&self) -> bool {
        true
    }
    fn wants_piggyback(&self) -> bool {
        true
    }
    fn metadata_bytes(&self) -> u64 {
        das_net_tag_bytes::DAS_TAG
    }
    fn queued_work(&self) -> SimDuration {
        self.queued_work
    }
}

/// Serves a uniformly random queued op. A control baseline: any policy
/// claiming to help must beat both FCFS *and* random order.
#[derive(Debug)]
pub struct RandomOrder {
    queue: Vec<QueuedOp>,
    queued_work: SimDuration,
    /// xorshift64* state — self-contained so the policy needs no external
    /// RNG plumbing and stays deterministic per seed.
    state: u64,
}

impl RandomOrder {
    /// A random-order queue with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomOrder {
            queue: Vec::new(),
            queued_work: SimDuration::ZERO,
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl Default for RandomOrder {
    fn default() -> Self {
        Self::new(0x9e37_79b9)
    }
}

impl Scheduler for RandomOrder {
    fn name(&self) -> &'static str {
        "Random"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        self.queued_work += op.local_estimate;
        self.queue.push(op);
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedOp> {
        if self.queue.is_empty() {
            return None;
        }
        let idx = (self.next_u64() % self.queue.len() as u64) as usize;
        let op = self.queue.swap_remove(idx);
        self.queued_work = self.queued_work.saturating_sub(op.local_estimate);
        Some(op)
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn queued_work(&self) -> SimDuration {
        self.queued_work
    }
}

/// Wire-size constants mirrored from `das-net` (kept local so `das-sched`
/// does not depend on the network crate).
pub(crate) mod das_net_tag_bytes {
    /// Request id + one 4-byte scalar.
    pub const SMALL_TAG: u64 = 12;
    /// The full DAS tag (ids, bottleneck eta, demand, fanout, timestamp).
    pub const DAS_TAG: u64 = 22;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OpId, OpTag, RequestId};

    fn op(req: u64, est_us: u64, eta_us: u64, arrival_us: u64) -> QueuedOp {
        QueuedOp {
            tag: OpTag {
                op: OpId {
                    request: RequestId(req),
                    index: 0,
                },
                request_arrival: SimTime::from_micros(arrival_us),
                fanout: 2,
                local_estimate: SimDuration::from_micros(est_us),
                bottleneck_eta: SimTime::from_micros(eta_us),
                bottleneck_demand: SimDuration::from_micros(est_us),
            },
            local_estimate: SimDuration::from_micros(est_us),
            enqueued_at: SimTime::from_micros(arrival_us),
        }
    }

    #[test]
    fn fcfs_preserves_order() {
        let mut s = Fcfs::new();
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100, 0, 0), now);
        s.enqueue(op(2, 1, 0, 0), now);
        s.enqueue(op(3, 50, 0, 0), now);
        assert_eq!(s.name(), "FCFS");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.queued_work(), SimDuration::from_micros(151));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(now))
            .map(|o| o.tag.op.request.0)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(s.queued_work(), SimDuration::ZERO);
    }

    #[test]
    fn sjf_orders_by_local_estimate() {
        let mut s = Sjf::new();
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100, 0, 0), now);
        s.enqueue(op(2, 1, 0, 0), now);
        s.enqueue(op(3, 50, 0, 0), now);
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(now))
            .map(|o| o.tag.op.request.0)
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn edf_orders_by_arrival_plus_bottleneck() {
        let mut s = Edf::new();
        let now = SimTime::ZERO;
        // Deadlines: r1 = 0+100, r2 = 30+1 = 31, r3 = 10+50 = 60.
        s.enqueue(op(1, 100, 0, 0), now);
        s.enqueue(op(2, 1, 0, 30), now);
        s.enqueue(op(3, 50, 0, 10), now);
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(now))
            .map(|o| o.tag.op.request.0)
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn lrpt_serves_least_remaining_first() {
        let mut s = LrptLast::new();
        let now = SimTime::from_micros(100);
        s.enqueue(op(1, 10, 500, 0), now); // remaining 400us
        s.enqueue(op(2, 10, 150, 0), now); // remaining 50us
        s.enqueue(op(3, 10, 2000, 0), now); // remaining 1900us -> last
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(now))
            .map(|o| o.tag.op.request.0)
            .collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn lrpt_hint_reorders() {
        let mut s = LrptLast::new();
        let now = SimTime::from_micros(100);
        s.enqueue(op(1, 10, 500, 0), now);
        s.enqueue(op(2, 10, 900, 0), now);
        // A hint says request 2's bottleneck finished much earlier.
        s.on_hint(
            RequestId(2),
            crate::types::HintUpdate {
                bottleneck_eta: SimTime::from_micros(110),
                remaining_demand: SimDuration::from_micros(10),
            },
            now,
        );
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(2));
        assert!(s.wants_hints());
        assert!(s.wants_piggyback());
    }

    #[test]
    fn lrpt_ties_are_fcfs() {
        let mut s = LrptLast::new();
        // Both requests' bottlenecks have passed: remaining == 0 for both.
        let now = SimTime::from_micros(10_000);
        s.enqueue(op(7, 10, 100, 0), now);
        s.enqueue(op(8, 10, 200, 0), now);
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(7));
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(8));
    }

    #[test]
    fn random_order_conserves_and_randomizes() {
        let mut s = RandomOrder::default();
        let now = SimTime::ZERO;
        for i in 0..50 {
            s.enqueue(op(i, 10, 10, 0), now);
        }
        assert_eq!(s.len(), 50);
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(now))
            .map(|o| o.tag.op.request.0)
            .collect();
        assert_eq!(order.len(), 50);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly unlikely to be FCFS order.
        assert_ne!(order, (0..50).collect::<Vec<_>>());
        assert_eq!(s.queued_work(), SimDuration::ZERO);
    }

    #[test]
    fn random_order_deterministic_per_seed() {
        let drain = |seed| {
            let mut s = RandomOrder::new(seed);
            let now = SimTime::ZERO;
            for i in 0..20 {
                s.enqueue(op(i, 10, 10, 0), now);
            }
            std::iter::from_fn(move || s.dequeue(now))
                .map(|o| o.tag.op.request.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(drain(7), drain(7));
        assert_ne!(drain(7), drain(8));
    }

    #[test]
    fn metadata_sizes() {
        assert_eq!(Fcfs::new().metadata_bytes(), 0);
        assert_eq!(Sjf::new().metadata_bytes(), 0);
        assert!(Edf::new().metadata_bytes() > 0);
        assert!(LrptLast::new().metadata_bytes() > 0);
    }
}
