//! The Distributed Adaptive Scheduler (DAS) — the paper's contribution.
//!
//! Every queued operation is ranked by the **remaining bottleneck service
//! demand** of its owning request — the largest expected service time among
//! the request's *unfinished* operations:
//!
//! ```text
//! rank(op, t) = max(local_demand, remaining_bottleneck_demand(t)) − slope · wait(t)
//! slope       = aging · min(1, EWMA demand / EWMA wait)
//! ```
//!
//! and the op with the smallest rank is served next. This single rule is
//! the "distributed combination of LRPT-last and SRPT-first" from the
//! abstract:
//!
//! * **SRPT-first across requests** — at dispatch the rank equals Rein's
//!   shortest-bottleneck-first key, but as siblings complete the
//!   coordinator's progress hints shrink `remaining_bottleneck_demand`, so
//!   a request that is almost done becomes urgent everywhere and finishes —
//!   exactly SRPT at the request level, computed distributedly.
//! * **LRPT-last within a request** — an op whose sibling still needs a
//!   huge service time ranks by that sibling's demand, not its own: serving
//!   it early cannot make its request finish sooner, so it yields to ops
//!   that can still help someone (the op with the *largest remaining
//!   processing time* elsewhere is served *last*).
//!
//! **Adaptivity** comes from three mechanisms:
//!
//! 1. service demands are estimated with the coordinator's EWMA per-server
//!    rate estimates (fed by piggybacked reports), so tags track
//!    time-varying server performance — a degraded server's ops carry
//!    proportionally larger demands;
//! 2. progress hints keep the remaining-bottleneck view current as the
//!    request executes;
//! 3. **load-normalized aging** bounds starvation: every queued op earns a
//!    rank credit proportional to its wait, with a slope of
//!    `aging · (EWMA demand / EWMA wait)`. The normalization keeps the
//!    credit at the *demand* scale no matter how congested the server is —
//!    a fixed absolute slope would grow past the demand scale at high load
//!    and collapse the ranking toward FCFS exactly when reordering is most
//!    valuable (Fig. 18 measures this). A hard serve-the-oldest threshold
//!    (`starvation_factor`) is also available; Fig. 18 shows it fires in
//!    bursts and *worsens* the worst case, which is why it defaults to
//!    off. At trivial queue depths (`fcfs_fallback_len`) DAS degenerates
//!    to FCFS, avoiding reordering overhead at low load.

use serde::{Deserialize, Serialize};

use das_sim::time::{SimDuration, SimTime};

use crate::baselines::das_net_tag_bytes;
use crate::scheduler::{DequeueDecision, DequeueRule, Scheduler};
use crate::types::{HintUpdate, QueuedOp, RequestId};

/// Tuning knobs for [`Das`]. The defaults reproduce the paper's behaviour;
/// the ablation flags switch off individual components for Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DasConfig {
    /// Load-normalized aging strength (dimensionless): the rank-credit
    /// slope is `aging · min(1, EWMA demand / EWMA wait)`, so the credit
    /// stays at the demand scale at any congestion level. 0 disables
    /// aging.
    pub aging: f64,
    /// Hard guard: serve the oldest queued op unconditionally once its
    /// wait exceeds this multiple of the EWMA dispensed wait. Off (0) by
    /// default — Fig. 18 shows threshold guards fire in bursts and hurt
    /// the worst case; kept as a knob to reproduce that negative result.
    pub starvation_factor: f64,
    /// Queue length at or below which plain FCFS order is used.
    pub fcfs_fallback_len: usize,
    /// Use the request-level remaining-bottleneck term (the LRPT-last +
    /// SRPT-first combination). Off = rank by the local op's demand only
    /// (degenerates to aged SJF).
    pub use_remaining_bottleneck: bool,
    /// Consume piggybacked reports and progress hints. Off = tags are
    /// static dispatch-time guesses based on nominal rates.
    pub adaptive: bool,
    /// Oracle mode: the surrounding system feeds exact, instantly updated
    /// information at zero cost. Used only as an upper-bound reference.
    pub oracle: bool,
}

impl Default for DasConfig {
    fn default() -> Self {
        DasConfig {
            aging: 0.1,
            starvation_factor: 0.0,
            fcfs_fallback_len: 1,
            use_remaining_bottleneck: true,
            adaptive: true,
            oracle: false,
        }
    }
}

impl DasConfig {
    /// Ablation: DAS without the request-level remaining-bottleneck term.
    pub fn without_remaining_bottleneck() -> Self {
        DasConfig {
            use_remaining_bottleneck: false,
            ..Default::default()
        }
    }

    /// Ablation: DAS without adaptivity (static dispatch-time tags, no
    /// hints, no piggybacked estimates).
    pub fn without_adaptivity() -> Self {
        DasConfig {
            adaptive: false,
            ..Default::default()
        }
    }

    /// Ablation: DAS without any anti-starvation mechanism (no guard, no
    /// aging credit).
    pub fn without_aging() -> Self {
        DasConfig {
            aging: 0.0,
            starvation_factor: 0.0,
            ..Default::default()
        }
    }

    /// The centralized-oracle upper bound.
    pub fn oracle() -> Self {
        DasConfig {
            oracle: true,
            ..Default::default()
        }
    }
}

/// The Distributed Adaptive Scheduler. See the module docs for the ranking
/// rule.
#[derive(Debug)]
pub struct Das {
    config: DasConfig,
    queue: Vec<Slot>,
    next_seq: u64,
    queued_work: SimDuration,
    /// EWMA of the waits of dispatched ops.
    wait_ewma: das_sim::stats::Ewma,
    /// EWMA of the local demands of dispatched ops.
    demand_ewma: das_sim::stats::Ewma,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    seq: u64,
    op: QueuedOp,
}

impl Default for Das {
    fn default() -> Self {
        Self::new(DasConfig::default())
    }
}

impl Das {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: DasConfig) -> Self {
        assert!(config.aging >= 0.0 && config.aging.is_finite());
        assert!(config.starvation_factor >= 0.0 && config.starvation_factor.is_finite());
        Das {
            config,
            queue: Vec::new(),
            next_seq: 0,
            queued_work: SimDuration::ZERO,
            wait_ewma: das_sim::stats::Ewma::new(0.02),
            demand_ewma: das_sim::stats::Ewma::new(0.02),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DasConfig {
        &self.config
    }

    /// True when `op` has waited far beyond the current average wait.
    fn starving(&self, op: &QueuedOp, now: SimTime) -> bool {
        if self.config.starvation_factor <= 0.0 {
            return false;
        }
        match self.wait_ewma.value() {
            Some(avg) if avg > 0.0 => {
                op.wait_at(now).as_secs_f64() > self.config.starvation_factor * avg
            }
            _ => false,
        }
    }

    /// The credit slope in effect: `aging`, shrunk by how far typical
    /// waits exceed typical demands so the credit never outgrows the
    /// demand scale.
    fn aging_slope(&self) -> f64 {
        if self.config.aging == 0.0 {
            return 0.0;
        }
        match (self.demand_ewma.value(), self.wait_ewma.value()) {
            (Some(d), Some(w)) if w > 0.0 => self.config.aging * (d / w).min(1.0),
            _ => self.config.aging,
        }
    }

    /// Picks the next op to serve: its index in `queue` plus the rule that
    /// chose it. Shared by [`Scheduler::dequeue`] and
    /// [`Scheduler::dequeue_explained`] so the two can never diverge.
    fn select(&self, now: SimTime) -> Option<(usize, DequeueRule)> {
        if self.queue.is_empty() {
            return None;
        }
        let oldest = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.seq)
            .map(|(i, _)| i)?;
        if self.queue.len() <= self.config.fcfs_fallback_len {
            // Low load: FCFS (earliest seq).
            return Some((oldest, DequeueRule::FcfsFallback));
        }
        if self.starving(&self.queue[oldest].op, now) {
            // Adaptive starvation guard: the oldest op has waited far past
            // the current norm — serve it regardless of rank.
            return Some((oldest, DequeueRule::StarvationGuard));
        }
        // Scan for the minimum rank (lower = served first); the rank
        // is max(local, remaining bottleneck demand) − slope · wait,
        // with `bottleneck_demand` kept current by progress hints.
        // Ties go to the earliest arrival.
        let slope = self.aging_slope();
        let mut best = 0usize;
        let mut best_rank = f64::INFINITY;
        let mut best_seq = u64::MAX;
        for (i, slot) in self.queue.iter().enumerate() {
            let local = slot.op.local_estimate.as_secs_f64();
            let remaining = if self.config.use_remaining_bottleneck {
                local.max(slot.op.tag.bottleneck_demand.as_secs_f64())
            } else {
                local
            };
            let r = remaining - slope * slot.op.wait_at(now).as_secs_f64();
            // Exact tie-break on equal ranks (an epsilon would make the
            // dequeue order depend on unrelated float noise).
            let ord = r.total_cmp(&best_rank);
            if ord == std::cmp::Ordering::Less
                || (ord == std::cmp::Ordering::Equal && slot.seq < best_seq)
            {
                best = i;
                best_rank = r;
                best_seq = slot.seq;
            }
        }
        Some((best, DequeueRule::MinRank))
    }

    /// Removes the op at `idx` and updates the dispensed-wait/demand EWMAs.
    fn take(&mut self, idx: usize, now: SimTime) -> QueuedOp {
        let slot = self.queue.swap_remove(idx);
        self.queued_work = self.queued_work.saturating_sub(slot.op.local_estimate);
        self.wait_ewma.record(slot.op.wait_at(now).as_secs_f64());
        self.demand_ewma
            .record(slot.op.local_estimate.as_secs_f64());
        slot.op
    }
}

impl Scheduler for Das {
    fn name(&self) -> &'static str {
        if self.config.oracle {
            "Oracle"
        } else if !self.config.use_remaining_bottleneck {
            "DAS-noLRPT"
        } else if !self.config.adaptive {
            "DAS-noAdapt"
        } else if self.config.aging == 0.0 && self.config.starvation_factor == 0.0 {
            "DAS-noAging"
        } else {
            "DAS"
        }
    }

    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queued_work += op.local_estimate;
        self.queue.push(Slot { seq, op });
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QueuedOp> {
        let (idx, _) = self.select(now)?;
        Some(self.take(idx, now))
    }

    fn dequeue_explained(&mut self, now: SimTime) -> Option<(QueuedOp, DequeueDecision)> {
        let (idx, rule) = self.select(now)?;
        let picked_seq = self.queue[idx].seq;
        // Arrival-order rank of the pick: how many queued ops are older.
        let position = self.queue.iter().filter(|s| s.seq < picked_seq).count() as u32;
        let queue_len = self.queue.len() as u32;
        let op = self.take(idx, now);
        Some((
            op,
            DequeueDecision {
                rule,
                position,
                queue_len,
            },
        ))
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn on_hint(&mut self, request: RequestId, update: HintUpdate, _now: SimTime) {
        if !(self.config.adaptive || self.config.oracle) {
            return;
        }
        for slot in &mut self.queue {
            if slot.op.tag.op.request == request {
                slot.op.tag.bottleneck_eta = update.bottleneck_eta;
                slot.op.tag.bottleneck_demand = update.remaining_demand;
            }
        }
    }

    fn metadata_bytes(&self) -> u64 {
        if self.config.oracle {
            0 // centralized reference: coordination assumed free
        } else {
            das_net_tag_bytes::DAS_TAG
        }
    }

    fn wants_hints(&self) -> bool {
        (self.config.adaptive && self.config.use_remaining_bottleneck) || self.config.oracle
    }

    fn wants_piggyback(&self) -> bool {
        self.config.adaptive || self.config.oracle
    }

    fn queued_work(&self) -> SimDuration {
        self.queued_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OpId, OpTag};

    /// An op whose request has local demand `local_us` and (remaining)
    /// bottleneck demand `bottleneck_us`, enqueued at `enq_us`.
    fn op(req: u64, local_us: u64, bottleneck_us: u64, enq_us: u64) -> QueuedOp {
        QueuedOp {
            tag: OpTag {
                op: OpId {
                    request: RequestId(req),
                    index: 0,
                },
                request_arrival: SimTime::from_micros(enq_us),
                fanout: 2,
                local_estimate: SimDuration::from_micros(local_us),
                bottleneck_eta: SimTime::from_micros(enq_us + bottleneck_us),
                bottleneck_demand: SimDuration::from_micros(bottleneck_us),
            },
            local_estimate: SimDuration::from_micros(local_us),
            enqueued_at: SimTime::from_micros(enq_us),
        }
    }

    fn hint(eta_us: u64, demand_us: u64) -> HintUpdate {
        HintUpdate {
            bottleneck_eta: SimTime::from_micros(eta_us),
            remaining_demand: SimDuration::from_micros(demand_us),
        }
    }

    fn drain(s: &mut Das, now: SimTime) -> Vec<u64> {
        std::iter::from_fn(|| s.dequeue(now))
            .map(|o| o.tag.op.request.0)
            .collect()
    }

    fn no_fallback(config: DasConfig) -> DasConfig {
        DasConfig {
            aging: 0.0,
            fcfs_fallback_len: 0,
            ..config
        }
    }

    #[test]
    fn starvation_guard_serves_long_waiting_outlier() {
        let mut s = Das::new(DasConfig {
            starvation_factor: 4.0,
            fcfs_fallback_len: 0,
            ..Default::default()
        });
        // Prime the wait EWMA with ~1ms waits.
        for i in 0..100 {
            let t = SimTime::from_millis(10 * i);
            s.enqueue(op(1000 + i, 100, 100, t.as_nanos() / 1000), t);
            assert!(s.dequeue(t + SimDuration::from_millis(1)).is_some());
        }
        // A giant request enqueues and keeps getting bypassed... until its
        // wait passes 4x the ~1ms average.
        let t0 = SimTime::from_secs(100);
        s.enqueue(op(1, 50_000, 50_000, t0.as_nanos() / 1000), t0);
        let later = t0 + SimDuration::from_millis(100);
        s.enqueue(op(2, 10, 10, later.as_nanos() / 1000), later);
        // Guard fires: the oldest op wins despite its huge demand.
        assert_eq!(s.dequeue(later).unwrap().tag.op.request, RequestId(1));
    }

    #[test]
    fn starvation_guard_dormant_for_fresh_ops() {
        let mut s = Das::new(DasConfig {
            starvation_factor: 4.0,
            fcfs_fallback_len: 0,
            ..Default::default()
        });
        for i in 0..50 {
            let t = SimTime::from_millis(10 * i);
            s.enqueue(op(1000 + i, 100, 100, t.as_nanos() / 1000), t);
            assert!(s.dequeue(t + SimDuration::from_millis(1)).is_some());
        }
        // Both ops fresh: plain SRPT ordering applies.
        let t0 = SimTime::from_secs(100);
        s.enqueue(op(1, 50_000, 50_000, t0.as_nanos() / 1000), t0);
        s.enqueue(op(2, 10, 10, t0.as_nanos() / 1000), t0);
        assert_eq!(s.dequeue(t0).unwrap().tag.op.request, RequestId(2));
    }

    #[test]
    fn smallest_remaining_bottleneck_first() {
        let mut s = Das::new(no_fallback(DasConfig::default()));
        let now = SimTime::ZERO;
        s.enqueue(op(1, 10, 5_000, 0), now);
        s.enqueue(op(2, 10, 100, 0), now);
        s.enqueue(op(3, 10, 1_000, 0), now);
        assert_eq!(drain(&mut s, now), vec![2, 3, 1]);
    }

    #[test]
    fn lrpt_last_within_request() {
        // The non-bottleneck op of a big request yields to a small request,
        // even though its *own* demand is tiny and it arrived first.
        let mut s = Das::new(no_fallback(DasConfig::default()));
        let now = SimTime::ZERO;
        s.enqueue(op(1, 5, 10_000, 0), now); // tiny op, huge sibling demand
        s.enqueue(op(2, 50, 60, 0), now); // bottleneck op of a small request
        assert_eq!(drain(&mut s, now), vec![2, 1]);
    }

    #[test]
    fn hint_shrinks_remaining_and_makes_op_urgent() {
        let mut s = Das::new(no_fallback(DasConfig::default()));
        let now = SimTime::ZERO;
        s.enqueue(op(1, 5, 10_000, 0), now);
        s.enqueue(op(2, 50, 60, 0), now);
        // Request 1's giant sibling completed: remaining collapses to the
        // local 5us demand -> SRPT-first.
        s.on_hint(RequestId(1), hint(5, 5), now);
        assert_eq!(drain(&mut s, now), vec![1, 2]);
    }

    #[test]
    fn continuous_aging_credit_also_prevents_starvation() {
        let mut s = Das::new(DasConfig {
            aging: 0.01,
            starvation_factor: 0.0,
            fcfs_fallback_len: 0,
            ..Default::default()
        });
        // A big request waits from t=0; fresh small ops keep arriving.
        s.enqueue(op(1, 1000, 1000, 0), SimTime::ZERO);
        // After 200ms of waiting its 1000us demand has earned 2000us of
        // credit, beating a fresh 500us op.
        let now = SimTime::from_millis(200);
        s.enqueue(op(2, 500, 500, 200_000), now);
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
    }

    #[test]
    fn no_aging_starves() {
        let mut s = Das::new(no_fallback(DasConfig::without_aging()));
        s.enqueue(op(1, 1000, 1000, 0), SimTime::ZERO);
        let now = SimTime::from_millis(200);
        s.enqueue(op(2, 500, 500, 200_000), now);
        // Without aging the newcomer with the smaller demand wins forever.
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(2));
    }

    #[test]
    fn fcfs_fallback_at_low_depth() {
        let mut s = Das::new(DasConfig {
            fcfs_fallback_len: 2,
            aging: 0.0,
            ..Default::default()
        });
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100, 10_000, 0), now);
        s.enqueue(op(2, 1, 10, 0), now);
        // Two queued <= fallback threshold: serve in arrival order.
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
        // Now only one left — still FCFS region.
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(2));
    }

    #[test]
    fn no_remaining_bottleneck_term_ranks_by_local() {
        let mut s = Das::new(no_fallback(DasConfig::without_remaining_bottleneck()));
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100, 50, 0), now); // small request but big local op
        s.enqueue(op(2, 10, 100_000, 0), now); // giant request, small local op
        assert_eq!(drain(&mut s, now), vec![2, 1]);
    }

    #[test]
    fn non_adaptive_ignores_hints() {
        let mut s = Das::new(no_fallback(DasConfig::without_adaptivity()));
        let now = SimTime::ZERO;
        s.enqueue(op(1, 5, 10_000, 0), now);
        s.enqueue(op(2, 50, 60, 0), now);
        s.on_hint(RequestId(1), hint(5, 5), now);
        // Hint dropped: order unchanged.
        assert_eq!(drain(&mut s, now), vec![2, 1]);
        assert!(!s.wants_hints());
        assert!(!s.wants_piggyback());
    }

    #[test]
    fn local_demand_floors_the_rank() {
        // A hint can never make an op look cheaper than its own service.
        let mut s = Das::new(no_fallback(DasConfig::default()));
        let now = SimTime::ZERO;
        s.enqueue(op(1, 800, 10_000, 0), now);
        s.enqueue(op(2, 500, 500, 0), now);
        s.on_hint(RequestId(1), hint(1, 1), now); // absurd hint
                                                  // Rank(1) = max(800, 1) = 800 > rank(2) = 500.
        assert_eq!(drain(&mut s, now), vec![2, 1]);
    }

    #[test]
    fn names_reflect_ablations() {
        assert_eq!(Das::new(DasConfig::default()).name(), "DAS");
        assert_eq!(
            Das::new(DasConfig::without_remaining_bottleneck()).name(),
            "DAS-noLRPT"
        );
        assert_eq!(
            Das::new(DasConfig::without_adaptivity()).name(),
            "DAS-noAdapt"
        );
        assert_eq!(Das::new(DasConfig::without_aging()).name(), "DAS-noAging");
        assert_eq!(Das::new(DasConfig::oracle()).name(), "Oracle");
    }

    #[test]
    fn oracle_wants_everything_but_charges_nothing() {
        let s = Das::new(DasConfig::oracle());
        assert!(s.wants_hints());
        assert!(s.wants_piggyback());
        assert_eq!(s.metadata_bytes(), 0);
        assert!(Das::new(DasConfig::default()).metadata_bytes() > 0);
    }

    #[test]
    fn explained_dequeue_matches_dequeue_and_names_the_rule() {
        // Same fill, two schedulers: the explained variant must pick the
        // identical op sequence and label each pick with the rule in force.
        let config = no_fallback(DasConfig::default());
        let mut plain = Das::new(config);
        let mut explained = Das::new(config);
        let now = SimTime::ZERO;
        for (req, local, bott) in [(1, 10, 5_000), (2, 10, 100), (3, 10, 1_000)] {
            plain.enqueue(op(req, local, bott, 0), now);
            explained.enqueue(op(req, local, bott, 0), now);
        }
        let mut rules = Vec::new();
        loop {
            let a = plain.dequeue(now);
            let b = explained.dequeue_explained(now);
            match (a, b) {
                (None, None) => break,
                (Some(a), Some((b, d))) => {
                    assert_eq!(a.tag.op, b.tag.op);
                    rules.push((d.rule, d.position, d.queue_len));
                }
                other => panic!("diverged: {other:?}"),
            }
        }
        // First pick: request 2 (arrival position 1) out of 3 by min-rank;
        // last pick is a 1-deep queue but fallback is off, so still
        // min-rank at position 0.
        assert_eq!(
            rules,
            vec![
                (DequeueRule::MinRank, 1, 3),
                (DequeueRule::MinRank, 1, 2),
                (DequeueRule::MinRank, 0, 1),
            ]
        );
    }

    #[test]
    fn explained_dequeue_reports_fallback_and_guard() {
        let mut s = Das::new(DasConfig {
            fcfs_fallback_len: 2,
            ..Default::default()
        });
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100, 10_000, 0), now);
        s.enqueue(op(2, 1, 10, 0), now);
        let (o, d) = s.dequeue_explained(now).unwrap();
        assert_eq!(o.tag.op.request, RequestId(1));
        assert_eq!(d.rule, DequeueRule::FcfsFallback);
        assert_eq!((d.position, d.queue_len), (0, 2));

        // Starvation guard: prime the wait EWMA, then age one op way out.
        let mut s = Das::new(DasConfig {
            starvation_factor: 4.0,
            fcfs_fallback_len: 0,
            ..Default::default()
        });
        for i in 0..100 {
            let t = SimTime::from_millis(10 * i);
            s.enqueue(op(1000 + i, 100, 100, t.as_nanos() / 1000), t);
            assert!(s.dequeue(t + SimDuration::from_millis(1)).is_some());
        }
        let t0 = SimTime::from_secs(100);
        s.enqueue(op(1, 50_000, 50_000, t0.as_nanos() / 1000), t0);
        let later = t0 + SimDuration::from_millis(100);
        s.enqueue(op(2, 10, 10, later.as_nanos() / 1000), later);
        let (o, d) = s.dequeue_explained(later).unwrap();
        assert_eq!(o.tag.op.request, RequestId(1));
        assert_eq!(d.rule, DequeueRule::StarvationGuard);
        assert_eq!(d.position, 0);
    }

    #[test]
    fn work_accounting() {
        let mut s = Das::default();
        let now = SimTime::ZERO;
        s.enqueue(op(1, 100, 100, 0), now);
        s.enqueue(op(2, 200, 200, 0), now);
        assert_eq!(s.queued_work(), SimDuration::from_micros(300));
        assert_eq!(s.len(), 2);
        s.dequeue(now);
        s.dequeue(now);
        assert!(s.is_empty());
        assert_eq!(s.queued_work(), SimDuration::ZERO);
        assert!(s.dequeue(now).is_none());
    }
}
