//! Identifiers and the per-operation metadata tag that travels with every
//! key-value operation.
//!
//! The tag is the *only* cross-server information a distributed scheduler
//! may use — that is what makes DAS deployable without centralized state.

use serde::{Deserialize, Serialize};

use das_sim::time::{SimDuration, SimTime};

/// Identifies one end-user (multi-get) request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

/// Identifies one server in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ServerId(pub u32);

/// Identifies one key-value operation: the request it belongs to and its
/// index within that request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId {
    /// The owning request.
    pub request: RequestId,
    /// Index of this operation within the request (0-based).
    pub index: u32,
}

/// Scheduling metadata stamped on an operation by the coordinator at
/// dispatch time.
///
/// All estimates are the *coordinator's* view built from piggybacked server
/// reports; they may be stale or wrong — schedulers must treat them as
/// hints, not truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpTag {
    /// The operation's identity.
    pub op: OpId,
    /// When the end-user request arrived at the coordinator.
    pub request_arrival: SimTime,
    /// Number of sibling operations in the request (including this one).
    pub fanout: u32,
    /// Expected service time of this operation at its target server.
    pub local_estimate: SimDuration,
    /// Expected completion instant of the request's *bottleneck* operation
    /// (the largest expected wait + service across all siblings), as
    /// estimated at dispatch. This single absolute timestamp encodes both
    /// Rein's bottleneck size and DAS's remaining-time view: the remaining
    /// bottleneck work at time `t` is `bottleneck_eta - t`.
    pub bottleneck_eta: SimTime,
    /// The request's bottleneck *service demand* (max expected sibling
    /// service time, excluding queueing) — Rein-SBF's priority key.
    pub bottleneck_demand: SimDuration,
}

impl OpTag {
    /// Remaining bottleneck time of the owning request as seen at `now`
    /// (zero once the estimated bottleneck instant has passed).
    pub fn remaining_at(&self, now: SimTime) -> SimDuration {
        self.bottleneck_eta.saturating_since(now)
    }
}

/// An operation waiting in (or being handed to) a server's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedOp {
    /// Dispatch-time metadata.
    pub tag: OpTag,
    /// The scheduler's estimate of this op's service time at *this* server.
    /// May differ from the true demand if estimates are noisy.
    pub local_estimate: SimDuration,
    /// When this op arrived at the server.
    pub enqueued_at: SimTime,
}

impl QueuedOp {
    /// Time this op has spent waiting at the server as of `now`.
    pub fn wait_at(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.enqueued_at)
    }
}

/// A progress hint from the coordinator: the owning request's bottleneck
/// estimates changed (typically because a sibling operation completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HintUpdate {
    /// New estimated completion instant of the request's slowest pending
    /// operation.
    pub bottleneck_eta: SimTime,
    /// New largest expected *service demand* among the request's pending
    /// operations — the quantity DAS ranks by.
    pub remaining_demand: SimDuration,
}

/// Server state piggybacked on every response: the coordinator's window
/// into time-varying load and performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerReport {
    /// The reporting server.
    pub server: ServerId,
    /// Expected seconds of queued + in-service work at report time.
    pub backlog_secs: f64,
    /// EWMA-observed service rate, bytes/second.
    pub service_rate: f64,
    /// Number of queued operations.
    pub queue_len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(eta_ms: u64) -> OpTag {
        OpTag {
            op: OpId {
                request: RequestId(1),
                index: 0,
            },
            request_arrival: SimTime::ZERO,
            fanout: 3,
            local_estimate: SimDuration::from_millis(1),
            bottleneck_eta: SimTime::from_millis(eta_ms),
            bottleneck_demand: SimDuration::from_millis(2),
        }
    }

    #[test]
    fn remaining_decays_to_zero() {
        let t = tag(10);
        assert_eq!(
            t.remaining_at(SimTime::from_millis(4)),
            SimDuration::from_millis(6)
        );
        assert_eq!(t.remaining_at(SimTime::from_millis(10)), SimDuration::ZERO);
        assert_eq!(t.remaining_at(SimTime::from_millis(99)), SimDuration::ZERO);
    }

    #[test]
    fn wait_accumulates() {
        let q = QueuedOp {
            tag: tag(10),
            local_estimate: SimDuration::from_millis(1),
            enqueued_at: SimTime::from_millis(5),
        };
        assert_eq!(
            q.wait_at(SimTime::from_millis(8)),
            SimDuration::from_millis(3)
        );
        assert_eq!(q.wait_at(SimTime::from_millis(2)), SimDuration::ZERO);
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let a = OpId {
            request: RequestId(1),
            index: 0,
        };
        let b = OpId {
            request: RequestId(1),
            index: 1,
        };
        assert!(a < b);
        let set: HashSet<OpId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
