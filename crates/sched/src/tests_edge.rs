//! Cross-policy edge-case tests that don't belong to a single module:
//! empty queues, unknown-request hints, threshold drift, and tie rules.

#![cfg(test)]

use das_sim::time::{SimDuration, SimTime};

use crate::policy::PolicyKind;
use crate::rein::Rein2L;
use crate::scheduler::Scheduler;
use crate::types::{HintUpdate, OpId, OpTag, QueuedOp, RequestId};

fn op(req: u64, local_us: u64, bottleneck_us: u64) -> QueuedOp {
    QueuedOp {
        tag: OpTag {
            op: OpId {
                request: RequestId(req),
                index: 0,
            },
            request_arrival: SimTime::ZERO,
            fanout: 2,
            local_estimate: SimDuration::from_micros(local_us),
            bottleneck_eta: SimTime::from_micros(bottleneck_us),
            bottleneck_demand: SimDuration::from_micros(bottleneck_us),
        },
        local_estimate: SimDuration::from_micros(local_us),
        enqueued_at: SimTime::ZERO,
    }
}

fn all_policies() -> Vec<PolicyKind> {
    let mut p = PolicyKind::standard_set();
    p.push(PolicyKind::Edf);
    p.push(PolicyKind::LrptLast);
    p.push(PolicyKind::oracle());
    p.extend(PolicyKind::ablation_set());
    p
}

#[test]
fn empty_dequeue_returns_none_for_every_policy() {
    let now = SimTime::from_millis(1);
    for policy in all_policies() {
        let mut s = policy.build();
        assert!(s.dequeue(now).is_none(), "{}", s.name());
        assert!(s.is_empty());
        assert_eq!(s.queued_work(), SimDuration::ZERO);
    }
}

#[test]
fn hint_for_unknown_request_is_harmless() {
    let now = SimTime::from_millis(1);
    let update = HintUpdate {
        bottleneck_eta: now,
        remaining_demand: SimDuration::from_micros(1),
    };
    for policy in all_policies() {
        let mut s = policy.build();
        s.enqueue(op(1, 100, 200), now);
        s.on_hint(RequestId(999), update, now);
        assert_eq!(s.len(), 1, "{}", s.name());
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
    }
}

#[test]
fn single_op_always_served_immediately() {
    let now = SimTime::from_millis(1);
    for policy in all_policies() {
        let mut s = policy.build();
        s.enqueue(op(7, 500, 5_000), now);
        let got = s.dequeue(now).expect("single op must come out");
        assert_eq!(got.tag.op.request, RequestId(7), "{}", s.name());
    }
}

#[test]
fn rein_2l_threshold_tracks_demand_drift() {
    let now = SimTime::ZERO;
    let mut s = Rein2L::new();
    // Feed small bottlenecks: threshold settles low.
    for i in 0..200 {
        s.enqueue(op(i, 10, 100), now);
        s.dequeue(now);
    }
    let low = s.threshold_secs().unwrap();
    // Demand regime shifts 100x up: the threshold follows.
    for i in 200..600 {
        s.enqueue(op(i, 10, 10_000), now);
        s.dequeue(now);
    }
    let high = s.threshold_secs().unwrap();
    assert!(high > low * 10.0, "threshold should adapt: {low} -> {high}");
}

#[test]
fn policies_disagree_on_order_given_conflicting_signals() {
    // One op with small local/large bottleneck, one the other way round:
    // SJF and Rein-SBF must pick opposite winners — this guards against
    // accidentally wiring both to the same key.
    let now = SimTime::ZERO;
    let a = op(1, 10, 10_000); // tiny local, giant bottleneck
    let b = op(2, 500, 600); // big local, small bottleneck

    let mut sjf = PolicyKind::Sjf.build();
    sjf.enqueue(a, now);
    sjf.enqueue(b, now);
    assert_eq!(sjf.dequeue(now).unwrap().tag.op.request, RequestId(1));

    let mut sbf = PolicyKind::ReinSbf.build();
    sbf.enqueue(a, now);
    sbf.enqueue(b, now);
    assert_eq!(sbf.dequeue(now).unwrap().tag.op.request, RequestId(2));
}

#[test]
fn das_oracle_and_das_share_ranking_logic() {
    // Oracle differs only in information quality, not in ranking: with
    // identical tags both pick the same op.
    let now = SimTime::ZERO;
    let ops = [op(1, 10, 5_000), op(2, 20, 100), op(3, 30, 900)];
    let mut das = PolicyKind::das().build();
    let mut oracle = PolicyKind::oracle().build();
    for o in ops {
        das.enqueue(o, now);
        oracle.enqueue(o, now);
    }
    for _ in 0..3 {
        assert_eq!(
            das.dequeue(now).unwrap().tag.op,
            oracle.dequeue(now).unwrap().tag.op
        );
    }
}

#[test]
fn queued_work_is_sum_of_estimates_for_every_policy() {
    let now = SimTime::ZERO;
    for policy in all_policies() {
        let mut s = policy.build();
        s.enqueue(op(1, 100, 200), now);
        s.enqueue(op(2, 250, 400), now);
        s.enqueue(op(3, 50, 60), now);
        assert_eq!(
            s.queued_work(),
            SimDuration::from_micros(400),
            "{}",
            s.name()
        );
    }
}
