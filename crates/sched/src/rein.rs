//! Reimplementation of Rein's multi-get-aware heuristics (Reda et al.,
//! EuroSys 2017) — the state-of-the-art baseline the DAS paper compares
//! against.
//!
//! * [`ReinSbf`] — *Shortest Bottleneck First*: an op's priority is its
//!   request's bottleneck service demand (the largest expected op service
//!   time across the request). Static after dispatch: it does not react to
//!   queue buildup, server slowdowns, or sibling completions.
//! * [`Rein2L`] — the practical two-priority-level approximation: ops whose
//!   bottleneck demand falls below an adaptive threshold go to the high
//!   queue, the rest to the low queue; each queue is FIFO. O(1) per
//!   decision.

use std::collections::VecDeque;

use das_sim::stats::Ewma;
use das_sim::time::{SimDuration, SimTime};

use crate::baselines::das_net_tag_bytes;
use crate::scheduler::{KeyedQueue, Scheduler};
use crate::types::QueuedOp;

/// Exact Shortest-Bottleneck-First (Rein-SBF).
#[derive(Debug, Default)]
pub struct ReinSbf {
    queue: KeyedQueue,
}

impl ReinSbf {
    /// An empty SBF queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for ReinSbf {
    fn name(&self) -> &'static str {
        "Rein-SBF"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        self.queue.push(op.tag.bottleneck_demand.as_nanos(), op);
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedOp> {
        self.queue.pop()
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn metadata_bytes(&self) -> u64 {
        das_net_tag_bytes::SMALL_TAG
    }
    fn queued_work(&self) -> SimDuration {
        self.queue.queued_work()
    }
}

/// Two-priority-level approximation of SBF with an adaptive threshold.
///
/// The threshold tracks the EWMA mean of observed bottleneck demands, so
/// roughly the smaller-than-average half of requests gets the fast lane.
#[derive(Debug)]
pub struct Rein2L {
    high: VecDeque<QueuedOp>,
    low: VecDeque<QueuedOp>,
    threshold: Ewma,
    queued_work: SimDuration,
}

impl Default for Rein2L {
    fn default() -> Self {
        Self::new()
    }
}

impl Rein2L {
    /// An empty two-level queue with the default adaptation speed.
    pub fn new() -> Self {
        Rein2L {
            high: VecDeque::new(),
            low: VecDeque::new(),
            threshold: Ewma::new(0.05),
            queued_work: SimDuration::ZERO,
        }
    }

    /// Current threshold in seconds (for tests/introspection).
    pub fn threshold_secs(&self) -> Option<f64> {
        self.threshold.value()
    }
}

impl Scheduler for Rein2L {
    fn name(&self) -> &'static str {
        "Rein-2L"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        let demand = op.tag.bottleneck_demand.as_secs_f64();
        let thresh = self.threshold.value_or(demand);
        self.threshold.record(demand);
        self.queued_work += op.local_estimate;
        if demand <= thresh {
            self.high.push_back(op);
        } else {
            self.low.push_back(op);
        }
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedOp> {
        let op = self.high.pop_front().or_else(|| self.low.pop_front())?;
        self.queued_work = self.queued_work.saturating_sub(op.local_estimate);
        Some(op)
    }
    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }
    fn metadata_bytes(&self) -> u64 {
        das_net_tag_bytes::SMALL_TAG
    }
    fn queued_work(&self) -> SimDuration {
        self.queued_work
    }
}

/// Generalized multi-level Rein: `k` FIFO levels with adaptive
/// log-spaced thresholds over the bottleneck demand. Level 0 is served
/// first; within a level, FIFO. `Rein2L` is the `k = 2` special case kept
/// separate because it matches the original paper's description.
#[derive(Debug)]
pub struct ReinMultiLevel {
    levels: Vec<VecDeque<QueuedOp>>,
    /// EWMA of observed bottleneck demands; level boundaries are
    /// `mean * 4^(i - k/2)`.
    mean_demand: Ewma,
    queued_work: SimDuration,
}

impl ReinMultiLevel {
    /// A multi-level queue with `k >= 2` levels.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "need at least two levels");
        ReinMultiLevel {
            levels: (0..k).map(|_| VecDeque::new()).collect(),
            mean_demand: Ewma::new(0.05),
            queued_work: SimDuration::ZERO,
        }
    }

    fn level_of(&self, demand_secs: f64) -> usize {
        let k = self.levels.len();
        let mean = self.mean_demand.value_or(demand_secs).max(1e-12);
        // Log-spaced boundaries around the running mean, base 4.
        let ratio = (demand_secs / mean).max(1e-12);
        let idx = (ratio.log2() / 2.0 + k as f64 / 2.0).floor();
        idx.clamp(0.0, k as f64 - 1.0) as usize
    }
}

impl Scheduler for ReinMultiLevel {
    fn name(&self) -> &'static str {
        "Rein-ML"
    }
    fn enqueue(&mut self, op: QueuedOp, _now: SimTime) {
        let demand = op.tag.bottleneck_demand.as_secs_f64();
        let level = self.level_of(demand);
        self.mean_demand.record(demand);
        self.queued_work += op.local_estimate;
        self.levels[level].push_back(op);
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedOp> {
        let op = self.levels.iter_mut().find_map(|l| l.pop_front())?;
        self.queued_work = self.queued_work.saturating_sub(op.local_estimate);
        Some(op)
    }
    fn len(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }
    fn metadata_bytes(&self) -> u64 {
        das_net_tag_bytes::SMALL_TAG
    }
    fn queued_work(&self) -> SimDuration {
        self.queued_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OpId, OpTag, RequestId};

    fn op(req: u64, local_us: u64, bottleneck_us: u64) -> QueuedOp {
        QueuedOp {
            tag: OpTag {
                op: OpId {
                    request: RequestId(req),
                    index: 0,
                },
                request_arrival: SimTime::ZERO,
                fanout: 2,
                local_estimate: SimDuration::from_micros(local_us),
                bottleneck_eta: SimTime::from_micros(bottleneck_us),
                bottleneck_demand: SimDuration::from_micros(bottleneck_us),
            },
            local_estimate: SimDuration::from_micros(local_us),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn sbf_orders_by_bottleneck_not_local() {
        let mut s = ReinSbf::new();
        let now = SimTime::ZERO;
        // Request 1 has a tiny local op but a huge bottleneck elsewhere.
        s.enqueue(op(1, 1, 10_000), now);
        s.enqueue(op(2, 500, 500), now);
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(2));
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
    }

    #[test]
    fn sbf_ties_fcfs() {
        let mut s = ReinSbf::new();
        let now = SimTime::ZERO;
        s.enqueue(op(1, 10, 100), now);
        s.enqueue(op(2, 10, 100), now);
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
    }

    #[test]
    fn two_level_prioritizes_small_bottlenecks() {
        let mut s = Rein2L::new();
        let now = SimTime::ZERO;
        // Warm the threshold with a mid-size op.
        s.enqueue(op(0, 10, 1000), now);
        s.dequeue(now);
        // A big request then a small one: the small one should be served
        // first despite arriving later.
        s.enqueue(op(1, 10, 100_000), now);
        s.enqueue(op(2, 10, 10), now);
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(2));
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
        assert!(s.threshold_secs().unwrap() > 0.0);
    }

    #[test]
    fn two_level_within_level_is_fcfs() {
        let mut s = Rein2L::new();
        let now = SimTime::ZERO;
        s.enqueue(op(1, 10, 100), now);
        s.enqueue(op(2, 10, 100), now);
        s.enqueue(op(3, 10, 100), now);
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(now))
            .map(|o| o.tag.op.request.0)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn multi_level_orders_by_demand_bands() {
        let mut s = ReinMultiLevel::new(4);
        let now = SimTime::ZERO;
        // Warm the mean around 1ms.
        for i in 0..100 {
            s.enqueue(op(1000 + i, 10, 1000), now);
            s.dequeue(now);
        }
        // A giant lands in a lower level than a tiny one.
        s.enqueue(op(1, 10, 64_000), now); // 64x mean
        s.enqueue(op(2, 10, 15), now); // tiny
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(2));
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
    }

    #[test]
    fn multi_level_within_level_fcfs() {
        let mut s = ReinMultiLevel::new(3);
        let now = SimTime::ZERO;
        s.enqueue(op(1, 10, 500), now);
        s.enqueue(op(2, 10, 500), now);
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(1));
        assert_eq!(s.dequeue(now).unwrap().tag.op.request, RequestId(2));
        assert_eq!(s.name(), "Rein-ML");
    }

    #[test]
    fn multi_level_conserves_work() {
        let mut s = ReinMultiLevel::new(8);
        let now = SimTime::ZERO;
        for i in 0..30 {
            s.enqueue(op(i, 100, (i + 1) * 97), now);
        }
        assert_eq!(s.len(), 30);
        let mut n = 0;
        while s.dequeue(now).is_some() {
            n += 1;
        }
        assert_eq!(n, 30);
        assert_eq!(s.queued_work(), SimDuration::ZERO);
    }

    #[test]
    fn queue_lengths_and_work() {
        let mut s = Rein2L::new();
        let now = SimTime::ZERO;
        assert!(s.is_empty());
        s.enqueue(op(1, 100, 10), now);
        s.enqueue(op(2, 200, 1_000_000), now);
        assert_eq!(s.len(), 2);
        assert_eq!(s.queued_work(), SimDuration::from_micros(300));
        s.dequeue(now);
        s.dequeue(now);
        assert_eq!(s.queued_work(), SimDuration::ZERO);
        assert!(s.dequeue(now).is_none());
    }
}
