//! Declarative policy selection: a serde-friendly [`PolicyKind`] that every
//! experiment config uses, plus the factory turning it into a live
//! [`Scheduler`].

use serde::{Deserialize, Serialize};

use crate::baselines::{Edf, Fcfs, LrptLast, RandomOrder, Sjf};
use crate::das::{Das, DasConfig};
use crate::rein::{Rein2L, ReinMultiLevel, ReinSbf};
use crate::scheduler::Scheduler;

/// The scheduling disciplines available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PolicyKind {
    /// First-come-first-served (default baseline).
    Fcfs,
    /// Shortest job first on the local op's expected service time.
    Sjf,
    /// Earliest (arrival + bottleneck demand) first.
    Edf,
    /// The LRPT-last component in isolation.
    LrptLast,
    /// Rein's exact Shortest Bottleneck First.
    ReinSbf,
    /// Rein's two-priority-level practical variant.
    Rein2L,
    /// Generalized multi-level Rein with `levels` adaptive bands.
    ReinMl {
        /// Number of priority levels (>= 2).
        levels: usize,
    },
    /// Uniformly random service order (control baseline).
    Random {
        /// Seed for the policy's private RNG.
        seed: u64,
    },
    /// The Distributed Adaptive Scheduler with explicit configuration.
    Das {
        /// DAS tuning/ablation knobs.
        #[serde(default)]
        config: DasConfig,
    },
}

impl PolicyKind {
    /// DAS with default configuration.
    pub fn das() -> Self {
        PolicyKind::Das {
            config: DasConfig::default(),
        }
    }

    /// The centralized-oracle reference.
    pub fn oracle() -> Self {
        PolicyKind::Das {
            config: DasConfig::oracle(),
        }
    }

    /// The policy set used by the headline figures: FCFS, SJF, Rein-SBF,
    /// Rein-2L, DAS.
    pub fn standard_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Fcfs,
            PolicyKind::Sjf,
            PolicyKind::ReinSbf,
            PolicyKind::Rein2L,
            PolicyKind::das(),
        ]
    }

    /// The ablation set for Fig. 15.
    pub fn ablation_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::das(),
            PolicyKind::Das {
                config: DasConfig::without_remaining_bottleneck(),
            },
            PolicyKind::Das {
                config: DasConfig::without_adaptivity(),
            },
            PolicyKind::Das {
                config: DasConfig::without_aging(),
            },
        ]
    }

    /// Instantiates a fresh scheduler (one per server).
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::Sjf => Box::new(Sjf::new()),
            PolicyKind::Edf => Box::new(Edf::new()),
            PolicyKind::LrptLast => Box::new(LrptLast::new()),
            PolicyKind::ReinSbf => Box::new(ReinSbf::new()),
            PolicyKind::Rein2L => Box::new(Rein2L::new()),
            PolicyKind::ReinMl { levels } => Box::new(ReinMultiLevel::new(levels)),
            PolicyKind::Random { seed } => Box::new(RandomOrder::new(seed)),
            PolicyKind::Das { config } => Box::new(Das::new(config)),
        }
    }

    /// The display name (matches [`Scheduler::name`] of the built
    /// scheduler).
    pub fn name(&self) -> &'static str {
        self.build().name()
    }

    /// True if the built scheduler uses oracle-quality information.
    pub fn is_oracle(&self) -> bool {
        matches!(self, PolicyKind::Das { config } if config.oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_across_standard_set() {
        let names: std::collections::HashSet<&str> = PolicyKind::standard_set()
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names.len(), PolicyKind::standard_set().len());
    }

    #[test]
    fn build_matches_name() {
        for p in PolicyKind::standard_set() {
            assert_eq!(p.build().name(), p.name());
        }
        assert_eq!(PolicyKind::oracle().name(), "Oracle");
        assert!(PolicyKind::oracle().is_oracle());
        assert!(!PolicyKind::das().is_oracle());
        assert!(!PolicyKind::Fcfs.is_oracle());
    }

    #[test]
    fn ablation_set_has_distinct_names() {
        let names: Vec<&str> = PolicyKind::ablation_set()
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(
            names,
            vec!["DAS", "DAS-noLRPT", "DAS-noAdapt", "DAS-noAging"]
        );
    }

    #[test]
    fn serde_roundtrip() {
        for p in [
            PolicyKind::Fcfs,
            PolicyKind::Edf,
            PolicyKind::LrptLast,
            PolicyKind::ReinMl { levels: 4 },
            PolicyKind::Random { seed: 3 },
            PolicyKind::das(),
            PolicyKind::oracle(),
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: PolicyKind = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn das_config_defaults_apply_when_omitted() {
        let p: PolicyKind = serde_json::from_str(r#"{"kind":"das"}"#).unwrap();
        assert_eq!(p, PolicyKind::das());
    }
}
