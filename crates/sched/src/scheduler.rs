//! The [`Scheduler`] trait: a per-server queue discipline.
//!
//! A scheduler owns the server's wait queue. The simulated (or real) server
//! calls [`Scheduler::enqueue`] when an operation arrives and
//! [`Scheduler::dequeue`] whenever a worker frees up. Schedulers are
//! strictly local: the only remote information available is what arrives in
//! each op's [`OpTag`](crate::types::OpTag) and, for hint-driven policies,
//! through [`Scheduler::on_hint`].

use das_sim::time::{SimDuration, SimTime};

use crate::types::{HintUpdate, QueuedOp, RequestId};

/// Which selection rule produced a dequeue decision.
///
/// Used by the tracing layer to explain *why* a scheduler picked the op it
/// did. Disciplines that always serve their own head-of-queue report
/// [`DequeueRule::PolicyOrder`]; DAS distinguishes its three rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeueRule {
    /// The policy served the head of its own ordering (FCFS, SJF, EDF, …).
    PolicyOrder,
    /// DAS: queue at or below the FCFS-fallback threshold, oldest op served.
    FcfsFallback,
    /// DAS: the oldest op exceeded the starvation guard and was promoted.
    StarvationGuard,
    /// DAS: minimum remaining-demand-minus-aging rank won the scan.
    MinRank,
}

impl DequeueRule {
    /// Short machine-readable name (used as the trace `rule` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            DequeueRule::PolicyOrder => "policy-order",
            DequeueRule::FcfsFallback => "fcfs-fallback",
            DequeueRule::StarvationGuard => "starvation-guard",
            DequeueRule::MinRank => "min-rank",
        }
    }
}

/// Why and from where a dequeue picked its op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeueDecision {
    /// The rule that fired.
    pub rule: DequeueRule,
    /// Arrival-order position of the picked op before removal (0 = the
    /// oldest waiting op; > 0 means the policy reordered the queue).
    pub position: u32,
    /// Queue length before the removal.
    pub queue_len: u32,
}

/// A per-server, non-preemptive queue discipline.
pub trait Scheduler: Send {
    /// Stable machine-readable name (used as the row label in every table).
    fn name(&self) -> &'static str;

    /// Adds an operation to the wait queue.
    fn enqueue(&mut self, op: QueuedOp, now: SimTime);

    /// Removes and returns the next operation to serve, or `None` if the
    /// queue is empty.
    fn dequeue(&mut self, now: SimTime) -> Option<QueuedOp>;

    /// [`Scheduler::dequeue`] plus an explanation of the decision, for the
    /// tracing layer. Must pick **exactly** the op `dequeue` would have
    /// picked — the engine switches between the two based on whether
    /// tracing is on, and simulation results must not change.
    ///
    /// The default delegates to `dequeue` and reports
    /// [`DequeueRule::PolicyOrder`] with position 0 (head-of-own-ordering
    /// disciplines don't track arrival-order positions). DAS overrides it
    /// to report which of its rules fired and where the op sat.
    fn dequeue_explained(&mut self, now: SimTime) -> Option<(QueuedOp, DequeueDecision)> {
        let queue_len = self.len() as u32;
        let op = self.dequeue(now)?;
        Some((
            op,
            DequeueDecision {
                rule: DequeueRule::PolicyOrder,
                position: 0,
                queue_len,
            },
        ))
    }

    /// Number of queued operations.
    fn len(&self) -> usize;

    /// True when no operations are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delivers a progress hint: the owning request's bottleneck estimates
    /// changed (see [`HintUpdate`]). Only called when
    /// [`Scheduler::wants_hints`] is true.
    fn on_hint(&mut self, _request: RequestId, _update: HintUpdate, _now: SimTime) {}

    /// Extra metadata bytes this policy attaches to each dispatched op
    /// (charged to the overhead accounting).
    fn metadata_bytes(&self) -> u64 {
        0
    }

    /// Whether the coordinator should send progress hints to this policy.
    fn wants_hints(&self) -> bool {
        false
    }

    /// Whether this policy benefits from piggybacked server reports (the
    /// coordinator maintains load/rate estimates only when some policy
    /// wants them).
    fn wants_piggyback(&self) -> bool {
        false
    }

    /// Sum of `local_estimate` over all queued ops — the backlog the server
    /// advertises in its piggybacked reports.
    fn queued_work(&self) -> SimDuration;

    /// Removes and returns *every* queued op (in dequeue order). Used when
    /// a server crash-stops: the engine hands the drained ops back to the
    /// coordinator so retry/abort bookkeeping stays exact. The default
    /// repeatedly dequeues, which is correct for any discipline.
    fn drain(&mut self, now: SimTime) -> Vec<QueuedOp> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(op) = self.dequeue(now) {
            out.push(op);
        }
        out
    }
}

/// A FIFO-stable priority queue keyed once at enqueue time: the workhorse
/// behind SJF, Rein-SBF and EDF.
///
/// Lower keys dequeue first; equal keys dequeue in arrival order.
#[derive(Debug)]
pub struct KeyedQueue {
    heap: std::collections::BinaryHeap<Entry>,
    seq: u64,
    queued_work: SimDuration,
}

#[derive(Debug)]
struct Entry {
    key: u64,
    seq: u64,
    op: QueuedOp,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (key, seq).
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl Default for KeyedQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        KeyedQueue {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            queued_work: SimDuration::ZERO,
        }
    }

    /// Inserts `op` with priority `key` (lower dequeues first).
    pub fn push(&mut self, key: u64, op: QueuedOp) {
        let seq = self.seq;
        self.seq += 1;
        self.queued_work += op.local_estimate;
        self.heap.push(Entry { key, seq, op });
    }

    /// Removes the lowest-key (oldest on ties) operation.
    pub fn pop(&mut self) -> Option<QueuedOp> {
        let e = self.heap.pop()?;
        self.queued_work = self.queued_work.saturating_sub(e.op.local_estimate);
        Some(e.op)
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total estimated work queued.
    pub fn queued_work(&self) -> SimDuration {
        self.queued_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OpId, OpTag};

    pub(crate) fn op(req: u64, idx: u32, est_us: u64, now: SimTime) -> QueuedOp {
        QueuedOp {
            tag: OpTag {
                op: OpId {
                    request: RequestId(req),
                    index: idx,
                },
                request_arrival: now,
                fanout: 1,
                local_estimate: SimDuration::from_micros(est_us),
                bottleneck_eta: now + SimDuration::from_micros(est_us),
                bottleneck_demand: SimDuration::from_micros(est_us),
            },
            local_estimate: SimDuration::from_micros(est_us),
            enqueued_at: now,
        }
    }

    #[test]
    fn keyed_queue_orders_by_key_then_fifo() {
        let mut q = KeyedQueue::new();
        let t = SimTime::ZERO;
        q.push(5, op(1, 0, 10, t));
        q.push(3, op(2, 0, 10, t));
        q.push(5, op(3, 0, 10, t));
        assert_eq!(q.pop().unwrap().tag.op.request, RequestId(2));
        assert_eq!(q.pop().unwrap().tag.op.request, RequestId(1));
        assert_eq!(q.pop().unwrap().tag.op.request, RequestId(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn drain_empties_every_policy() {
        let mut policies = crate::policy::PolicyKind::standard_set();
        policies.push(crate::policy::PolicyKind::oracle());
        for policy in policies {
            let mut s = policy.build();
            let t = SimTime::ZERO;
            for i in 0..5 {
                s.enqueue(op(i, 0, 10 * (i + 1), t), t);
            }
            let drained = s.drain(t);
            assert_eq!(drained.len(), 5, "{}", s.name());
            assert!(s.is_empty(), "{}", s.name());
            assert_eq!(s.queued_work(), SimDuration::ZERO, "{}", s.name());
            assert!(s.drain(t).is_empty());
        }
    }

    #[test]
    fn keyed_queue_tracks_work() {
        let mut q = KeyedQueue::new();
        let t = SimTime::ZERO;
        q.push(1, op(1, 0, 100, t));
        q.push(2, op(2, 0, 200, t));
        assert_eq!(q.queued_work(), SimDuration::from_micros(300));
        q.pop();
        assert_eq!(q.queued_work(), SimDuration::from_micros(200));
        q.pop();
        assert_eq!(q.queued_work(), SimDuration::ZERO);
        assert!(q.is_empty());
    }
}
