//! # das-sched — multi-get scheduling disciplines
//!
//! The core contribution of the reproduced paper: per-server, non-preemptive
//! queue disciplines for key-value operations belonging to multi-get
//! requests, where the request only completes when its **last** operation
//! completes.
//!
//! * [`types`] — ids, the per-op metadata tag, server reports;
//! * [`scheduler`] — the [`Scheduler`] trait every policy implements;
//! * [`baselines`] — FCFS, SJF, EDF, LRPT-last;
//! * [`rein`] — Rein-SBF and its two-level practical variant (EuroSys '17,
//!   the state-of-the-art baseline);
//! * [`das`] — the **Distributed Adaptive Scheduler** (see its module docs
//!   for the ranking rule and how it combines SRPT-first with LRPT-last);
//! * [`policy`] — serde-friendly policy selection for experiment configs.
//!
//! ```
//! use das_sched::prelude::*;
//! use das_sim::time::{SimDuration, SimTime};
//!
//! let mut sched = PolicyKind::das().build();
//! let now = SimTime::ZERO;
//! let op = QueuedOp {
//!     tag: OpTag {
//!         op: OpId { request: RequestId(1), index: 0 },
//!         request_arrival: now,
//!         fanout: 4,
//!         local_estimate: SimDuration::from_micros(80),
//!         bottleneck_eta: now + SimDuration::from_micros(400),
//!         bottleneck_demand: SimDuration::from_micros(400),
//!     },
//!     local_estimate: SimDuration::from_micros(80),
//!     enqueued_at: now,
//! };
//! sched.enqueue(op, now);
//! assert_eq!(sched.dequeue(now).unwrap().tag.op.request, RequestId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod das;
pub mod policy;
pub mod rein;
pub mod scheduler;
#[cfg(test)]
mod tests_edge;
pub mod types;

pub use das::{Das, DasConfig};
pub use policy::PolicyKind;
pub use scheduler::Scheduler;
pub use types::{OpId, OpTag, QueuedOp, RequestId, ServerId, ServerReport};

/// Frequently used items in one import.
pub mod prelude {
    pub use crate::das::{Das, DasConfig};
    pub use crate::policy::PolicyKind;
    pub use crate::scheduler::Scheduler;
    pub use crate::types::{OpId, OpTag, QueuedOp, RequestId, ServerId, ServerReport};
}
