//! Rendering experiment results into the uniform Markdown blocks used by
//! EXPERIMENTS.md and printed by every benchmark binary.

use das_metrics::summary::ComparisonTable;
use das_net::accounting::TrafficClass;
use das_trace::diff::{LadderDiff, Segment, TraceDiff};
use das_trace::telemetry::{ServerSeries, Telemetry};
use das_trace::BlameBreakdown;

use crate::experiment::ExperimentResult;

/// Renders the standard RCT table plus the context line (measured
/// requests, utilization, lower bound).
pub fn render_experiment(result: &ExperimentResult) -> String {
    let mut out = result.table().to_markdown();
    if let Some(run) = result.runs.first() {
        let ci = match run.mean_rct_ci95 {
            Some(hw) => format!("; mean RCT 95% CI +-{:.3} ms (batch means)", hw * 1e3),
            None => String::new(),
        };
        out.push_str(&format!(
            "\n_{} measured requests; mean utilization {:.2}; zero-queueing lower bound {:.3} ms{}_\n",
            run.measured,
            run.mean_utilization,
            run.lower_bound_mean_rct * 1e3,
            ci,
        ));
    }
    out
}

/// Builds the overhead table (Table 3): metadata bytes/request, hint
/// messages/request, piggyback bytes/request.
pub fn overhead_table(result: &ExperimentResult) -> ComparisonTable {
    let mut t = ComparisonTable::new(
        format!("{} — scheduling overhead", result.name),
        vec![
            "metadata B/req".into(),
            "piggyback B/req".into(),
            "hint msgs/req".into(),
            "hint B/req".into(),
            "total overhead B/req".into(),
        ],
    );
    for run in &result.runs {
        let n = run.measured.max(run.completed).max(1) as f64;
        t.push_row(
            run.policy.clone(),
            vec![
                run.traffic.bytes(TrafficClass::SchedulingMetadata) as f64 / n,
                run.traffic.bytes(TrafficClass::PiggybackReport) as f64 / n,
                run.traffic.messages(TrafficClass::ProgressHint) as f64 / n,
                run.traffic.bytes(TrafficClass::ProgressHint) as f64 / n,
                run.traffic.overhead_bytes() as f64 / n,
            ],
        );
    }
    t
}

/// Builds the fairness table (Table 4): p99.9 slowdown per fan-out class.
pub fn fairness_table(result: &ExperimentResult) -> ComparisonTable {
    let classes = result
        .runs
        .first()
        .map(|r| r.slowdown.class_count())
        .unwrap_or(0);
    let mut columns: Vec<String> = Vec::new();
    if let Some(run) = result.runs.first() {
        for c in 0..classes {
            columns.push(format!("fanout {} p999", run.slowdown.class_label(c)));
        }
    }
    columns.push("overall p999".into());
    columns.push("overall max".into());
    let mut t = ComparisonTable::new(
        format!("{} — slowdown by fan-out class", result.name),
        columns,
    );
    for run in &result.runs {
        let mut values: Vec<f64> = (0..classes)
            .map(|c| run.slowdown.class_stats(c).3)
            .collect();
        values.push(run.slowdown.overall_p999());
        values.push(run.slowdown.overall_max());
        t.push_row(run.policy.clone(), values);
    }
    t
}

/// Renders an RCT-over-time comparison (Figs. 11–12) as a Markdown table:
/// one row per time bin, one column per policy.
pub fn timeseries_table(result: &ExperimentResult, title: &str) -> Option<ComparisonTable> {
    let series: Vec<(&str, &das_metrics::timeseries::TimeSeries)> = result
        .runs
        .iter()
        .filter_map(|r| r.rct_over_time.as_ref().map(|ts| (r.policy.as_str(), ts)))
        .collect();
    if series.is_empty() {
        return None;
    }
    let bins = series.iter().map(|(_, ts)| ts.bins().len()).max()?;
    let mut t = ComparisonTable::new(
        title,
        series
            .iter()
            .map(|(p, _)| format!("{p} mean RCT (ms)"))
            .collect(),
    );
    for bin in 0..bins {
        let start = series[0].1.bin_width() * bin as f64;
        let values: Vec<f64> = series
            .iter()
            .map(|(_, ts)| ts.bins().get(bin).map(|b| b.mean() * 1e3).unwrap_or(0.0))
            .collect();
        t.push_row(format!("t={start:.2}s"), values);
    }
    Some(t)
}

/// Per-policy critical-path blame, reconstructed from each run's trace.
/// Policies whose run carried no trace (or no completed traced request)
/// are skipped; `None` when nothing was traced at all.
fn blames(result: &ExperimentResult) -> Vec<(&str, BlameBreakdown)> {
    result
        .runs
        .iter()
        .filter_map(|r| {
            let log = r.trace.as_ref()?;
            let b = BlameBreakdown::from_log(log);
            (b.requests > 0).then_some((r.policy.as_str(), b))
        })
        .collect()
}

/// Builds the RCT blame table (Table 7): mean traced RCT plus the share of
/// it each critical-path segment is responsible for, one row per policy.
///
/// Returns `None` unless at least one run was traced.
pub fn blame_table(result: &ExperimentResult) -> Option<ComparisonTable> {
    let blames = blames(result);
    if blames.is_empty() {
        return None;
    }
    let mut t = ComparisonTable::new(
        format!("{} — RCT critical-path blame", result.name),
        vec![
            "traced reqs".into(),
            "mean RCT (ms)".into(),
            "stall (%)".into(),
            "net req (%)".into(),
            "queue (%)".into(),
            "service (%)".into(),
            "net resp (%)".into(),
        ],
    );
    for (policy, b) in blames {
        let mut values = vec![b.requests as f64, b.mean_rct_secs * 1e3];
        values.extend(b.segments().iter().map(|&(_, v)| b.percent_of_rct(v)));
        t.push_row(policy, values);
    }
    Some(t)
}

/// Per-policy stacked-bar rows (label + mean per-segment milliseconds) for
/// [`das_metrics::ascii::stacked_bars`].
pub fn blame_rows(result: &ExperimentResult) -> Vec<(String, Vec<(&'static str, f64)>)> {
    blames(result)
        .into_iter()
        .map(|(policy, b)| {
            (
                policy.to_string(),
                b.segments().iter().map(|&(n, v)| (n, v * 1e3)).collect(),
            )
        })
        .collect()
}

/// Builds the blame-diff tables for a paired trace diff (`B − A`):
/// match statistics, the per-segment delta attribution (whose "mean Δ"
/// column sums to the total RCT delta row — the telescoping invariant),
/// and the dominant-segment migration matrix.
pub fn blame_diff_tables(a_name: &str, b_name: &str, d: &TraceDiff) -> Vec<ComparisonTable> {
    let mut tables = Vec::new();

    let mut stats = ComparisonTable::new(
        format!("blame diff {a_name} → {b_name} — matched requests"),
        vec![
            "matched".into(),
            format!("only {a_name}"),
            format!("only {b_name}"),
            "moved server".into(),
            "moved bottleneck".into(),
        ],
    );
    stats.push_row(
        "requests",
        vec![
            d.matched as f64,
            d.only_a as f64,
            d.only_b as f64,
            d.moved_server as f64,
            d.moved_segment as f64,
        ],
    );
    tables.push(stats);

    let mut seg = ComparisonTable::new(
        format!("blame diff {a_name} → {b_name} — per-segment RCT delta"),
        vec![
            format!("{a_name} mean (ms)"),
            format!("{b_name} mean (ms)"),
            "mean Δ (ms)".into(),
            format!("Δ vs {a_name} seg (%)"),
            "share of total Δ (%)".into(),
            "p99 Δ (ms)".into(),
        ],
    );
    let total_delta = d.mean_rct_delta_secs();
    for s in Segment::ALL {
        let (a, b) = (d.mean_a_secs(s), d.mean_b_secs(s));
        let delta = d.mean_delta_secs(s);
        seg.push_row(
            s.label(),
            vec![
                a * 1e3,
                b * 1e3,
                delta * 1e3,
                if a > 0.0 { delta / a * 100.0 } else { 0.0 },
                if total_delta != 0.0 {
                    delta / total_delta * 100.0
                } else {
                    0.0
                },
                d.p99_delta_secs(s) * 1e3,
            ],
        );
    }
    seg.push_row(
        "total RCT",
        vec![
            d.mean_rct_a_secs() * 1e3,
            d.mean_rct_b_secs() * 1e3,
            total_delta * 1e3,
            if d.mean_rct_a_secs() > 0.0 {
                total_delta / d.mean_rct_a_secs() * 100.0
            } else {
                0.0
            },
            100.0,
            d.p99_rct_delta_secs() * 1e3,
        ],
    );
    tables.push(seg);

    let mut mig = ComparisonTable::new(
        format!("blame diff {a_name} → {b_name} — dominant-segment migration (rows: {a_name}, cols: {b_name})"),
        Segment::ALL.iter().map(|s| s.label().to_string()).collect(),
    );
    for from in Segment::ALL {
        mig.push_row(
            from.label(),
            Segment::ALL
                .iter()
                .map(|to| d.migration[from.index()][to.index()] as f64)
                .collect(),
        );
    }
    tables.push(mig);

    tables
}

/// Per-segment mean-delta rows (label + signed milliseconds) for
/// [`das_metrics::ascii::diverging_bars`].
pub fn blame_diff_delta_rows(d: &TraceDiff) -> Vec<(String, f64)> {
    Segment::ALL
        .iter()
        .map(|&s| (s.label().to_string(), d.mean_delta_secs(s) * 1e3))
        .collect()
}

/// Renders a complete blame-diff report: the three tables plus the
/// diverging delta-bar chart, as printed by `das_experiment blame-diff`.
pub fn render_blame_diff(a_name: &str, b_name: &str, d: &TraceDiff) -> String {
    let mut out = String::new();
    for t in blame_diff_tables(a_name, b_name, d) {
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    if let Some(chart) = das_metrics::ascii::diverging_bars(&blame_diff_delta_rows(d), 30) {
        out.push_str(&format!("mean Δ per segment, ms ({b_name} − {a_name}):\n"));
        out.push_str(&chart);
    }
    if let Some(s) = d.dominant_negative_segment() {
        out.push_str(&format!(
            "\ndominant improvement: {} ({:+.3} ms mean)\n",
            s.label(),
            d.mean_delta_secs(s) * 1e3
        ));
    }
    out
}

/// Tables for an N-way policy ladder: the per-rung segment means, the
/// per-step mean deltas (whose columns telescope exactly to the
/// end-to-end column), and the per-server drill-down grouped by the
/// baseline's completing server. `names` labels the rungs, baseline
/// first, and must have one entry per rung.
pub fn ladder_tables(names: &[String], l: &LadderDiff) -> Vec<ComparisonTable> {
    let rungs = l.steps.len() + 1;
    assert_eq!(names.len(), rungs, "one name per rung");
    let mut tables = Vec::new();

    // Rung r's mean segments: step r-1's B side (rung 0 = step 0's A side).
    let rung_mean = |r: usize, s: Segment| {
        if r == 0 {
            l.steps[0].mean_a_secs(s)
        } else {
            l.steps[r - 1].mean_b_secs(s)
        }
    };
    let rung_rct = |r: usize| {
        if r == 0 {
            l.steps[0].mean_rct_a_secs()
        } else {
            l.steps[r - 1].mean_rct_b_secs()
        }
    };

    let mut means = ComparisonTable::new(
        format!("policy ladder — per-rung segment means (ms, {} matched)", l.matched),
        names.iter().map(|n| format!("{n} (ms)")).collect(),
    );
    for s in Segment::ALL {
        means.push_row(s.label(), (0..rungs).map(|r| rung_mean(r, s) * 1e3).collect());
    }
    means.push_row("total RCT", (0..rungs).map(|r| rung_rct(r) * 1e3).collect());
    tables.push(means);

    let mut step_cols: Vec<String> = (0..l.steps.len())
        .map(|i| format!("{} → {} (ms)", names[i], names[i + 1]))
        .collect();
    step_cols.push("end-to-end (ms)".into());
    let mut deltas = ComparisonTable::new(
        "policy ladder — mean Δ per step (columns telescope exactly to end-to-end)",
        step_cols,
    );
    for s in Segment::ALL {
        let mut row: Vec<f64> = l.steps.iter().map(|d| d.mean_delta_secs(s) * 1e3).collect();
        row.push(l.end_to_end.mean_delta_secs(s) * 1e3);
        deltas.push_row(s.label(), row);
    }
    let mut row: Vec<f64> = l.steps.iter().map(|d| d.mean_rct_delta_secs() * 1e3).collect();
    row.push(l.end_to_end.mean_rct_delta_secs() * 1e3);
    deltas.push_row("total RCT", row);
    tables.push(deltas);

    let mut reorder = ComparisonTable::new(
        "policy ladder — matched-request movement per step",
        (0..l.steps.len())
            .map(|i| format!("{} → {}", names[i], names[i + 1]))
            .collect(),
    );
    reorder.push_row(
        "moved server",
        l.steps.iter().map(|d| d.moved_server as f64).collect(),
    );
    reorder.push_row(
        "moved bottleneck",
        l.steps.iter().map(|d| d.moved_segment as f64).collect(),
    );
    tables.push(reorder);

    let mut servers = ComparisonTable::new(
        "policy ladder — per-server mean RCT by rung (grouped by baseline server)",
        names.iter().map(|n| format!("{n} (ms)")).collect(),
    );
    for row in &l.servers {
        servers.push_row(
            format!("server {} ({} req)", row.server, row.matched),
            row.sum_rct_ns
                .iter()
                .map(|&ns| ns as f64 * 1e-6 / row.matched as f64)
                .collect(),
        );
    }
    tables.push(servers);

    let mut queues = ComparisonTable::new(
        "policy ladder — per-server mean queue wait by rung (grouped by baseline server)",
        names.iter().map(|n| format!("{n} (ms)")).collect(),
    );
    for row in &l.servers {
        queues.push_row(
            format!("server {} ({} req)", row.server, row.matched),
            row.sum_ns
                .iter()
                .map(|s| s[Segment::Queue.index()] as f64 * 1e-6 / row.matched as f64)
                .collect(),
        );
    }
    tables.push(queues);

    tables
}

/// Renders a complete ladder report: the tables plus a diverging bar
/// chart of the end-to-end per-segment deltas, as printed by
/// `das_experiment blame-diff` with three or more traces.
pub fn render_ladder(names: &[String], l: &LadderDiff) -> String {
    let mut out = String::new();
    for t in ladder_tables(names, l) {
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    if let Some(chart) = das_metrics::ascii::diverging_bars(&blame_diff_delta_rows(&l.end_to_end), 30)
    {
        out.push_str(&format!(
            "mean Δ per segment, ms ({} − {}):\n",
            names[names.len() - 1],
            names[0]
        ));
        out.push_str(&chart);
    }
    if let Some(s) = l.end_to_end.dominant_negative_segment() {
        out.push_str(&format!(
            "\ndominant end-to-end improvement: {} ({:+.3} ms mean)\n",
            s.label(),
            l.end_to_end.mean_delta_secs(s) * 1e3
        ));
    }
    out
}

/// The cross-scenario summary table of the regression corpus (Table 10):
/// one row per scenario's paired blame diff (`B − A`, conventionally
/// FCFS → DAS), with the total mean-RCT delta and its exact per-segment
/// attribution — the five Δ columns sum to the total Δ column per row,
/// the telescoping invariant applied corpus-wide.
pub fn corpus_diff_table(
    a_name: &str,
    b_name: &str,
    rows: &[(String, TraceDiff)],
) -> ComparisonTable {
    let mut cols = vec![
        "matched".into(),
        format!("{a_name} mean (ms)"),
        format!("{b_name} mean (ms)"),
        "Δ total (ms)".into(),
    ];
    cols.extend(Segment::ALL.iter().map(|s| format!("Δ {} (ms)", s.label())));
    let mut t = ComparisonTable::new(
        format!("scenario corpus — blame diff {a_name} → {b_name} per scenario"),
        cols,
    );
    for (title, d) in rows {
        let mut vals = vec![
            d.matched as f64,
            d.mean_rct_a_secs() * 1e3,
            d.mean_rct_b_secs() * 1e3,
            d.mean_rct_delta_secs() * 1e3,
        ];
        vals.extend(Segment::ALL.iter().map(|&s| d.mean_delta_secs(s) * 1e3));
        t.push_row(title.clone(), vals);
    }
    t
}

/// The per-server telemetry table behind `das_experiment top`: one row
/// per server, sorted by busy occupancy (descending; ties by server id),
/// with the epoch-count totals alongside.
pub fn telemetry_table(t: &Telemetry) -> ComparisonTable {
    let mut table = ComparisonTable::new(
        format!(
            "per-server telemetry — {} epochs × {} ms",
            t.epochs,
            t.epoch_ns as f64 / 1e6
        ),
        vec![
            "busy (%)".into(),
            "mean depth".into(),
            "peak depth".into(),
            "peak demand (ms)".into(),
            "enq".into(),
            "done".into(),
            "reorders".into(),
            "sheds".into(),
            "retries".into(),
            "hedges".into(),
            "batched".into(),
            "hints".into(),
        ],
    );
    let mut order: Vec<&ServerSeries> = t.servers.values().collect();
    order.sort_by(|a, b| {
        b.total_busy_ns()
            .cmp(&a.total_busy_ns())
            .then(a.server.cmp(&b.server))
    });
    for s in order {
        table.push_row(
            format!("server {}", s.server),
            vec![
                t.busy_fraction(s) * 100.0,
                t.mean_queue_len(s),
                s.peak_queue_len() as f64,
                s.peak_demand_ns() as f64 / 1e6,
                ServerSeries::total(&s.enqueues) as f64,
                ServerSeries::total(&s.completions) as f64,
                ServerSeries::total(&s.reorders) as f64,
                ServerSeries::total(&s.sheds) as f64,
                ServerSeries::total(&s.retries) as f64,
                ServerSeries::total(&s.hedges) as f64,
                ServerSeries::total(&s.batched_ops) as f64,
                ServerSeries::total(&s.hints) as f64,
            ],
        );
    }
    table
}

/// Renders the `das_experiment top` report: the per-server table plus a
/// busy-occupancy sparkline panel (one line per server, time left to
/// right).
pub fn render_top(t: &Telemetry) -> String {
    let mut out = telemetry_table(t).to_markdown();
    let series: Vec<(String, Vec<f64>)> = t
        .servers
        .values()
        .map(|s| (format!("server {}", s.server), t.busy_series(s)))
        .collect();
    if !series.is_empty() {
        let panel: Vec<(&str, Vec<f64>)> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        out.push_str("\nbusy occupancy over time (one epoch per column):\n");
        out.push_str(&das_metrics::ascii::sparkline_panel(&panel));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use das_sched::policy::PolicyKind;
    use das_store::config::ClusterConfig;
    use das_workload::generator::WorkloadSpec;
    use das_workload::spec::{ArrivalConfig, FanoutConfig, PopularityConfig, SizeConfig};

    fn tiny_result(timeseries: bool) -> ExperimentResult {
        let cluster = ClusterConfig {
            servers: 4,
            ..Default::default()
        };
        let workload = WorkloadSpec {
            n_keys: 1000,
            arrival: ArrivalConfig::Poisson { rate: 500.0 },
            fanout: FanoutConfig::Uniform { min: 1, max: 4 },
            sizes: SizeConfig::Fixed { bytes: 10_000 },
            popularity: PopularityConfig::Uniform,
            hot_key_size_cap: None,
            write_fraction: 0.0,
        };
        let mut e = ExperimentConfig::new("tiny", workload, cluster);
        e.horizon_secs = 0.5;
        e.warmup_secs = 0.0;
        e.policies = vec![PolicyKind::Fcfs, PolicyKind::das()];
        if timeseries {
            e.rct_timeseries_bin_secs = Some(0.1);
        }
        e.run().unwrap()
    }

    fn traced_result() -> ExperimentResult {
        let cluster = ClusterConfig {
            servers: 4,
            ..Default::default()
        };
        let workload = WorkloadSpec {
            n_keys: 1000,
            arrival: ArrivalConfig::Poisson { rate: 500.0 },
            fanout: FanoutConfig::Uniform { min: 1, max: 4 },
            sizes: SizeConfig::Fixed { bytes: 10_000 },
            popularity: PopularityConfig::Uniform,
            hot_key_size_cap: None,
            write_fraction: 0.0,
        };
        let mut e = ExperimentConfig::new("traced", workload, cluster);
        e.horizon_secs = 0.5;
        e.warmup_secs = 0.0;
        e.policies = vec![PolicyKind::Fcfs, PolicyKind::das()];
        e.trace = das_trace::TraceConfig::enabled();
        e.run().unwrap()
    }

    #[test]
    fn blame_table_needs_a_trace() {
        assert!(blame_table(&tiny_result(false)).is_none());
        assert!(blame_rows(&tiny_result(false)).is_empty());
        let r = traced_result();
        let t = blame_table(&r).unwrap();
        assert_eq!(t.rows().len(), 2);
        // The five segment percentages account for the whole RCT.
        for policy in ["FCFS", "DAS"] {
            let total: f64 = ["stall (%)", "net req (%)", "queue (%)", "service (%)", "net resp (%)"]
                .iter()
                .map(|c| t.value(policy, c).unwrap())
                .sum();
            assert!((total - 100.0).abs() < 1e-6, "{policy}: {total}");
        }
        let rows = blame_rows(&r);
        assert_eq!(rows.len(), 2);
        assert!(das_metrics::ascii::stacked_bars(&rows, 40).is_some());
    }

    #[test]
    fn blame_diff_report_telescopes_and_renders() {
        let r = traced_result();
        let log_a = r.run("FCFS").unwrap().trace.as_ref().unwrap();
        let log_b = r.run("DAS").unwrap().trace.as_ref().unwrap();
        let d = das_trace::diff_traces(log_a, log_b).unwrap();
        assert!(d.matched > 0);

        let tables = blame_diff_tables("FCFS", "DAS", &d);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].value("requests", "matched"), Some(d.matched as f64));
        // The per-segment mean Δ column sums to the total-RCT Δ row.
        let seg = &tables[1];
        let total: f64 = ["stall", "net req", "queue", "service", "net resp"]
            .iter()
            .map(|l| seg.value(l, "mean Δ (ms)").unwrap())
            .sum();
        let rct = seg.value("total RCT", "mean Δ (ms)").unwrap();
        assert!((total - rct).abs() < 1e-9, "{total} vs {rct}");
        // Migration matrix counts every matched request exactly once.
        let mig_total: f64 = tables[2].rows().iter().flat_map(|r| r.values.iter()).sum();
        assert_eq!(mig_total, d.matched as f64);

        let md = render_blame_diff("FCFS", "DAS", &d);
        assert!(md.contains("matched requests"));
        assert!(md.contains("per-segment RCT delta"));
        assert!(md.contains("migration"));
        assert!(das_metrics::ascii::diverging_bars(&blame_diff_delta_rows(&d), 30).is_some());
    }

    #[test]
    fn corpus_table_telescopes_per_row() {
        let r = traced_result();
        let log_a = r.run("FCFS").unwrap().trace.as_ref().unwrap();
        let log_b = r.run("DAS").unwrap().trace.as_ref().unwrap();
        let d = das_trace::diff_traces(log_a, log_b).unwrap();
        let rows = vec![("tiny scenario".to_string(), d)];

        let t = corpus_diff_table("FCFS", "DAS", &rows);
        assert_eq!(t.rows().len(), 1);
        let label = "tiny scenario";
        assert_eq!(t.value(label, "matched"), Some(rows[0].1.matched as f64));
        // The five Δ segment columns sum exactly to the Δ total column.
        let seg_sum: f64 = ["stall", "net req", "queue", "service", "net resp"]
            .iter()
            .map(|s| t.value(label, &format!("Δ {s} (ms)")).unwrap())
            .sum();
        let total = t.value(label, "Δ total (ms)").unwrap();
        assert!((seg_sum - total).abs() < 1e-9, "{seg_sum} vs {total}");
    }

    fn traced_ladder_result() -> ExperimentResult {
        let cluster = ClusterConfig {
            servers: 4,
            ..Default::default()
        };
        let workload = WorkloadSpec {
            n_keys: 1000,
            arrival: ArrivalConfig::Poisson { rate: 500.0 },
            fanout: FanoutConfig::Uniform { min: 1, max: 4 },
            sizes: SizeConfig::Fixed { bytes: 10_000 },
            popularity: PopularityConfig::Uniform,
            hot_key_size_cap: None,
            write_fraction: 0.0,
        };
        let mut e = ExperimentConfig::new("ladder", workload, cluster);
        e.horizon_secs = 0.5;
        e.warmup_secs = 0.0;
        e.policies = vec![PolicyKind::Fcfs, PolicyKind::ReinSbf, PolicyKind::das()];
        e.trace = das_trace::TraceConfig::enabled();
        e.run().unwrap()
    }

    #[test]
    fn ladder_report_telescopes_and_renders() {
        let r = traced_ladder_result();
        let logs: Vec<&das_trace::TraceLog> =
            r.runs.iter().map(|run| run.trace.as_ref().unwrap()).collect();
        let l = das_trace::ladder_diff(&logs).unwrap();
        assert!(l.matched > 0);
        let names: Vec<String> = ["FCFS", "Rein-SBF", "DAS"]
            .iter()
            .map(|s| s.to_string())
            .collect();

        let tables = ladder_tables(&names, &l);
        assert_eq!(tables.len(), 5);
        // Table 1: per-step mean Δ columns telescope to the end-to-end
        // column, segment row by segment row.
        let step = &tables[1];
        for label in ["stall", "net req", "queue", "service", "net resp", "total RCT"] {
            let steps_sum: f64 = step
                .columns()
                .iter()
                .filter(|c| c.contains('→'))
                .map(|c| step.value(label, c).unwrap())
                .sum();
            let end = step.value(label, "end-to-end (ms)").unwrap();
            assert!((steps_sum - end).abs() < 1e-9, "{label}: {steps_sum} vs {end}");
        }
        // The per-server tables carry one column per rung and group every
        // matched request exactly once.
        assert_eq!(tables[3].columns().len(), names.len());
        let grouped: u64 = l.servers.iter().map(|s| s.matched).sum();
        assert_eq!(grouped, l.matched);

        let md = render_ladder(&names, &l);
        for n in &names {
            assert!(md.contains(n.as_str()), "missing rung {n}");
        }
        assert!(md.contains("telescope"));
    }

    #[test]
    fn telemetry_report_covers_every_discovered_server() {
        let r = traced_ladder_result();
        let log = r.runs.last().unwrap().trace.as_ref().unwrap();
        let t = das_trace::telemetry::fold(log, &das_trace::TelemetryConfig::default());
        assert!(!t.servers.is_empty());

        let table = telemetry_table(&t);
        assert_eq!(table.rows().len(), t.servers.len());
        assert!(table.columns().iter().any(|c| c == "busy (%)"));
        for s in t.servers.values() {
            let label = format!("server {}", s.server);
            let busy = table.value(&label, "busy (%)").unwrap();
            assert!((0.0..=100.0).contains(&busy), "{label}: busy {busy}");
        }

        let md = render_top(&t);
        assert!(md.contains("per-server telemetry"));
        assert!(md.contains("one epoch per column"));
    }

    #[test]
    fn render_contains_policies_and_context() {
        let r = tiny_result(false);
        let md = render_experiment(&r);
        assert!(md.contains("FCFS"));
        assert!(md.contains("DAS"));
        assert!(md.contains("lower bound"));
    }

    #[test]
    fn overhead_table_has_das_overhead() {
        let r = tiny_result(false);
        let t = overhead_table(&r);
        assert_eq!(t.value("FCFS", "total overhead B/req"), Some(0.0));
        assert!(t.value("DAS", "metadata B/req").unwrap() > 0.0);
    }

    #[test]
    fn fairness_table_shape() {
        let r = tiny_result(false);
        let t = fairness_table(&r);
        assert_eq!(t.rows().len(), 2);
        assert!(t.columns().iter().any(|c| c.contains("overall p999")));
    }

    #[test]
    fn timeseries_table_present_only_when_recorded() {
        assert!(timeseries_table(&tiny_result(false), "x").is_none());
        let t = timeseries_table(&tiny_result(true), "spike").unwrap();
        assert!(!t.rows().is_empty());
        assert_eq!(t.columns().len(), 2);
    }
}
