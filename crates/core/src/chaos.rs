//! Bridge between the chaos harness and the experiment toolchain.
//!
//! A minimized [`ChaosCase`] is only a useful artifact if the ordinary
//! tooling can replay it: [`experiment_config`] converts a case into an
//! [`ExperimentConfig`] whose `run_trace` over the case's pinned request
//! trace is **bit-identical** to [`ChaosCase::run_policy`] (the equivalence
//! test below byte-diffs the event logs). [`write_artifacts`] lays a
//! reproducer out on disk in exactly the shape `das_experiment replay`
//! consumes:
//!
//! ```text
//! <slug>.case.json      the self-contained Reproducer (case + verdict)
//! <slug>.config.json    ExperimentConfig for `das_experiment replay`
//! <slug>.workload.jsonl the pinned request trace (das_workload format)
//! <slug>.faults.json    the FaultProfile alone, for `replay --faults`
//! <slug>.overload.json  the OverloadProfile alone, for `replay --overload`
//! ```
//!
//! so `das_experiment replay <slug>.config.json <slug>.workload.jsonl`
//! reproduces the violating pair, and the split-out fault/overload files
//! let `replay --faults/--overload` graft the adversarial schedule onto
//! any other config.

use std::path::{Path, PathBuf};

use das_chaos::{ChaosCase, Reproducer};
use das_sched::policy::PolicyKind;
use das_trace::TraceConfig;
use das_workload::trace::write_trace;

use crate::experiment::ExperimentConfig;

/// The [`ExperimentConfig`] equivalent of a chaos case: same cluster,
/// seed, horizon, fault and overload profiles, with the FCFS/DAS pair as
/// the policy set and event tracing armed (chaos runs always trace).
/// `run_trace(&case.trace)` on the result replays the case bit-identically
/// to [`ChaosCase::run_paired`].
pub fn experiment_config(case: &ChaosCase) -> ExperimentConfig {
    ExperimentConfig {
        name: case.name.clone(),
        workload: case.workload.clone(),
        cluster: case.cluster.clone(),
        policies: vec![PolicyKind::Fcfs, PolicyKind::das()],
        seed: case.seed,
        horizon_secs: case.horizon_secs,
        warmup_secs: case.warmup_secs,
        rct_timeseries_bin_secs: None,
        faults: case.faults.clone(),
        overload: case.overload,
        trace: TraceConfig::enabled(),
    }
}

/// The on-disk file set of one reproducer artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactPaths {
    /// `<slug>.case.json` — the self-contained [`Reproducer`].
    pub case: PathBuf,
    /// `<slug>.config.json` — [`ExperimentConfig`] for `replay`.
    pub config: PathBuf,
    /// `<slug>.workload.jsonl` — the pinned request trace.
    pub workload: PathBuf,
    /// `<slug>.faults.json` — the fault profile for `replay --faults`.
    pub faults: PathBuf,
    /// `<slug>.overload.json` — the overload profile for `replay --overload`.
    pub overload: PathBuf,
}

impl ArtifactPaths {
    /// The artifact layout for `slug` under `dir` (nothing is written).
    pub fn new(dir: &Path, slug: &str) -> Self {
        ArtifactPaths {
            case: dir.join(format!("{slug}.case.json")),
            config: dir.join(format!("{slug}.config.json")),
            workload: dir.join(format!("{slug}.workload.jsonl")),
            faults: dir.join(format!("{slug}.faults.json")),
            overload: dir.join(format!("{slug}.overload.json")),
        }
    }
}

fn write_pretty_json<T: serde::Serialize>(path: &Path, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| format!("serialize {}: {e}", path.display()))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))
}

/// Writes the full replayable artifact set for one reproducer under `dir`
/// (created if missing) and returns the paths.
pub fn write_artifacts(reproducer: &Reproducer, dir: &Path) -> Result<ArtifactPaths, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let paths = ArtifactPaths::new(dir, &reproducer.slug);
    reproducer.write(&paths.case)?;
    write_pretty_json(&paths.config, &experiment_config(&reproducer.case))?;
    write_pretty_json(&paths.faults, &reproducer.case.faults)?;
    write_pretty_json(&paths.overload, &reproducer.case.overload)?;
    let file = std::fs::File::create(&paths.workload)
        .map_err(|e| format!("create {}: {e}", paths.workload.display()))?;
    let mut writer = std::io::BufWriter::new(file);
    write_trace(&mut writer, &reproducer.case.trace).map_err(|e| e.to_string())?;
    use std::io::Write as _;
    writer.flush().map_err(|e| e.to_string())?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_chaos::SearchSpace;
    use das_sim::rng::SeedFactory;
    use das_workload::trace::read_trace;

    fn sample_case() -> ChaosCase {
        SearchSpace::default()
            .generate(&SeedFactory::new(23), 1)
            .unwrap()
    }

    /// Serializes an event log exactly as `das_experiment --trace` does.
    fn jsonl_bytes(log: &das_trace::TraceLog) -> Vec<u8> {
        let mut buf = Vec::new();
        das_trace::export::write_jsonl(log, &mut buf).unwrap();
        buf
    }

    #[test]
    fn experiment_config_replays_a_case_bit_identically() {
        // The load-bearing equivalence: the chaos harness's own runner and
        // the `das_experiment replay` path produce indistinguishable runs,
        // so a committed reproducer replays to the same verdict through
        // the ordinary CLI.
        let case = sample_case();
        let paired = case.run_paired().unwrap();
        let result = experiment_config(&case).run_trace(&case.trace).unwrap();
        assert_eq!(result.runs.len(), 2);
        for (ours, theirs) in [&paired.fcfs, &paired.das].into_iter().zip(&result.runs) {
            assert_eq!(ours.policy, theirs.policy);
            assert_eq!(ours.completed, theirs.completed);
            assert_eq!(ours.events_processed, theirs.events_processed);
            assert_eq!(
                ours.mean_rct().to_bits(),
                theirs.mean_rct().to_bits(),
                "{}",
                ours.policy
            );
            assert_eq!(
                jsonl_bytes(ours.trace.as_ref().unwrap()),
                jsonl_bytes(theirs.trace.as_ref().unwrap()),
                "{}: event logs drifted",
                ours.policy
            );
        }
    }

    #[test]
    fn artifacts_roundtrip_and_validate() {
        let case = sample_case();
        let r = Reproducer {
            slug: "case0001_test".into(),
            oracle: "das-regression".into(),
            policy: "pair".into(),
            detail: "test artifact".into(),
            measure: 1.5,
            case,
        };
        let dir = std::env::temp_dir().join("das_core_chaos_artifacts");
        let paths = write_artifacts(&r, &dir).unwrap();

        let back = Reproducer::read(&paths.case).unwrap();
        assert_eq!(back, r);

        let config: ExperimentConfig = serde_json::from_str(
            &std::fs::read_to_string(&paths.config).unwrap(),
        )
        .unwrap();
        assert_eq!(config, experiment_config(&r.case));

        let trace = read_trace(std::fs::File::open(&paths.workload).unwrap()).unwrap();
        assert_eq!(trace, r.case.trace);

        let faults: das_store::config::FaultProfile =
            serde_json::from_str(&std::fs::read_to_string(&paths.faults).unwrap()).unwrap();
        assert_eq!(faults, r.case.faults);
        let overload: das_store::config::OverloadProfile =
            serde_json::from_str(&std::fs::read_to_string(&paths.overload).unwrap()).unwrap();
        assert_eq!(overload, r.case.overload);

        for p in [
            &paths.case,
            &paths.config,
            &paths.workload,
            &paths.faults,
            &paths.overload,
        ] {
            std::fs::remove_file(p).unwrap();
        }
    }
}
