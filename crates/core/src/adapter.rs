//! Bridges the workload generator to the store engine: resolves each
//! generated request's key sizes and yields [`StoreRequest`]s.

use das_sim::rng::SeedFactory;
use das_sim::time::SimTime;
use das_store::engine::{KeyRead, StoreRequest};
use das_workload::generator::{RequestSpec, WorkloadGenerator, WorkloadSpec};

/// An iterator of [`StoreRequest`]s generated on demand from a workload
/// spec, bounded by a horizon.
pub struct RequestStream {
    generator: WorkloadGenerator,
    horizon: SimTime,
    done: bool,
}

impl std::fmt::Debug for RequestStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestStream")
            .field("horizon", &self.horizon)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl RequestStream {
    /// Creates a stream for `spec` ending at `horizon`, seeded from
    /// `seeds`. Two streams with the same spec and seeds yield identical
    /// requests — that is what makes cross-policy comparisons paired.
    pub fn new(spec: &WorkloadSpec, seeds: &SeedFactory, horizon: SimTime) -> Self {
        RequestStream {
            generator: WorkloadGenerator::new(spec, seeds),
            horizon,
            done: false,
        }
    }

    fn resolve(&self, req: RequestSpec) -> StoreRequest {
        let ks = self.generator.keyspace();
        StoreRequest {
            id: req.id,
            arrival: req.arrival,
            reads: req
                .keys
                .iter()
                .map(|&key| KeyRead {
                    key,
                    bytes: ks.size_of(key),
                    write: req.write_keys.contains(&key),
                })
                .collect(),
        }
    }
}

impl Iterator for RequestStream {
    type Item = StoreRequest;

    fn next(&mut self) -> Option<StoreRequest> {
        if self.done {
            return None;
        }
        let req = self.generator.next_request()?;
        if req.arrival >= self.horizon {
            self.done = true;
            return None;
        }
        Some(self.resolve(req))
    }
}

/// Converts a pre-recorded trace into store requests using sizes from a
/// key space built with the same spec/seed.
///
/// Requests are injected in the pinned replay order — ascending
/// `(arrival, id)`, see [`das_workload::trace::replay_order`] — so
/// equal-arrival ties always resolve to id order regardless of how the
/// trace file was laid out. For a trace that passed
/// [`das_workload::trace::validate_trace`] the reorder is a no-op and the
/// replayed stream is exactly the recorded one.
pub fn trace_to_requests(
    trace: &[RequestSpec],
    spec: &WorkloadSpec,
    seeds: &SeedFactory,
) -> Vec<StoreRequest> {
    let ks = das_workload::keyspace::KeySpace::with_hot_key_cap(
        spec.n_keys,
        &spec.sizes,
        &spec.popularity,
        spec.hot_key_size_cap,
        seeds,
    );
    let mut ordered: Vec<&RequestSpec> = trace.iter().collect();
    ordered.sort_by_key(|r| (r.arrival, r.id));
    ordered
        .iter()
        .map(|r| StoreRequest {
            id: r.id,
            arrival: r.arrival,
            reads: r
                .keys
                .iter()
                .map(|&key| KeyRead {
                    key,
                    bytes: ks.size_of(key),
                    write: r.write_keys.contains(&key),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_bounded_and_deterministic() {
        let spec = WorkloadSpec::example();
        let seeds = SeedFactory::new(11);
        let horizon = SimTime::from_millis(50);
        let a: Vec<StoreRequest> = RequestStream::new(&spec, &seeds, horizon).collect();
        let b: Vec<StoreRequest> = RequestStream::new(&spec, &seeds, horizon).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|r| r.arrival < horizon));
        assert!(a.iter().all(|r| r.reads.iter().all(|k| k.bytes >= 1)));
    }

    #[test]
    fn sizes_match_keyspace() {
        let spec = WorkloadSpec::example();
        let seeds = SeedFactory::new(12);
        let reqs: Vec<StoreRequest> =
            RequestStream::new(&spec, &seeds, SimTime::from_millis(20)).collect();
        // Same key always has the same size.
        let mut seen: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for r in &reqs {
            for k in &r.reads {
                let prev = seen.insert(k.key, k.bytes);
                if let Some(p) = prev {
                    assert_eq!(p, k.bytes, "key {} changed size", k.key);
                }
            }
        }
    }

    #[test]
    fn trace_conversion_matches_stream() {
        let spec = WorkloadSpec::example();
        let seeds = SeedFactory::new(13);
        let mut gen = WorkloadGenerator::new(&spec, &seeds);
        let trace = gen.take_until(SimTime::from_millis(20));
        let converted = trace_to_requests(&trace, &spec, &seeds);
        let streamed: Vec<StoreRequest> =
            RequestStream::new(&spec, &seeds, SimTime::from_millis(20)).collect();
        assert_eq!(converted, streamed);
    }

    #[test]
    fn trace_conversion_pins_equal_arrival_order() {
        let spec = WorkloadSpec::example();
        let seeds = SeedFactory::new(14);
        let t = SimTime::from_millis(3);
        let mk = |id| das_workload::generator::RequestSpec {
            id,
            arrival: t,
            keys: vec![id],
            write_keys: vec![],
        };
        // File order deliberately violates the id tie-break.
        let trace = vec![mk(4), mk(1), mk(3)];
        let reqs = trace_to_requests(&trace, &spec, &seeds);
        let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }
}
