//! Calibrated scenario presets shared by every experiment binary and the
//! integration tests.
//!
//! The *base scenario* models a mid-size storage tier: 50 servers, ~220 µs
//! mean operation service time (100 µs fixed cost + heavy-tailed value
//! sizes at 50 MB/s), datacenter network latencies, Zipf multi-get
//! fan-outs, and skewed key popularity. Each figure varies exactly one
//! dimension of it.

use das_net::latency::{LatencyConfig, NetworkConfig};
use das_sim::fault::CrashWindow;
use das_sim::time::SimDuration;
use das_store::config::{ClusterConfig, PerfEvent};
use das_store::partition::PartitionerConfig;
use das_workload::generator::WorkloadSpec;
use das_workload::spec::{ArrivalConfig, FanoutConfig, PopularityConfig, SizeConfig};

use crate::experiment::ExperimentConfig;
use crate::load::arrival_rate_for_load;

/// Default number of servers in the base scenario.
pub const BASE_SERVERS: u32 = 50;
/// Default simulated horizon, seconds.
pub const BASE_HORIZON_SECS: f64 = 5.0;
/// Default warmup, seconds.
pub const BASE_WARMUP_SECS: f64 = 0.5;

/// The base cluster: 50 single-worker servers, 100 µs per-op overhead,
/// 50 MB/s service rate, lognormal 50 µs network.
pub fn base_cluster() -> ClusterConfig {
    ClusterConfig {
        servers: BASE_SERVERS,
        workers_per_server: 1,
        base_rate_bytes_per_sec: 5e7,
        per_op_overhead: SimDuration::from_micros(100),
        network: NetworkConfig {
            latency: LatencyConfig::Lognormal {
                mean_micros: 50.0,
                sigma: 0.4,
            },
            bandwidth_bytes_per_sec: Some(1.25e9),
        },
        partitioner: PartitionerConfig::ConsistentHash { vnodes: 128 },
        replication: 1,
        coordinators: 1,
        hint_loss: 0.0,
        perf_events: Vec::new(),
        estimate_noise: 0.0,
    }
}

/// The base value-size distribution: bounded Pareto 512 B – 256 KiB,
/// tail index 1.1 (ETC-like body with a long tail).
///
/// The cap keeps every *individual key's* offered load well under one
/// server's capacity; since sizes are fixed per key, an unbounded tail
/// would let a single unlucky giant key saturate its shard regardless of
/// the nominal load level.
pub fn base_sizes() -> SizeConfig {
    SizeConfig::Etc {
        min_bytes: 512,
        max_bytes: 256 << 10,
        alpha: 1.1,
    }
}

/// The base fan-out distribution: Zipf over `[1, 32]`, skew 1.0 — many
/// small multi-gets, a heavy tail of wide ones.
pub fn base_fanout() -> FanoutConfig {
    FanoutConfig::Zipf {
        max: 32,
        theta: 1.0,
    }
}

/// The base workload at per-server utilization `rho` on `cluster`.
pub fn base_workload(rho: f64, cluster: &ClusterConfig) -> WorkloadSpec {
    // Popularity is uniform in the base scenario: per-key sizes are fixed,
    // so skewed popularity would permanently overload whichever shard owns
    // a hot key (real stores absorb this with caches/replicas). Key-skew
    // effects are studied separately in the Fig. 14 scenario, which pairs
    // moderate skew with replicated reads.
    let mut spec = WorkloadSpec {
        n_keys: 100_000,
        arrival: ArrivalConfig::Poisson { rate: 1.0 },
        fanout: base_fanout(),
        sizes: base_sizes(),
        popularity: PopularityConfig::Uniform,
        hot_key_size_cap: None,
        write_fraction: 0.0,
    };
    let rate = arrival_rate_for_load(rho, &spec, cluster);
    spec.arrival = ArrivalConfig::Poisson { rate };
    spec
}

/// A base-scenario workload with overridden fan-out/size/popularity,
/// recalibrated so the arrival rate still produces per-server load `rho`.
pub fn custom_workload(
    rho: f64,
    cluster: &ClusterConfig,
    fanout: FanoutConfig,
    sizes: SizeConfig,
    popularity: PopularityConfig,
) -> WorkloadSpec {
    let mut spec = WorkloadSpec {
        n_keys: 100_000,
        arrival: ArrivalConfig::Poisson { rate: 1.0 },
        fanout,
        sizes,
        popularity,
        hot_key_size_cap: None,
        write_fraction: 0.0,
    };
    let rate = arrival_rate_for_load(rho, &spec, cluster);
    spec.arrival = ArrivalConfig::Poisson { rate };
    spec
}

/// The base experiment (standard policy set) at load `rho`.
pub fn base_experiment(name: impl Into<String>, rho: f64) -> ExperimentConfig {
    let cluster = base_cluster();
    let workload = base_workload(rho, &cluster);
    let mut e = ExperimentConfig::new(name, workload, cluster);
    e.horizon_secs = BASE_HORIZON_SECS;
    e.warmup_secs = BASE_WARMUP_SECS;
    e
}

/// Fig. 11's load spike: the schedule runs at `low` load, jumps to `high`
/// for the middle third of the horizon, then falls back.
pub fn load_spike_experiment(low_rho: f64, high_rho: f64) -> ExperimentConfig {
    let cluster = base_cluster();
    let probe = base_workload(1.0, &cluster); // rate for rho=1.0
    let unit_rate = match probe.arrival {
        ArrivalConfig::Poisson { rate } => rate,
        _ => unreachable!("base workload is Poisson"),
    };
    let h = BASE_HORIZON_SECS;
    let mut workload = probe;
    workload.arrival = ArrivalConfig::Schedule {
        steps: vec![
            (0.0, unit_rate * low_rho),
            (h / 3.0, unit_rate * high_rho),
            (2.0 * h / 3.0, unit_rate * low_rho),
        ],
        period_secs: None,
    };
    let mut e = ExperimentConfig::new(
        format!("load spike {low_rho}->{high_rho}"),
        workload,
        cluster,
    );
    e.horizon_secs = h;
    e.warmup_secs = 0.0; // the whole trajectory is the result
    e.rct_timeseries_bin_secs = Some(0.25);
    e
}

/// Fig. 12's server degradation: `slow_servers` servers run `slowdown`×
/// slower during the middle third of the horizon.
pub fn server_degradation_experiment(
    rho: f64,
    slow_servers: u32,
    slowdown: f64,
) -> ExperimentConfig {
    let mut e = base_experiment(format!("{slow_servers} servers {slowdown}x slower"), rho);
    let h = e.horizon_secs;
    for s in 0..slow_servers.min(e.cluster.servers) {
        e.cluster.perf_events.push(PerfEvent {
            server: s,
            start_secs: h / 3.0,
            end_secs: 2.0 * h / 3.0,
            multiplier: 1.0 / slowdown,
        });
    }
    e.warmup_secs = 0.0;
    e.rct_timeseries_bin_secs = Some(0.25);
    e
}

/// Fig. 14's key-skew scenario: Zipf popularity with skew `theta`,
/// replicated reads (R=3, least-loaded replica) to keep hot shards
/// servable, and narrow value sizes so the skew effect is isolated from
/// the size tail. Run at moderate load — hot shards run far above the
/// cluster average by construction.
pub fn key_skew_experiment(rho: f64, theta: f64) -> ExperimentConfig {
    let mut cluster = base_cluster();
    cluster.replication = 3;
    let mut workload = WorkloadSpec {
        n_keys: 100_000,
        arrival: ArrivalConfig::Poisson { rate: 1.0 },
        fanout: base_fanout(),
        sizes: SizeConfig::Uniform {
            min_bytes: 1 << 10,
            max_bytes: 16 << 10,
        },
        popularity: if theta == 0.0 {
            PopularityConfig::Uniform
        } else {
            PopularityConfig::Zipf { theta }
        },
        // Hot keys are small (published trace correlation): prevents any
        // single hot shard from being unconditionally overloaded.
        hot_key_size_cap: Some(4 << 10),
        write_fraction: 0.0,
    };
    let rate = arrival_rate_for_load(rho, &workload, &cluster);
    workload.arrival = ArrivalConfig::Poisson { rate };
    let mut e = ExperimentConfig::new(format!("key skew theta={theta}"), workload, cluster);
    e.horizon_secs = BASE_HORIZON_SECS;
    e.warmup_secs = BASE_WARMUP_SECS;
    e
}

/// Fig. 16's bursty-arrival scenario: an MMPP-2 whose two states run at
/// `low_rho` and `high_rho`, with the given mean sojourn times, so the
/// *time-average* load is between them but queues see alternating calm and
/// burst phases.
pub fn bursty_experiment(low_rho: f64, high_rho: f64, sojourn_secs: [f64; 2]) -> ExperimentConfig {
    let cluster = base_cluster();
    let probe = base_workload(1.0, &cluster);
    let unit_rate = probe
        .arrival
        .average_rate()
        // das-lint: allow(unwrap-lib): constructor always produces a Poisson arrival, which has a rate
        .expect("base workload is Poisson");
    let mut workload = probe;
    workload.arrival = ArrivalConfig::Mmpp {
        rates: [unit_rate * low_rho, unit_rate * high_rho],
        sojourn_secs,
    };
    let mut e = ExperimentConfig::new(format!("bursty {low_rho}/{high_rho}"), workload, cluster);
    e.horizon_secs = BASE_HORIZON_SECS;
    e.warmup_secs = BASE_WARMUP_SECS;
    e
}

/// Fig. 17's estimate-noise scenario: the base experiment with the
/// coordinator's service-time estimates perturbed by a lognormal factor of
/// relative sigma `noise` (0 = perfect size knowledge).
pub fn estimate_noise_experiment(rho: f64, noise: f64) -> ExperimentConfig {
    let mut e = base_experiment(format!("noise sigma={noise}"), rho);
    e.cluster.estimate_noise = noise;
    e
}

/// Fig. 22's fault-injection scenario: a fraction of the servers
/// crash-stop mid-run and recover, with replicated reads (R=2) and the
/// coordinator's retry path enabled so dropped work is redispatched.
///
/// Crash starts are staggered across the middle half of the horizon so
/// the cluster never loses more than one server at once at moderate
/// fractions; each outage lasts 15% of the horizon.
pub fn fault_injection_experiment(rho: f64, crash_fraction: f64) -> ExperimentConfig {
    assert!((0.0..=1.0).contains(&crash_fraction));
    let mut cluster = base_cluster();
    cluster.replication = 2;
    let workload = base_workload(rho, &cluster);
    let mut e = ExperimentConfig::new(
        format!("crash fraction {crash_fraction}"),
        workload,
        cluster,
    );
    e.horizon_secs = BASE_HORIZON_SECS;
    e.warmup_secs = BASE_WARMUP_SECS;
    let h = e.horizon_secs;
    let n = (crash_fraction * e.cluster.servers as f64).round() as u32;
    for i in 0..n {
        let start = h * (0.25 + 0.5 * i as f64 / n as f64);
        e.faults.crashes.crashes.push(CrashWindow {
            server: i * e.cluster.servers / n.max(1),
            down_secs: start,
            up_secs: start + 0.15 * h,
        });
    }
    // Retry on a ~20ms deadline: generous against the ~1ms RCT scale, tight
    // against the 750ms outages.
    e.faults.retry.deadline_secs = 0.02;
    e.faults.retry.max_attempts = 4;
    e
}

/// Fig. 23's hedging scenario: a few *gray* servers — up, but 50× slower
/// for the whole run — with replicated reads (R=3) and hedged reads at
/// the given delay quantile (`0` disables hedging: the baseline).
///
/// Gray failures are invisible to crash detection; the only defense is
/// issuing a second copy of a straggling read to another replica.
pub fn hedging_experiment(rho: f64, hedge_quantile: f64) -> ExperimentConfig {
    let mut cluster = base_cluster();
    cluster.replication = 3;
    for s in 0..3 {
        cluster.perf_events.push(PerfEvent {
            server: s * (BASE_SERVERS / 3),
            start_secs: 0.0,
            end_secs: f64::INFINITY,
            multiplier: 0.02,
        });
    }
    let workload = base_workload(rho, &cluster);
    let mut e = ExperimentConfig::new(
        format!("hedge quantile {hedge_quantile}"),
        workload,
        cluster,
    );
    e.horizon_secs = BASE_HORIZON_SECS;
    e.warmup_secs = BASE_WARMUP_SECS;
    e.faults.hedge.quantile = hedge_quantile;
    // ~2 network RTTs: low enough that the aggressive quantiles are not
    // all clamped to the same floor.
    e.faults.hedge.min_delay_secs = 1e-4;
    e
}

/// Fig. 24's overload-collapse scenario: offered load swept past
/// saturation with timeout-based retries armed (20 ms per-attempt
/// deadline, 3 attempts, R=2 replicas). Past `rho = 1` queues grow
/// without bound, every attempt blows its deadline, and the retry storm
/// multiplies the offered work — the classic congestion-collapse spiral.
///
/// With `controlled = true` the overload-control layer is switched on:
/// deadline-aware admission at the same 20 ms budget with 128-deep
/// bounded queues, a 2000 tokens/s retry budget (burst 16) so recovery
/// cannot storm, and pairwise coalescing of tiny ops (a ~1.25x capacity
/// recovery — deliberately not enough to absorb the top of the sweep,
/// so deadline admission visibly takes over as the relief valve).
/// Goodput then degrades gracefully instead of collapsing.
pub fn overload_experiment(rho: f64, controlled: bool) -> ExperimentConfig {
    let mut cluster = base_cluster();
    cluster.replication = 2;
    let workload = base_workload(rho, &cluster);
    let label = if controlled { "controlled" } else { "uncontrolled" };
    let mut e = ExperimentConfig::new(format!("rho={rho} {label}"), workload, cluster);
    // Shorter than the base horizon: past saturation the uncontrolled
    // store's backlog (and with it the cost of simulating each dequeue)
    // grows for the whole run, so horizon cost is superlinear — and the
    // collapse signal is unambiguous well before the base horizon.
    e.horizon_secs = 2.0;
    e.warmup_secs = 0.25;
    // Timeout-based retries: generous at moderate load, but past
    // saturation every attempt times out and is retried.
    e.faults.retry.deadline_secs = OVERLOAD_SLO_SECS;
    e.faults.retry.max_attempts = 3;
    if controlled {
        e.overload.admission.deadline_secs = OVERLOAD_SLO_SECS;
        e.overload.admission.queue_capacity = 128;
        e.overload.admission.write_penalty = 1.0;
        e.overload.backpressure.tokens_per_sec = 2000.0;
        e.overload.backpressure.burst = 16.0;
        e.overload.batch.max_ops = 2;
    }
    e
}

/// The SLO used by Fig. 24's goodput metric, and the retry/admission
/// deadline of [`overload_experiment`]: requests completing within this
/// bound count toward goodput.
pub const OVERLOAD_SLO_SECS: f64 = 0.02;

/// A scaled variant of the base experiment with `servers` servers at the
/// same per-server load (Fig. 13).
pub fn cluster_size_experiment(rho: f64, servers: u32, horizon_secs: f64) -> ExperimentConfig {
    let mut cluster = base_cluster();
    cluster.servers = servers;
    let workload = base_workload(rho, &cluster);
    let mut e = ExperimentConfig::new(format!("N={servers}"), workload, cluster);
    e.horizon_secs = horizon_secs;
    e.warmup_secs = (horizon_secs * 0.1).min(BASE_WARMUP_SECS);
    e
}

/// One scenario of the regression corpus (Table 10): a named experiment
/// whose workload is pinned as a committed JSONL trace under
/// `crates/workload/corpus/`, replayed under FCFS and DAS and blame-diffed
/// request by request. The committed trace is regenerable from
/// [`CorpusScenario::generate_trace`] and byte-pinned by the test suite,
/// so any drift in the generator or the builders is caught immediately.
#[derive(Debug, Clone)]
pub struct CorpusScenario {
    /// File stem of the committed trace (`<slug>.jsonl`).
    pub slug: &'static str,
    /// Human description for tables.
    pub title: &'static str,
    /// The cluster/fault/overload composition the trace is replayed
    /// against (its workload spec is also what generated the trace).
    pub experiment: ExperimentConfig,
}

impl CorpusScenario {
    /// Path of the committed trace for this scenario.
    pub fn trace_path(&self) -> std::path::PathBuf {
        das_workload::scenarios::corpus_dir().join(format!("{}.jsonl", self.slug))
    }

    /// Regenerates the trace the committed file must equal byte-for-byte:
    /// the experiment's recorded workload stream.
    pub fn generate_trace(&self) -> Vec<das_workload::generator::RequestSpec> {
        self.experiment.record_workload()
    }

    /// Loads and validates the committed trace.
    pub fn load_trace(&self) -> std::io::Result<Vec<das_workload::generator::RequestSpec>> {
        let path = self.trace_path();
        let file = std::fs::File::open(&path)?;
        let trace = das_workload::trace::read_trace(file)?;
        das_workload::trace::validate_trace(&trace)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(trace)
    }
}

/// The corpus cluster: a slice of the base scenario (8 servers, same
/// service and network model) so the committed traces stay small enough
/// to check in while every mechanism — schedules, replicas, perf events,
/// crash windows — still has room to matter.
fn corpus_cluster() -> ClusterConfig {
    ClusterConfig {
        servers: 8,
        ..base_cluster()
    }
}

/// The corpus workload skeleton at unit rate: a narrower fan-out and key
/// population than the base scenario, tuned for ~1-2k requests per
/// committed quick-mode trace.
fn corpus_workload(cluster: &ClusterConfig, rho: f64) -> WorkloadSpec {
    let mut spec = WorkloadSpec {
        n_keys: 20_000,
        arrival: ArrivalConfig::Poisson { rate: 1.0 },
        fanout: FanoutConfig::Zipf {
            max: 16,
            theta: 1.0,
        },
        sizes: base_sizes(),
        popularity: PopularityConfig::Uniform,
        hot_key_size_cap: None,
        write_fraction: 0.0,
    };
    let rate = arrival_rate_for_load(rho, &spec, cluster);
    spec.arrival = ArrivalConfig::Poisson { rate };
    spec
}

/// The scenario regression corpus behind `table10_scenario_corpus`: four
/// fixed quick-mode workloads — a diurnal load curve, a flash-crowd key
/// storm, a slow-disk gray failure, and a rolling restart — each with a
/// committed trace and golden blame tables. The corpus is deliberately
/// *not* scaled by quick mode: pinned traces are the whole point.
pub fn scenario_corpus() -> Vec<CorpusScenario> {
    let mut out = Vec::new();

    // Diurnal load curve: one full synthetic day (trough → peak → decay)
    // inside the horizon, with a write mix so the record/replay round trip
    // exercises write marking.
    {
        let cluster = corpus_cluster();
        let mut workload = corpus_workload(&cluster, 1.0);
        let unit_rate = arrival_rate_for_load(1.0, &workload, &cluster);
        let horizon = 0.8;
        workload.arrival = das_workload::scenarios::diurnal_arrival(unit_rate * 0.85, horizon);
        workload.write_fraction = 0.1;
        let mut e = ExperimentConfig::new("diurnal load curve", workload, cluster);
        e.seed = 1001;
        e.horizon_secs = horizon;
        e.warmup_secs = 0.0; // the whole curve is the result
        out.push(CorpusScenario {
            slug: "diurnal",
            title: "diurnal load curve (peak rho 0.85, writes 10%)",
            experiment: e,
        });
    }

    // Flash-crowd key storm: skewed popularity (hot keys size-capped, as
    // in the Fig. 14 scenario) with a sudden 4x arrival surge, absorbed by
    // replicated reads.
    {
        let mut cluster = corpus_cluster();
        cluster.replication = 3;
        let mut workload = corpus_workload(&cluster, 1.0);
        workload.popularity = PopularityConfig::Zipf { theta: 0.9 };
        workload.hot_key_size_cap = Some(4 << 10);
        let unit_rate = arrival_rate_for_load(1.0, &workload, &cluster);
        workload.arrival =
            das_workload::scenarios::flash_crowd_arrival(unit_rate * 0.45, 4.0, 0.2, 0.15);
        let mut e = ExperimentConfig::new("flash-crowd key storm", workload, cluster);
        e.seed = 1002;
        e.horizon_secs = 0.6;
        e.warmup_secs = 0.0;
        out.push(CorpusScenario {
            slug: "flash_crowd",
            title: "flash-crowd key storm (4x surge, Zipf 0.9, R=3)",
            experiment: e,
        });
    }

    // Slow-disk gray failure: two servers run 4x slower for the whole run
    // — up, answering, invisible to crash detection. Replicated reads give
    // load-aware dispatch an escape route; FCFS keeps feeding the slow
    // disks.
    {
        let mut cluster = corpus_cluster();
        cluster.replication = 2;
        for s in [1, 5] {
            cluster.perf_events.push(PerfEvent {
                server: s,
                start_secs: 0.0,
                end_secs: f64::INFINITY,
                multiplier: 0.25,
            });
        }
        let workload = corpus_workload(&cluster, 0.55);
        let mut e = ExperimentConfig::new("slow-disk gray failure", workload, cluster);
        e.seed = 1003;
        e.horizon_secs = 0.6;
        e.warmup_secs = 0.05;
        out.push(CorpusScenario {
            slug: "slow_disk",
            title: "slow-disk gray failure (2 of 8 servers 4x slower, R=2)",
            experiment: e,
        });
    }

    // Rolling restart: half the servers bounce one after another, each
    // down for 10% of the horizon, with replicated reads and the retry
    // path redispatching dropped work.
    {
        let mut cluster = corpus_cluster();
        cluster.replication = 2;
        let workload = corpus_workload(&cluster, 0.5);
        let mut e = ExperimentConfig::new("rolling restart", workload, cluster);
        e.seed = 1004;
        e.horizon_secs = 0.8;
        e.warmup_secs = 0.0;
        let h = e.horizon_secs;
        for i in 0..4u32 {
            let start = h * (0.15 + 0.18 * i as f64);
            e.faults.crashes.crashes.push(CrashWindow {
                server: i * 2,
                down_secs: start,
                up_secs: start + 0.1 * h,
            });
        }
        e.faults.retry.deadline_secs = 0.02;
        e.faults.retry.max_attempts = 4;
        out.push(CorpusScenario {
            slug: "rolling_restart",
            title: "rolling restart (4 of 8 servers bounce, R=2, retry)",
            experiment: e,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::offered_load;

    #[test]
    fn base_workload_hits_target_load() {
        let cluster = base_cluster();
        for rho in [0.3, 0.7, 0.9] {
            let w = base_workload(rho, &cluster);
            let rate = w.arrival.average_rate().unwrap();
            let back = offered_load(rate, &w, &cluster);
            assert!((back - rho).abs() < 1e-9, "rho {rho} -> {back}");
        }
    }

    #[test]
    fn base_service_time_in_calibrated_range() {
        let cluster = base_cluster();
        let mean_op_secs = cluster.per_op_overhead.as_secs_f64()
            + base_sizes().mean_bytes() / cluster.base_rate_bytes_per_sec;
        // The scenario is calibrated for a ~150-400us mean op.
        assert!(
            (1.5e-4..4e-4).contains(&mean_op_secs),
            "mean op = {mean_op_secs}s"
        );
    }

    #[test]
    fn spike_schedule_has_three_phases() {
        let e = load_spike_experiment(0.3, 0.9);
        match &e.workload.arrival {
            ArrivalConfig::Schedule { steps, .. } => {
                assert_eq!(steps.len(), 3);
                assert!(steps[1].1 > steps[0].1 * 2.0);
                assert_eq!(steps[0].1, steps[2].1);
            }
            other => panic!("expected schedule, got {other:?}"),
        }
        assert!(e.rct_timeseries_bin_secs.is_some());
    }

    #[test]
    fn degradation_adds_perf_events() {
        let e = server_degradation_experiment(0.5, 5, 4.0);
        assert_eq!(e.cluster.perf_events.len(), 5);
        assert!((e.cluster.perf_events[0].multiplier - 0.25).abs() < 1e-12);
        assert_eq!(e.cluster.validate(), Ok(()));
    }

    #[test]
    fn fault_injection_places_staggered_crashes() {
        let e = fault_injection_experiment(0.7, 0.2);
        assert_eq!(e.faults.crashes.crashes.len(), 10);
        assert!(e.faults.retry.enabled());
        assert_eq!(e.faults.validate(e.cluster.servers), Ok(()));
        // Distinct servers, staggered starts within the horizon.
        let servers: std::collections::HashSet<u32> =
            e.faults.crashes.crashes.iter().map(|w| w.server).collect();
        assert_eq!(servers.len(), 10);
        for w in &e.faults.crashes.crashes {
            assert!(w.down_secs >= 0.25 * e.horizon_secs);
            assert!(w.up_secs <= e.horizon_secs);
        }
        // Zero fraction: retry armed but nothing crashes.
        let none = fault_injection_experiment(0.7, 0.0);
        assert!(none.faults.crashes.crashes.is_empty());
    }

    #[test]
    fn hedging_scenario_validates() {
        let e = hedging_experiment(0.7, 0.95);
        assert!(e.faults.hedge.enabled());
        assert_eq!(e.cluster.perf_events.len(), 3);
        assert_eq!(e.faults.validate(e.cluster.servers), Ok(()));
        assert_eq!(e.cluster.validate(), Ok(()));
        let off = hedging_experiment(0.7, 0.0);
        assert!(!off.faults.is_active());
    }

    #[test]
    fn overload_scenario_validates_in_both_modes() {
        let un = overload_experiment(1.3, false);
        assert!(un.faults.retry.enabled());
        assert!(!un.overload.is_active());
        assert_eq!(un.faults.validate(un.cluster.servers), Ok(()));

        let ctl = overload_experiment(1.3, true);
        assert!(ctl.overload.admission.enabled());
        assert!(ctl.overload.backpressure.enabled());
        assert!(ctl.overload.batch.enabled());
        assert_eq!(
            ctl.overload.validate(ctl.faults.retry.deadline_secs),
            Ok(())
        );
        // Same workload/cluster in both arms: only the control knobs differ.
        let ru = un.workload.arrival.average_rate().unwrap();
        let rc = ctl.workload.arrival.average_rate().unwrap();
        assert_eq!(ru, rc);
    }

    #[test]
    fn cluster_size_scales_rate() {
        let small = cluster_size_experiment(0.7, 10, 2.0);
        let big = cluster_size_experiment(0.7, 100, 2.0);
        let rs = small.workload.arrival.average_rate().unwrap();
        let rb = big.workload.arrival.average_rate().unwrap();
        assert!((rb / rs - 10.0).abs() < 1e-6);
    }

    #[test]
    fn corpus_scenarios_are_distinct_and_valid() {
        let corpus = scenario_corpus();
        assert_eq!(corpus.len(), 4);
        let slugs: std::collections::HashSet<&str> =
            corpus.iter().map(|s| s.slug).collect();
        assert_eq!(slugs.len(), corpus.len());
        for s in &corpus {
            assert_eq!(s.experiment.cluster.validate(), Ok(()), "{}", s.slug);
            assert_eq!(
                s.experiment.faults.validate(s.experiment.cluster.servers),
                Ok(()),
                "{}",
                s.slug
            );
            assert!(
                s.trace_path().ends_with(format!("corpus/{}.jsonl", s.slug)),
                "{}",
                s.slug
            );
            // Distinct seeds decorrelate the scenarios' streams.
            assert!(s.experiment.seed >= 1001);
        }
        // The gray-failure and rolling-restart scenarios carry their
        // defining mechanisms.
        assert_eq!(corpus[2].experiment.cluster.perf_events.len(), 2);
        assert_eq!(corpus[3].experiment.faults.crashes.crashes.len(), 4);
        assert!(corpus[3].experiment.faults.retry.enabled());
    }

    #[test]
    fn corpus_traces_are_recordable_and_moderate() {
        // Recording must yield a valid, committed-size trace for every
        // scenario; byte-pinning against the committed files lives in the
        // integration suite.
        for s in scenario_corpus() {
            let trace = s.generate_trace();
            assert!(
                trace.len() > 300 && trace.len() < 10_000,
                "{}: {} requests",
                s.slug,
                trace.len()
            );
            das_workload::trace::validate_trace(&trace).unwrap();
        }
    }
}
