//! # das-core — public API of the DAS reproduction
//!
//! Reproduction of *"Cutting the Request Completion Time in Key-value
//! Stores with Distributed Adaptive Scheduler"* (ICDCS 2021).
//!
//! ## The problem
//!
//! A multi-get request fans out into operations on several servers and
//! completes only when its **last** operation completes. Choosing the order
//! in which each server drains its queue is a *concurrent open shop*
//! problem: minimizing mean request completion time (RCT) is NP-hard, so
//! practical systems need heuristics — and distributed ones, because
//! centralized schedulers cost too much coordination.
//!
//! ## The system
//!
//! [`das_sched::das::Das`] ranks every queued operation by its request's
//! estimated remaining completion time (SRPT-first across requests,
//! LRPT-last within one), built from piggybacked load/rate reports and
//! progress hints — adaptive to time-varying load and server performance.
//! This crate wires that scheduler (and all baselines) into the simulated
//! cluster and exposes experiment orchestration:
//!
//! * [`experiment`] — run one workload against many policies on paired
//!   request streams; compare in uniform tables;
//! * [`scenarios`] — the calibrated base scenario every figure varies;
//! * [`load`] — translate between arrival rates and per-server load ρ;
//! * [`adapter`] — feed generated or traced workloads into the engine;
//! * [`chaos`] — replay bridge for chaos-search reproducer artifacts;
//! * [`report`] — Markdown rendering for EXPERIMENTS.md.
//!
//! ## Quickstart
//!
//! ```
//! use das_core::prelude::*;
//!
//! // Compare FCFS and DAS at 60% load on a small cluster.
//! let mut experiment = scenarios::base_experiment("demo", 0.6);
//! experiment.cluster.servers = 8;
//! experiment.workload = scenarios::base_workload(0.6, &experiment.cluster);
//! experiment.horizon_secs = 0.5;
//! experiment.warmup_secs = 0.05;
//! experiment.policies = vec![PolicyKind::Fcfs, PolicyKind::das()];
//! let result = experiment.run().unwrap();
//! assert!(result.mean_rct("DAS").unwrap() > 0.0);
//! println!("{}", das_core::report::render_experiment(&result));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod adapter;
pub mod chaos;
pub mod experiment;
pub mod load;
pub mod report;
pub mod scenarios;

pub use adapter::RequestStream;
pub use experiment::{ExperimentConfig, ExperimentResult, PolicySummary};

/// Frequently used items across this workspace, re-exported.
pub mod prelude {
    pub use crate::adapter::RequestStream;
    pub use crate::experiment::{ExperimentConfig, ExperimentResult, PolicySummary};
    pub use crate::load::{arrival_rate_for_load, offered_load};
    pub use crate::scenarios;
    pub use das_sched::das::DasConfig;
    pub use das_sched::policy::PolicyKind;
    pub use das_sim::rng::SeedFactory;
    pub use das_sim::time::{SimDuration, SimTime};
    pub use das_store::config::{ClusterConfig, PerfEvent, SimulationConfig};
    pub use das_store::engine::{run_simulation, KeyRead, RunResult, StoreRequest};
    pub use das_workload::generator::{WorkloadGenerator, WorkloadSpec};
}
