//! `das-experiment` — run DAS reproduction experiments from JSON configs.
//!
//! ```text
//! das_experiment run <config.json> [--out <dir>] [--trace <base>] [--trace-sample <rate>]
//!                    [--record-workload <out.jsonl>]
//!                                                  run an experiment, print tables
//! das_experiment template [rho]                    print a ready-to-edit config
//! das_experiment policies                          list available policies
//! das_experiment trace <config.json> <out.jsonl>   record the workload as a trace
//! das_experiment replay <config.json> <workload.jsonl> [--out <dir>]
//!                       [--trace <base>] [--trace-sample <rate>]
//!                       [--faults <faults.json>] [--overload <overload.json>]
//!                                                  replay a recorded workload
//! das_experiment chaos [--seed N] [--budget N] [--out <dir>]
//!                      [--oracles a,b,...] [--space <space.json>]
//!                      [--shrink-budget N] [--no-shrink]
//!                                                  adversarial fault-schedule search
//! das_experiment chaos-verify <dir> [--oracles a,b,...]
//!                                                  replay a reproducer corpus and
//!                                                  assert every verdict still fires
//! das_experiment blame-diff <a.jsonl> <b.jsonl> [<c.jsonl> ...]
//!                           [--ladder n1,n2,...] [--out <summary.json>]
//!                                                  attribute the RCT delta between
//!                                                  two or more event traces per segment
//! das_experiment top <trace.jsonl> [--epoch-ms N] [--workers N]
//!                                                  per-server telemetry report folded
//!                                                  from one event trace
//! ```
//!
//! `--trace <base>` enables structured event tracing and writes, per
//! policy, `<base>-<policy>.jsonl` (one event per line) and
//! `<base>-<policy>.chrome.json` (Chrome `trace_event` format, loadable in
//! Perfetto / `chrome://tracing`), plus the critical-path blame table.
//! `--trace-sample <rate>` traces that fraction of requests (default 1).
//!
//! ## Record → replay
//!
//! `--record-workload <out.jsonl>` additionally writes the exact request
//! stream the run consumed (ids, integer-ns arrival instants, keys, write
//! marks) as a `das_workload::trace` JSONL file. Recording is opt-in and a
//! pure observation: the generator is deterministic, so runs with and
//! without it are bit-identical. `replay` then injects that stream —
//! pinned to ascending `(arrival, id)` order — against *any* config's
//! policy/cluster/fault/overload composition, with the same reporting and
//! `--trace` event-log emission as `run`. Replaying under the recording
//! config reproduces the original event logs byte for byte; replaying
//! under a different policy yields logs that `blame-diff` (or `--ladder`)
//! consumes directly, with matching ids and exactly telescoping deltas.
//!
//! `blame-diff` takes two or more such `.jsonl` event logs recorded from
//! the *same seeded workload* under different policies, matches requests by
//! id across every trace, and attributes the per-request RCT delta to the
//! five critical-path segments (the signed deltas telescope exactly, in
//! integer ns, to each RCT delta — and with three or more traces the
//! per-step deltas telescope exactly across the whole ladder). It refuses
//! traces whose arrival timestamps disagree. `--ladder` overrides the rung
//! labels (default: file stems).
//!
//! ## Chaos search
//!
//! `chaos` runs the [`das_chaos`] adversarial search: a seeded, budgeted
//! loop that generates fault-schedule/workload/overload combinations (and
//! mutates interesting ones near scheduling decisions), replays each under
//! the FCFS/DAS pair, checks the oracle suite, and delta-debug shrinks
//! every violation to a minimal reproducer. The run is a pure function of
//! `(--seed, --budget, --oracles, --space)`: the `chaos_report.json` it
//! writes is byte-identical across invocations. `--out` lays each finding
//! out as a replayable artifact set (`<slug>.case.json`, `.config.json`,
//! `.workload.jsonl`, `.faults.json`, `.overload.json`) so
//! `replay <slug>.config.json <slug>.workload.jsonl` reproduces the
//! violating pair directly. `chaos-verify` re-runs every `*.case.json`
//! under a directory and fails unless each recorded oracle verdict still
//! fires — what CI does for the committed corpus in `crates/chaos/corpus`.
//!
//! `replay --faults/--overload` swap in a fault or overload profile from a
//! JSON file (e.g. a reproducer's `.faults.json`) without editing the
//! config — grafting an adversarial schedule onto any experiment.
//!
//! `top` folds one `.jsonl` event log into per-server occupancy telemetry
//! (busy %, queue depth, reorder/shed/retry/hedge/batch/hint rates) and
//! prints a sorted report with per-epoch busy sparklines. It refuses a
//! `--workers` value below the log's own evidence (overlapping service
//! spans on one server), naming the inferred minimum — otherwise the
//! busy/idle complement would silently report occupancy above 100%.
//!
//! Configs are [`das_core::ExperimentConfig`] JSON — `template` prints one.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use das_core::experiment::{ExperimentConfig, ExperimentResult, PolicySummary};
use das_core::{report, scenarios};
use das_sched::policy::PolicyKind;
use das_sim::rng::SeedFactory;
use das_workload::generator::RequestSpec;
use das_workload::trace::{read_trace, validate_trace, write_trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("template") => cmd_template(&args[1..]),
        Some("policies") => cmd_policies(),
        Some("check") => cmd_check(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("chaos-verify") => cmd_chaos_verify(&args[1..]),
        Some("blame-diff") => cmd_blame_diff(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "das-experiment — run DAS reproduction experiments from JSON configs\n\n\
         USAGE:\n  \
         das_experiment run <config.json> [--out <dir>] [--trace <base>] [--trace-sample <rate>] [--record-workload <out.jsonl>]\n  \
         das_experiment template [rho]\n  \
         das_experiment policies\n  \
         das_experiment check <config.json>\n  \
         das_experiment trace <config.json> <out.jsonl>\n  \
         das_experiment replay <config.json> <workload.jsonl> [--out <dir>] [--trace <base>] [--trace-sample <rate>] [--faults <faults.json>] [--overload <overload.json>]\n  \
         das_experiment chaos [--seed N] [--budget N] [--out <dir>] [--oracles a,b,...] [--space <space.json>] [--shrink-budget N] [--no-shrink]\n  \
         das_experiment chaos-verify <dir> [--oracles a,b,...]\n  \
         das_experiment blame-diff <a.jsonl> <b.jsonl> [<c.jsonl> ...] [--ladder n1,n2,...] [--out <summary.json>]\n  \
         das_experiment top <trace.jsonl> [--epoch-ms N] [--workers N]"
    );
}

fn load_config(path: &str) -> Result<ExperimentConfig, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let config: ExperimentConfig =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(config)
}

/// Flags shared by `run` and `replay`: output dir, event-trace emission,
/// (run only) workload recording, and (replay only) fault/overload
/// profile overrides.
#[derive(Debug, Default)]
struct EmitFlags {
    out_dir: Option<String>,
    trace_base: Option<String>,
    trace_sample: Option<f64>,
    record_workload: Option<String>,
    faults: Option<String>,
    overload: Option<String>,
}

impl EmitFlags {
    /// Parses the flag tail of `run`/`replay`. `cmd` labels errors;
    /// `--record-workload` is only accepted when `allow_record` is set,
    /// `--faults`/`--overload` only when `allow_overrides` is.
    fn parse(
        cmd: &str,
        args: &[String],
        allow_record: bool,
        allow_overrides: bool,
    ) -> Result<Self, String> {
        let mut flags = EmitFlags::default();
        let mut rest = args.iter();
        while let Some(arg) = rest.next() {
            match arg.as_str() {
                "--out" => {
                    flags.out_dir = Some(rest.next().ok_or("--out: missing directory")?.clone());
                }
                "--trace" => {
                    flags.trace_base =
                        Some(rest.next().ok_or("--trace: missing output path")?.clone());
                }
                "--trace-sample" => {
                    let s = rest.next().ok_or("--trace-sample: missing rate")?;
                    let rate: f64 = s
                        .parse()
                        .map_err(|_| format!("--trace-sample: `{s}` is not a number"))?;
                    flags.trace_sample = Some(rate);
                }
                "--record-workload" if allow_record => {
                    flags.record_workload =
                        Some(rest.next().ok_or("--record-workload: missing path")?.clone());
                }
                "--faults" if allow_overrides => {
                    flags.faults = Some(rest.next().ok_or("--faults: missing path")?.clone());
                }
                "--overload" if allow_overrides => {
                    flags.overload = Some(rest.next().ok_or("--overload: missing path")?.clone());
                }
                other => return Err(format!("{cmd}: unexpected argument `{other}`")),
            }
        }
        if flags.trace_sample.is_some() && flags.trace_base.is_none() {
            return Err("--trace-sample requires --trace <path>".into());
        }
        Ok(flags)
    }

    /// Applies `--faults`/`--overload` profile overrides to the config,
    /// then re-validates the composition (an override can introduce
    /// invariant violations the original config never had, e.g. loss
    /// without retries).
    fn apply_overrides(&self, config: &mut ExperimentConfig) -> Result<(), String> {
        if let Some(path) = &self.faults {
            let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            config.faults =
                serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        }
        if let Some(path) = &self.overload {
            let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            config.overload =
                serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        }
        if self.faults.is_some() || self.overload.is_some() {
            das_store::config::SimulationConfig {
                cluster: config.cluster.clone(),
                policy: PolicyKind::Fcfs,
                seed: config.seed,
                horizon_secs: config.horizon_secs,
                warmup_secs: config.warmup_secs,
                rct_timeseries_bin_secs: None,
                faults: config.faults.clone(),
                overload: config.overload,
                trace: config.trace,
            }
            .validate()
            .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Applies the tracing flags to the loaded config.
    fn arm_tracing(&self, config: &mut ExperimentConfig) {
        if self.trace_base.is_some() {
            config.trace.enabled = true;
            if let Some(rate) = self.trace_sample {
                config.trace.sample = rate;
            }
        }
    }
}

/// Writes a recorded workload stream as a validated JSONL trace file.
fn write_workload(path: &str, trace: &[RequestSpec]) -> Result<(), String> {
    let file = fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    write_trace(&mut writer, trace).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    eprintln!("recorded {} requests to {path}", trace.len());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing <config.json>")?;
    let flags = EmitFlags::parse("run", &args[1..], true, false)?;
    let mut config = load_config(path)?;
    flags.arm_tracing(&mut config);
    eprintln!(
        "running `{}`: {} servers, {} policies, {}s horizon...",
        config.name,
        config.cluster.servers,
        config.policies.len(),
        config.horizon_secs
    );
    let result = config.run()?;
    if let Some(out) = &flags.record_workload {
        write_workload(out, &config.record_workload())?;
    }
    emit_result(&result, &config, &flags)
}

/// The shared reporting/emission tail of `run` and `replay`: Markdown
/// tables and charts on stdout, per-policy event logs (JSONL + Chrome with
/// telemetry counter tracks) under `--trace`, and per-policy summaries
/// under `--out`.
fn emit_result(
    result: &ExperimentResult,
    config: &ExperimentConfig,
    flags: &EmitFlags,
) -> Result<(), String> {
    println!("{}", report::render_experiment(result));
    if let Some(chart) = das_metrics::ascii::bar_chart(&result.table(), "mean (ms)", 40) {
        println!("{chart}");
    }
    println!("{}", report::overhead_table(result).to_markdown());
    println!("{}", report::fairness_table(result).to_markdown());
    if let Some(t) = report::timeseries_table(result, "Mean RCT over time (ms)") {
        println!("{}", t.to_markdown());
    }
    if let Some(t) = report::blame_table(result) {
        println!("{}", t.to_markdown());
        let rows = report::blame_rows(result);
        if let Some(chart) = das_metrics::ascii::stacked_bars(&rows, 40) {
            println!("mean RCT blame per policy (ms)\n{chart}");
        }
    }
    if let Some(base) = &flags.trace_base {
        for run in &result.runs {
            let Some(log) = &run.trace else { continue };
            let policy = sanitize(&run.policy);
            let jsonl = format!("{base}-{policy}.jsonl");
            let f = fs::File::create(&jsonl).map_err(|e| format!("creating {jsonl}: {e}"))?;
            let mut w = std::io::BufWriter::new(f);
            das_trace::export::write_jsonl(log, &mut w).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
            let chrome = format!("{base}-{policy}.chrome.json");
            let f = fs::File::create(&chrome).map_err(|e| format!("creating {chrome}: {e}"))?;
            let mut w = std::io::BufWriter::new(f);
            // Enrich the Perfetto view with per-server counter tracks
            // folded from the same log (busy %, demand, depth, rates).
            let telemetry = das_trace::telemetry::fold(
                log,
                &das_trace::TelemetryConfig {
                    workers: config.cluster.workers_per_server,
                    ..das_trace::TelemetryConfig::default()
                },
            );
            das_trace::export::write_chrome_with_telemetry(log, &telemetry, &mut w)
                .map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} events ({} dropped) to {jsonl} and {chrome}",
                log.events.len(),
                log.dropped
            );
        }
    }
    if let Some(dir) = &flags.out_dir {
        let dir = Path::new(dir);
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let summaries: Vec<PolicySummary> =
            result.runs.iter().map(PolicySummary::from_run).collect();
        let json = serde_json::to_string_pretty(&summaries).map_err(|e| e.to_string())?;
        let path = dir.join(format!("{}.json", sanitize(&result.name)));
        fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn cmd_template(args: &[String]) -> Result<(), String> {
    let rho: f64 = match args.first() {
        Some(s) => s
            .parse()
            .map_err(|_| format!("template: `{s}` is not a number"))?,
        None => 0.7,
    };
    if !(0.0..1.5).contains(&rho) || rho <= 0.0 {
        return Err(format!("template: rho {rho} out of (0, 1.5)"));
    }
    let mut config = scenarios::base_experiment(format!("custom rho={rho}"), rho);
    config.policies.push(PolicyKind::oracle());
    let json = serde_json::to_string_pretty(&config).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

fn cmd_policies() -> Result<(), String> {
    println!("policy          | metadata B/op | hints | piggyback");
    println!("----------------|---------------|-------|----------");
    let mut policies = PolicyKind::standard_set();
    policies.push(PolicyKind::Edf);
    policies.push(PolicyKind::LrptLast);
    policies.push(PolicyKind::ReinMl { levels: 4 });
    policies.push(PolicyKind::Random { seed: 1 });
    policies.push(PolicyKind::oracle());
    policies.extend(PolicyKind::ablation_set());
    let mut seen = std::collections::HashSet::new();
    for p in policies {
        let s = p.build();
        if seen.insert(s.name()) {
            println!(
                "{:<15} | {:>13} | {:>5} | {}",
                s.name(),
                s.metadata_bytes(),
                if s.wants_hints() { "yes" } else { "no" },
                if s.wants_piggyback() { "yes" } else { "no" },
            );
        }
    }
    Ok(())
}

/// Analytic stability check: computes each shard's *offered* load from the
/// workload's key-popularity distribution and the partitioner, flagging
/// shards that would run at or above capacity — the failure mode that makes
/// simulated "ρ = 0.7" runs silently unstable (see DESIGN.md's calibration
/// notes).
fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("check: missing <config.json>")?;
    let config = load_config(path)?;
    config.cluster.validate().map_err(|e| e.to_string())?;
    let w = &config.workload;
    let c = &config.cluster;
    let rate = w
        .arrival
        .average_rate()
        .ok_or("check: schedule-driven arrivals have no single rate; check the peak manually")?;
    let n = w.n_keys;
    let seeds = SeedFactory::new(config.seed);
    let keyspace = das_workload::keyspace::KeySpace::with_hot_key_cap(
        n,
        &w.sizes,
        &w.popularity,
        w.hot_key_size_cap,
        &seeds,
    );
    // Per-key access probability.
    let probs: Vec<f64> = match w.popularity {
        das_workload::spec::PopularityConfig::Uniform => vec![1.0 / n as f64; n],
        das_workload::spec::PopularityConfig::Zipf { theta } => {
            let h: f64 = (1..=n).map(|k| (k as f64).powf(-theta)).sum();
            (1..=n).map(|k| (k as f64).powf(-theta) / h).collect()
        }
    };
    let partitioner = c.partitioner.build(c.servers);
    let op_rate_total = rate * w.mean_fanout();
    let mut load = vec![0.0f64; c.servers as usize];
    for (key, p) in probs.iter().enumerate() {
        let service = c.per_op_overhead.as_secs_f64()
            + keyspace.size_of(key as u64) as f64 / c.base_rate_bytes_per_sec;
        // With replication, least-loaded selection spreads a key across its
        // replica set; assume even spread for the check.
        let replicas = partitioner.replicas(key as u64, c.replication);
        let share = op_rate_total * p * service / replicas.len() as f64;
        for s in replicas {
            load[s.0 as usize] += share;
        }
    }
    let workers = c.workers_per_server as f64;
    let mean = load.iter().sum::<f64>() / load.len() as f64 / workers;
    let mut idx: Vec<usize> = (0..load.len()).collect();
    idx.sort_by(|&a, &b| load[b].total_cmp(&load[a]));
    println!("arrival rate: {rate:.0} req/s; mean offered load per server: {mean:.3}");
    println!("hottest shards:");
    for &i in idx.iter().take(5) {
        println!("  server {i}: offered load {:.3}", load[i] / workers);
    }
    let hottest = load[idx[0]] / workers;
    if hottest >= 0.95 {
        Err(format!(
            "UNSTABLE: server {} offered load {hottest:.3} >= 0.95 — results would be \
             horizon-dependent. Reduce load, add replication, skew, or hot-key caps.",
            idx[0]
        ))
    } else {
        println!("stable: hottest shard at {hottest:.3}");
        Ok(())
    }
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let [config_path, out_path] = args else {
        return Err("trace: expected <config.json> <out.jsonl>".into());
    };
    let config = load_config(config_path)?;
    write_workload(out_path, &config.record_workload())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let [config_path, trace_path, rest @ ..] = args else {
        return Err(
            "replay: expected <config.json> <workload.jsonl> [--out <dir>] [--trace <base>] \
             [--trace-sample <rate>] [--faults <faults.json>] [--overload <overload.json>]"
                .into(),
        );
    };
    let flags = EmitFlags::parse("replay", rest, false, true)?;
    let mut config = load_config(config_path)?;
    flags.arm_tracing(&mut config);
    flags.apply_overrides(&mut config)?;
    let file = fs::File::open(trace_path).map_err(|e| format!("opening {trace_path}: {e}"))?;
    let trace = read_trace(file).map_err(|e| e.to_string())?;
    validate_trace(&trace).map_err(|e| e.to_string())?;
    eprintln!(
        "replaying {} requests against {} policies...",
        trace.len(),
        config.policies.len()
    );
    let result = config.run_trace(&trace)?;
    emit_result(&result, &config, &flags)
}

/// Parses a `--oracles a,b,...` selection into an [`OracleConfig`],
/// defaulting to the full suite.
fn parse_oracles(spec: Option<&String>) -> Result<das_chaos::OracleConfig, String> {
    match spec {
        Some(s) => {
            let names: Vec<&str> = s.split(',').map(str::trim).collect();
            das_chaos::OracleConfig::only(&names)
        }
        None => Ok(das_chaos::OracleConfig::default()),
    }
}

fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let mut cfg = das_chaos::ChaosConfig {
        budget: 25,
        ..das_chaos::ChaosConfig::default()
    };
    let mut out_dir: Option<String> = None;
    let mut oracles_spec: Option<String> = None;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--seed" => {
                let s = rest.next().ok_or("--seed: missing value")?;
                cfg.seed = s
                    .parse()
                    .map_err(|_| format!("--seed: `{s}` is not an integer"))?;
            }
            "--budget" => {
                let s = rest.next().ok_or("--budget: missing value")?;
                cfg.budget = s
                    .parse()
                    .map_err(|_| format!("--budget: `{s}` is not an integer"))?;
                if cfg.budget == 0 {
                    return Err("--budget: must be positive".into());
                }
            }
            "--shrink-budget" => {
                let s = rest.next().ok_or("--shrink-budget: missing value")?;
                cfg.shrink_budget = s
                    .parse()
                    .map_err(|_| format!("--shrink-budget: `{s}` is not an integer"))?;
            }
            "--no-shrink" => cfg.shrink = false,
            "--out" => out_dir = Some(rest.next().ok_or("--out: missing directory")?.clone()),
            "--oracles" => {
                oracles_spec = Some(rest.next().ok_or("--oracles: missing a,b,...")?.clone());
            }
            "--space" => {
                let path = rest.next().ok_or("--space: missing path")?;
                let text =
                    fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                cfg.space =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            }
            other => return Err(format!("chaos: unexpected argument `{other}`")),
        }
    }
    cfg.oracles = parse_oracles(oracles_spec.as_ref())?;

    eprintln!(
        "chaos search: seed {}, budget {} (paired FCFS/DAS runs per case)...",
        cfg.seed, cfg.budget
    );
    let outcome = das_chaos::search(&cfg)?;
    println!("{}", outcome.report.render_markdown());

    if let Some(dir) = out_dir {
        let dir = Path::new(&dir);
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let json = serde_json::to_string_pretty(&outcome.report).map_err(|e| e.to_string())?;
        let report_path = dir.join("chaos_report.json");
        fs::write(&report_path, json + "\n")
            .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
        let md_path = dir.join("chaos_report.md");
        fs::write(&md_path, outcome.report.render_markdown())
            .map_err(|e| format!("writing {}: {e}", md_path.display()))?;
        eprintln!("wrote {} and {}", report_path.display(), md_path.display());
        for f in &outcome.findings {
            let reproducer = das_chaos::Reproducer {
                slug: f.slug.clone(),
                oracle: f.violation.oracle.clone(),
                policy: f.violation.policy.clone(),
                detail: f.violation.detail.clone(),
                measure: f.violation.measure,
                case: f.case.clone(),
            };
            let paths = das_core::chaos::write_artifacts(&reproducer, dir)?;
            eprintln!(
                "wrote reproducer {} ({} -> {} after {} shrink evals): {}",
                f.slug,
                f.size_before,
                f.size_after,
                f.shrink_evals,
                paths.case.display()
            );
        }
    } else if !outcome.findings.is_empty() {
        eprintln!(
            "{} finding(s); pass --out <dir> to write replayable reproducers",
            outcome.findings.len()
        );
    }
    Ok(())
}

fn cmd_chaos_verify(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("chaos-verify: missing <dir>")?;
    if dir.starts_with("--") {
        return Err("chaos-verify: expected <dir> [--oracles a,b,...]".into());
    }
    let mut oracles_spec: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--oracles" => {
                oracles_spec = Some(rest.next().ok_or("--oracles: missing a,b,...")?.clone());
            }
            other => return Err(format!("chaos-verify: unexpected argument `{other}`")),
        }
    }
    let oracles = parse_oracles(oracles_spec.as_ref())?;
    let corpus = das_chaos::read_corpus(Path::new(dir))?;
    if corpus.is_empty() {
        return Err(format!("chaos-verify: no *.case.json reproducers under {dir}"));
    }
    let mut failures = Vec::new();
    for r in &corpus {
        match r.verify(&oracles) {
            Ok(v) => println!(
                "ok   {} — {} ({}) still fires: {}",
                r.slug, v.oracle, v.policy, v.detail
            ),
            Err(e) => {
                println!("FAIL {} — {e}", r.slug);
                failures.push(r.slug.clone());
            }
        }
    }
    if failures.is_empty() {
        println!("verified {} reproducer(s)", corpus.len());
        Ok(())
    } else {
        Err(format!(
            "chaos-verify: {}/{} reproducer(s) no longer reproduce: {}",
            failures.len(),
            corpus.len(),
            failures.join(", ")
        ))
    }
}

fn read_event_log(path: &str) -> Result<das_trace::TraceLog, String> {
    let f = fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    das_trace::export::read_jsonl(std::io::BufReader::new(f))
        .map_err(|e| format!("reading {path}: {e}"))
}

fn file_stem(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn cmd_blame_diff(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "blame-diff: expected <a.jsonl> <b.jsonl> [<c.jsonl> ...] \
                         [--ladder n1,n2,...] [--out <summary.json>]";
    let mut paths: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut labels: Option<Vec<String>> = None;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--out" => out_path = Some(rest.next().ok_or("--out: missing path")?.clone()),
            "--ladder" => {
                let spec = rest.next().ok_or("--ladder: missing name1,name2,...")?;
                labels = Some(spec.split(',').map(|s| s.trim().to_string()).collect());
            }
            other if other.starts_with("--") => {
                return Err(format!("blame-diff: unexpected argument `{other}`"));
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() < 2 {
        return Err(USAGE.into());
    }
    let names: Vec<String> = match labels {
        Some(names) => {
            if names.len() != paths.len() {
                return Err(format!(
                    "--ladder: {} names for {} traces",
                    names.len(),
                    paths.len()
                ));
            }
            names
        }
        None => paths.iter().map(|p| file_stem(p)).collect(),
    };
    let logs: Vec<das_trace::TraceLog> = paths
        .iter()
        .map(|p| read_event_log(p))
        .collect::<Result<_, _>>()?;
    if logs.len() == 2 {
        let diff = das_trace::diff_traces(&logs[0], &logs[1]).map_err(|e| e.to_string())?;
        println!("{}", report::render_blame_diff(&names[0], &names[1], &diff));
        if let Some(out) = out_path {
            let json = serde_json::to_string_pretty(&diff.summary()).map_err(|e| e.to_string())?;
            fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        return Ok(());
    }
    let refs: Vec<&das_trace::TraceLog> = logs.iter().collect();
    let ladder = das_trace::ladder_diff(&refs).map_err(|e| e.to_string())?;
    println!("{}", report::render_ladder(&names, &ladder));
    if let Some(out) = out_path {
        let json =
            serde_json::to_string_pretty(&ladder.summary(&names)).map_err(|e| e.to_string())?;
        fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("top: missing <trace.jsonl>")?;
    if path.starts_with("--") {
        return Err("top: expected <trace.jsonl> [--epoch-ms N] [--workers N]".into());
    }
    let mut cfg = das_trace::TelemetryConfig::default();
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--epoch-ms" => {
                let s = rest.next().ok_or("--epoch-ms: missing value")?;
                let ms: u64 = s
                    .parse()
                    .map_err(|_| format!("--epoch-ms: `{s}` is not an integer"))?;
                if ms == 0 {
                    return Err("--epoch-ms: must be positive".into());
                }
                cfg.epoch_ns = ms * 1_000_000;
            }
            "--workers" => {
                let s = rest.next().ok_or("--workers: missing value")?;
                let w: u32 = s
                    .parse()
                    .map_err(|_| format!("--workers: `{s}` is not an integer"))?;
                if w == 0 {
                    return Err("--workers: must be positive".into());
                }
                cfg.workers = w;
            }
            other => return Err(format!("top: unexpected argument `{other}`")),
        }
    }
    let log = read_event_log(path)?;
    // Guard the busy/idle complement: overlapping service spans on one
    // server prove more workers than `--workers` claims, and folding with
    // the understated count would render busy > 100% and break the
    // `busy + idle == workers × horizon` conservation law.
    if let Some((server, min)) = das_trace::telemetry::min_workers(&log) {
        if min > cfg.workers {
            return Err(format!(
                "top: --workers {} understates the cluster that produced this trace: \
                 server {server} has up to {min} service spans open concurrently, so busy \
                 occupancy would exceed 100% of the assumed capacity. \
                 Re-run with --workers {min} (or more).",
                cfg.workers
            ));
        }
    }
    let telemetry = das_trace::telemetry::fold(&log, &cfg);
    println!("{}", report::render_top(&telemetry));
    Ok(())
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}
