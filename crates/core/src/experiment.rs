//! Experiment orchestration: run one workload against a set of policies
//! and compare.

use serde::{Deserialize, Serialize};

use das_metrics::summary::ComparisonTable;
use das_net::accounting::TrafficClass;
use das_sched::policy::PolicyKind;
use das_sim::rng::SeedFactory;
use das_sim::time::SimTime;
use das_store::config::{ClusterConfig, FaultProfile, OverloadProfile, SimulationConfig};
use das_trace::TraceConfig;
use das_store::engine::{run_simulation, RunResult};
use das_workload::generator::{RequestSpec, WorkloadGenerator, WorkloadSpec};

use crate::adapter::{trace_to_requests, RequestStream};

/// A full experiment: one workload, one cluster, many policies.
///
/// Every policy sees the *identical* request stream (same seed), so
/// differences in the results are attributable to scheduling alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Experiment name (used in reports).
    pub name: String,
    /// The workload.
    pub workload: WorkloadSpec,
    /// The cluster.
    pub cluster: ClusterConfig,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Master seed.
    pub seed: u64,
    /// Simulated seconds.
    pub horizon_secs: f64,
    /// Warmup to exclude from statistics, seconds.
    pub warmup_secs: f64,
    /// Bin width for RCT-over-time, seconds (`None` = skip).
    pub rct_timeseries_bin_secs: Option<f64>,
    /// Fault injection and recovery policy (defaults to none).
    #[serde(default)]
    pub faults: FaultProfile,
    /// Overload control: admission, bounded queues, retry budget, and
    /// batching (defaults to all off).
    #[serde(default)]
    pub overload: OverloadProfile,
    /// Structured event tracing, applied to every policy's run (defaults
    /// to off).
    #[serde(default)]
    pub trace: TraceConfig,
}

impl ExperimentConfig {
    /// A standard-policy experiment over `workload` with sensible run
    /// lengths.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec, cluster: ClusterConfig) -> Self {
        ExperimentConfig {
            name: name.into(),
            workload,
            cluster,
            policies: PolicyKind::standard_set(),
            seed: 42,
            horizon_secs: 10.0,
            warmup_secs: 1.0,
            rct_timeseries_bin_secs: None,
            faults: FaultProfile::none(),
            overload: OverloadProfile::none(),
            trace: TraceConfig::default(),
        }
    }

    /// The per-policy simulation config: everything from the experiment
    /// except the request source.
    fn sim_config(&self, policy: PolicyKind) -> SimulationConfig {
        SimulationConfig {
            cluster: self.cluster.clone(),
            policy,
            seed: self.seed,
            horizon_secs: self.horizon_secs,
            warmup_secs: self.warmup_secs,
            rct_timeseries_bin_secs: self.rct_timeseries_bin_secs,
            faults: self.faults.clone(),
            overload: self.overload,
            trace: self.trace,
        }
    }

    /// Runs every policy and collects the results.
    pub fn run(&self) -> Result<ExperimentResult, String> {
        let seeds = SeedFactory::new(self.seed);
        let horizon = SimTime::from_secs_f64(self.horizon_secs);
        let mut runs = Vec::with_capacity(self.policies.len());
        for &policy in &self.policies {
            let stream = RequestStream::new(&self.workload, &seeds, horizon);
            runs.push(run_simulation(&self.sim_config(policy), stream)?);
        }
        Ok(ExperimentResult {
            name: self.name.clone(),
            runs,
        })
    }

    /// Runs every policy over a pre-recorded workload trace instead of the
    /// generative stream: the arrivals, ids, keys, and write marks come
    /// from `trace` (injected in the pinned `(arrival, id)` order); key
    /// *sizes* are resolved from a key space rebuilt with this config's
    /// spec and seed, exactly as the generative path resolves them. A
    /// trace recorded by [`ExperimentConfig::record_workload`] therefore
    /// replays bit-identically to [`ExperimentConfig::run`] under the same
    /// seed — while the policy, cluster, fault, and overload knobs are
    /// free to differ from the recording run.
    pub fn run_trace(&self, trace: &[RequestSpec]) -> Result<ExperimentResult, String> {
        let seeds = SeedFactory::new(self.seed);
        let mut runs = Vec::with_capacity(self.policies.len());
        for &policy in &self.policies {
            let requests = trace_to_requests(trace, &self.workload, &seeds);
            runs.push(run_simulation(&self.sim_config(policy), requests)?);
        }
        Ok(ExperimentResult {
            name: self.name.clone(),
            runs,
        })
    }

    /// Materializes the exact [`RequestSpec`] stream that
    /// [`ExperimentConfig::run`] feeds each policy — same spec, seed, and
    /// horizon bound — for recording with
    /// [`das_workload::trace::write_trace`]. The generator is
    /// deterministic, so recording is a pure observation: runs with and
    /// without it are bit-identical.
    pub fn record_workload(&self) -> Vec<RequestSpec> {
        let seeds = SeedFactory::new(self.seed);
        let mut generator = WorkloadGenerator::new(&self.workload, &seeds);
        generator.take_until(SimTime::from_secs_f64(self.horizon_secs))
    }
}

/// The results of one experiment: one [`RunResult`] per policy.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Experiment name.
    pub name: String,
    /// One entry per configured policy, in configuration order.
    pub runs: Vec<RunResult>,
}

impl ExperimentResult {
    /// The run for `policy` (by display name).
    pub fn run(&self, policy: &str) -> Option<&RunResult> {
        self.runs.iter().find(|r| r.policy == policy)
    }

    /// Mean RCT of `policy` in seconds.
    pub fn mean_rct(&self, policy: &str) -> Option<f64> {
        self.run(policy).map(|r| r.mean_rct())
    }

    /// Percentage reduction of `policy`'s mean RCT vs `baseline`
    /// (positive = improvement).
    pub fn reduction_vs(&self, policy: &str, baseline: &str) -> Option<f64> {
        let p = self.mean_rct(policy)?;
        let b = self.mean_rct(baseline)?;
        (b > 0.0).then(|| (b - p) / b * 100.0)
    }

    /// The standard mean/p50/p95/p99 (+% vs FCFS) comparison table.
    pub fn table(&self) -> ComparisonTable {
        let mut t = ComparisonTable::new(
            &self.name,
            vec![
                "mean (ms)".into(),
                "p50 (ms)".into(),
                "p95 (ms)".into(),
                "p99 (ms)".into(),
                "vs FCFS (%)".into(),
            ],
        );
        let fcfs = self.mean_rct("FCFS");
        for r in &self.runs {
            let vs = match fcfs {
                Some(b) if b > 0.0 => (r.mean_rct() - b) / b * 100.0,
                _ => 0.0,
            };
            t.push_row(
                r.policy.clone(),
                vec![
                    r.mean_rct() * 1e3,
                    r.rct.p50() * 1e3,
                    r.rct.p95() * 1e3,
                    r.rct.p99() * 1e3,
                    vs,
                ],
            );
        }
        t
    }
}

/// A compact, serializable per-policy summary for persisting experiment
/// outputs (EXPERIMENTS.md data, bench JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Policy display name.
    pub policy: String,
    /// Requests measured.
    pub measured: u64,
    /// Mean RCT, seconds.
    pub mean_rct: f64,
    /// Median RCT, seconds.
    pub p50_rct: f64,
    /// p99 RCT, seconds.
    pub p99_rct: f64,
    /// p99.9 RCT, seconds.
    pub p999_rct: f64,
    /// p99.9 slowdown (starvation indicator).
    pub p999_slowdown: f64,
    /// Scheduling overhead bytes per measured request.
    pub overhead_bytes_per_request: f64,
    /// Hint messages per measured request.
    pub hints_per_request: f64,
    /// Mean server utilization.
    pub mean_utilization: f64,
    /// Zero-queueing lower bound on mean RCT, seconds.
    pub lower_bound_mean_rct: f64,
    /// Requests aborted after exhausting retries (0 in fault-free runs).
    #[serde(default)]
    pub aborted: u64,
    /// Per-op deadline expiries.
    #[serde(default)]
    pub timeouts: u64,
    /// Retry dispatches.
    #[serde(default)]
    pub retries: u64,
    /// Hedge dispatches.
    #[serde(default)]
    pub hedges: u64,
    /// Fraction of accepted requests that completed (1.0 when fault-free).
    #[serde(default = "default_availability")]
    pub availability: f64,
    /// Fraction of service time spent on work that was thrown away.
    #[serde(default)]
    pub wasted_work_fraction: f64,
    /// Requests shed by deadline-aware admission (never dispatched).
    #[serde(default)]
    pub shed_admission: u64,
    /// Requests shed at a full server queue.
    #[serde(default)]
    pub shed_queue: u64,
    /// Shed requests / offered requests, in `[0, 1]`.
    #[serde(default)]
    pub shed_fraction: f64,
    /// Retry dispatches denied by the backpressure token budget.
    #[serde(default)]
    pub retries_denied: u64,
    /// Hedge dispatches denied by the backpressure token budget.
    #[serde(default)]
    pub hedges_denied: u64,
    /// Coalesced batch visits (0 when batching is off).
    #[serde(default)]
    pub batches: u64,
    /// Mean ops per coalesced visit (0.0 when no batch formed).
    #[serde(default)]
    pub mean_batch_size: f64,
}

fn default_availability() -> f64 {
    1.0
}

impl PolicySummary {
    /// Summarizes a run.
    pub fn from_run(run: &RunResult) -> Self {
        let per_req = |v: u64| {
            if run.measured == 0 {
                0.0
            } else {
                v as f64 / run.measured as f64
            }
        };
        PolicySummary {
            policy: run.policy.clone(),
            measured: run.measured,
            mean_rct: run.mean_rct(),
            p50_rct: run.rct.p50(),
            p99_rct: run.rct.p99(),
            p999_rct: run.rct.p999(),
            p999_slowdown: run.slowdown.overall_p999(),
            overhead_bytes_per_request: per_req(run.traffic.overhead_bytes()),
            hints_per_request: per_req(run.traffic.messages(TrafficClass::ProgressHint)),
            mean_utilization: run.mean_utilization,
            lower_bound_mean_rct: run.lower_bound_mean_rct,
            aborted: run.recovery.aborted,
            timeouts: run.recovery.timeouts,
            retries: run.recovery.retries,
            hedges: run.recovery.hedges,
            availability: run.recovery.availability(),
            wasted_work_fraction: run.recovery.wasted_fraction(),
            shed_admission: run.recovery.shed_admission,
            shed_queue: run.recovery.shed_queue,
            shed_fraction: run.recovery.shed_fraction(),
            retries_denied: run.recovery.retries_denied,
            hedges_denied: run.recovery.hedges_denied,
            batches: run.recovery.batching.batches,
            mean_batch_size: if run.recovery.batching.batches == 0 {
                0.0
            } else {
                run.recovery.batching.mean_batch_size()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_workload::spec::{ArrivalConfig, FanoutConfig, PopularityConfig, SizeConfig};

    fn quick_experiment() -> ExperimentConfig {
        let cluster = ClusterConfig {
            servers: 8,
            ..Default::default()
        };
        let workload = WorkloadSpec {
            n_keys: 10_000,
            arrival: ArrivalConfig::Poisson { rate: 2000.0 },
            fanout: FanoutConfig::Uniform { min: 1, max: 8 },
            sizes: SizeConfig::Fixed { bytes: 20_000 },
            popularity: PopularityConfig::Uniform,
            hot_key_size_cap: None,
            write_fraction: 0.0,
        };
        let mut e = ExperimentConfig::new("quick", workload, cluster);
        e.horizon_secs = 1.0;
        e.warmup_secs = 0.1;
        e
    }

    #[test]
    fn runs_all_policies_on_identical_streams() {
        let e = quick_experiment();
        let result = e.run().unwrap();
        assert_eq!(result.runs.len(), PolicyKind::standard_set().len());
        // Paired streams: every policy saw the same number of requests.
        let counts: Vec<u64> = result.runs.iter().map(|r| r.completed).collect();
        assert!(counts.iter().all(|&c| c == counts[0] && c > 0));
    }

    #[test]
    fn table_has_all_rows() {
        let e = quick_experiment();
        let result = e.run().unwrap();
        let t = result.table();
        assert_eq!(t.rows().len(), result.runs.len());
        assert!(t.value("FCFS", "mean (ms)").unwrap() > 0.0);
        assert!(t.value("DAS", "vs FCFS (%)").is_some());
    }

    #[test]
    fn reduction_helpers() {
        let e = quick_experiment();
        let result = e.run().unwrap();
        let red = result.reduction_vs("DAS", "FCFS").unwrap();
        assert!(red.is_finite());
        assert!(result.reduction_vs("nope", "FCFS").is_none());
        assert!(result.mean_rct("DAS").unwrap() > 0.0);
    }

    #[test]
    fn summary_serializes() {
        let e = quick_experiment();
        let result = e.run().unwrap();
        let s = PolicySummary::from_run(&result.runs[0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: PolicySummary = serde_json::from_str(&json).unwrap();
        // JSON prints shortest-roundtrip decimals; compare with tolerance.
        assert_eq!(s.policy, back.policy);
        assert_eq!(s.measured, back.measured);
        assert!((s.mean_rct - back.mean_rct).abs() < 1e-12);
        assert!((s.p99_rct - back.p99_rct).abs() < 1e-12);
        assert!(s.mean_rct >= s.lower_bound_mean_rct * 0.99);
    }

    #[test]
    fn recorded_workload_replays_identically() {
        let mut e = quick_experiment();
        e.policies = vec![PolicyKind::Fcfs, PolicyKind::das()];
        let trace = e.record_workload();
        assert!(!trace.is_empty());
        das_workload::trace::validate_trace(&trace).unwrap();
        let direct = e.run().unwrap();
        let replayed = e.run_trace(&trace).unwrap();
        for (d, r) in direct.runs.iter().zip(&replayed.runs) {
            assert_eq!(d.policy, r.policy);
            assert_eq!(d.completed, r.completed);
            assert_eq!(d.mean_rct().to_bits(), r.mean_rct().to_bits(), "{}", d.policy);
            assert_eq!(d.events_processed, r.events_processed, "{}", d.policy);
        }
    }

    #[test]
    fn config_serde_roundtrip() {
        let e = quick_experiment();
        let json = serde_json::to_string(&e).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
