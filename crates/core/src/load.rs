//! Offered-load arithmetic: translating between arrival rates and
//! per-server utilization so experiments can sweep load ρ directly.

use das_store::config::ClusterConfig;
use das_workload::generator::WorkloadSpec;

/// Expected seconds of *server* work one request injects into the cluster:
/// per-op overheads plus the bytes it reads at the nominal rate.
///
/// Per-server coalescing makes the true op count slightly smaller than the
/// key fan-out; using the fan-out makes this a small over-estimate, i.e.
/// sweeps land marginally under the target load — the safe direction.
pub fn work_per_request_secs(workload: &WorkloadSpec, cluster: &ClusterConfig) -> f64 {
    let ops = workload.mean_fanout();
    let bytes = workload.mean_request_bytes();
    ops * cluster.per_op_overhead.as_secs_f64() + bytes / cluster.base_rate_bytes_per_sec
}

/// The per-server utilization `rho` produced by `rate` requests/second.
pub fn offered_load(rate: f64, workload: &WorkloadSpec, cluster: &ClusterConfig) -> f64 {
    rate * work_per_request_secs(workload, cluster)
        / (cluster.servers as f64 * cluster.workers_per_server as f64)
}

/// The arrival rate (requests/second) that produces per-server utilization
/// `rho`.
///
/// # Panics
/// Panics unless `0 < rho < 2` (loads ≥ 1 are unstable but deliberately
/// used by the overload experiments, which sweep past saturation).
pub fn arrival_rate_for_load(rho: f64, workload: &WorkloadSpec, cluster: &ClusterConfig) -> f64 {
    assert!(rho > 0.0 && rho < 2.0, "rho = {rho} out of range");
    rho * cluster.servers as f64 * cluster.workers_per_server as f64
        / work_per_request_secs(workload, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_workload::spec::{ArrivalConfig, FanoutConfig, PopularityConfig, SizeConfig};

    fn simple_workload() -> WorkloadSpec {
        WorkloadSpec {
            n_keys: 1000,
            arrival: ArrivalConfig::Poisson { rate: 1.0 },
            fanout: FanoutConfig::Constant { keys: 4 },
            sizes: SizeConfig::Fixed { bytes: 100_000 },
            popularity: PopularityConfig::Uniform,
            hot_key_size_cap: None,
            write_fraction: 0.0,
        }
    }

    #[test]
    fn work_per_request_closed_form() {
        let w = simple_workload();
        let c = ClusterConfig::default(); // 5us overhead, 1e9 B/s
        let expect = 4.0 * 5e-6 + 400_000.0 / 1e9;
        assert!((work_per_request_secs(&w, &c) - expect).abs() < 1e-12);
    }

    #[test]
    fn load_and_rate_are_inverses() {
        let w = simple_workload();
        let c = ClusterConfig::default();
        for rho in [0.1, 0.5, 0.9] {
            let rate = arrival_rate_for_load(rho, &w, &c);
            let back = offered_load(rate, &w, &c);
            assert!((back - rho).abs() < 1e-9, "rho {rho} -> {back}");
        }
    }

    #[test]
    fn more_servers_allow_more_rate() {
        let w = simple_workload();
        let small = ClusterConfig {
            servers: 10,
            ..Default::default()
        };
        let big = ClusterConfig {
            servers: 100,
            ..Default::default()
        };
        assert!(
            arrival_rate_for_load(0.5, &w, &big) > arrival_rate_for_load(0.5, &w, &small) * 9.0
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_load_rejected() {
        let _ = arrival_rate_for_load(2.0, &simple_workload(), &ClusterConfig::default());
    }
}
