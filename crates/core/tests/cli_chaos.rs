//! CLI smoke tests for the chaos-search surface of `das_experiment`:
//! `chaos` byte-determinism, replayable artifact output, the
//! `replay --faults/--overload` overrides, and `chaos-verify` verdicts.

// Integration tests unwrap freely: a panic is the failure report.
#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use das_chaos::{Reproducer, SearchSpace};
use das_core::chaos::write_artifacts;
use das_sim::rng::SeedFactory;

fn das_experiment(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_das_experiment"))
        .args(args)
        .output()
        .expect("spawn das_experiment")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch dir under the target-adjacent temp root, cleaned on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("das_cli_chaos").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An artifact set for a synthetic reproducer (the verdict fields are
/// placeholders; these tests replay the config, they don't verify it).
fn write_sample_artifacts(dir: &Path) -> das_core::chaos::ArtifactPaths {
    let case = SearchSpace::default()
        .generate(&SeedFactory::new(77), 0)
        .unwrap();
    let r = Reproducer {
        slug: "case0000_smoke".into(),
        oracle: "das-regression".into(),
        policy: "pair".into(),
        detail: "smoke".into(),
        measure: 1.0,
        case,
    };
    write_artifacts(&r, dir).unwrap()
}

#[test]
fn chaos_search_is_byte_deterministic_across_invocations() {
    // The acceptance criterion from the issue: `das_experiment chaos
    // --seed S --budget N` produces identical findings byte-for-byte on
    // every invocation.
    let dir_a = scratch("det-a");
    let dir_b = scratch("det-b");
    for dir in [&dir_a, &dir_b] {
        let out = das_experiment(&[
            "chaos",
            "--seed",
            "3",
            "--budget",
            "2",
            "--shrink-budget",
            "10",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "chaos failed: {}", stderr(&out));
        assert!(
            stdout(&out).contains("# Chaos search report"),
            "{}",
            stdout(&out)
        );
    }
    let report_a = std::fs::read(dir_a.join("chaos_report.json")).unwrap();
    let report_b = std::fs::read(dir_b.join("chaos_report.json")).unwrap();
    assert!(!report_a.is_empty());
    assert_eq!(report_a, report_b, "chaos_report.json must be byte-stable");
    let md_a = std::fs::read(dir_a.join("chaos_report.md")).unwrap();
    let md_b = std::fs::read(dir_b.join("chaos_report.md")).unwrap();
    assert_eq!(md_a, md_b);
}

#[test]
fn chaos_rejects_bad_arguments() {
    let out = das_experiment(&["chaos", "--budget", "0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--budget"), "{}", stderr(&out));
    let out = das_experiment(&["chaos", "--oracles", "no-such-oracle"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("no-such-oracle"), "{}", stderr(&out));
    let out = das_experiment(&["chaos", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unexpected argument"), "{}", stderr(&out));
}

#[test]
fn replay_accepts_fault_and_overload_overrides() {
    let dir = scratch("replay-overrides");
    let paths = write_sample_artifacts(&dir);

    // Replaying the reproducer's config + workload is the documented
    // round-trip for a committed artifact.
    let out = das_experiment(&[
        "replay",
        paths.config.to_str().unwrap(),
        paths.workload.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "replay failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("FCFS") && text.contains("DAS"), "{text}");

    // The same replay with the fault and overload profiles grafted from
    // their split-out files must also run (identical composition here).
    let out = das_experiment(&[
        "replay",
        paths.config.to_str().unwrap(),
        paths.workload.to_str().unwrap(),
        "--faults",
        paths.faults.to_str().unwrap(),
        "--overload",
        paths.overload.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "override replay failed: {}", stderr(&out));
    assert!(stdout(&out).contains("FCFS"), "{}", stdout(&out));

    // A missing override file is a load error, not a silent default.
    let out = das_experiment(&[
        "replay",
        paths.config.to_str().unwrap(),
        paths.workload.to_str().unwrap(),
        "--faults",
        dir.join("nope.json").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("nope.json"), "{}", stderr(&out));

    // An override that breaks a config invariant (loss without retries)
    // is rejected by validation before any simulation runs.
    let invalid = dir.join("invalid_faults.json");
    std::fs::write(
        &invalid,
        r#"{"request_faults": {"loss": 0.5}}"#,
    )
    .unwrap();
    let out = das_experiment(&[
        "replay",
        paths.config.to_str().unwrap(),
        paths.workload.to_str().unwrap(),
        "--faults",
        invalid.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "invalid override must be rejected");

    // `run` does not accept the overrides — they are replay-only.
    let out = das_experiment(&[
        "run",
        paths.config.to_str().unwrap(),
        "--faults",
        paths.faults.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unexpected argument"), "{}", stderr(&out));
}

#[test]
fn chaos_verify_flags_verdict_drift() {
    // A reproducer claiming a violation that cannot fire on its case must
    // fail verification loudly.
    let dir = scratch("verify-drift");
    let case = SearchSpace::default()
        .generate(&SeedFactory::new(77), 1)
        .unwrap();
    let bogus = Reproducer {
        slug: "case0001_bogus".into(),
        oracle: "exactly-once".into(),
        policy: "das".into(),
        detail: "cannot fire on an ordinary case".into(),
        measure: 2.0,
        case,
    };
    write_artifacts(&bogus, &dir).unwrap();
    let out = das_experiment(&["chaos-verify", dir.to_str().unwrap()]);
    assert!(!out.status.success(), "drifted verdict must fail");
    assert!(stdout(&out).contains("FAIL case0001_bogus"), "{}", stdout(&out));

    // An empty directory is an error, not a vacuous pass.
    let empty = scratch("verify-empty");
    let out = das_experiment(&["chaos-verify", empty.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("no *.case.json"), "{}", stderr(&out));
}
