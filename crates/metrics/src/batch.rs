//! Batch-means confidence intervals for steady-state simulation output.
//!
//! Raw RCT observations from one run are heavily autocorrelated (they share
//! queues), so the naive sample variance understates uncertainty. The
//! classic remedy is *batch means*: split the stream into `B` contiguous
//! batches, treat each batch's mean as one (approximately independent)
//! observation, and build the confidence interval from those.
//!
//! This implementation keeps a fixed number of batches and doubles the
//! batch size whenever they fill up, so it works for streams of unknown
//! length in O(B) memory.

use serde::{Deserialize, Serialize};

/// Number of batches kept (a standard choice: 20–40).
const BATCHES: usize = 32;

/// Streaming batch-means accumulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    /// Completed batch sums (each over `batch_size` observations).
    sums: Vec<f64>,
    /// Current (incomplete) batch.
    current_sum: f64,
    current_count: u64,
    batch_size: u64,
    total_count: u64,
    total_sum: f64,
}

impl Default for BatchMeans {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchMeans {
    /// An empty accumulator.
    pub fn new() -> Self {
        BatchMeans {
            sums: Vec::with_capacity(BATCHES),
            current_sum: 0.0,
            current_count: 0,
            batch_size: 1,
            total_count: 0,
            total_sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total_count += 1;
        self.total_sum += x;
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.sums.push(self.current_sum);
            self.current_sum = 0.0;
            self.current_count = 0;
            if self.sums.len() == BATCHES {
                // Collapse pairs: batch size doubles, batch count halves.
                self.sums = self.sums.chunks(2).map(|pair| pair.iter().sum()).collect();
                self.batch_size *= 2;
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total_count
    }

    /// The overall mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            self.total_sum / self.total_count as f64
        }
    }

    /// Number of completed batches currently held.
    pub fn batches(&self) -> usize {
        self.sums.len()
    }

    /// The half-width of the ~95 % confidence interval on the mean, or
    /// `None` with fewer than 8 completed batches (too little data for a
    /// meaningful interval).
    pub fn ci95_half_width(&self) -> Option<f64> {
        let b = self.sums.len();
        if b < 8 {
            return None;
        }
        let n = self.batch_size as f64;
        let means: Vec<f64> = self.sums.iter().map(|s| s / n).collect();
        let m = means.iter().sum::<f64>() / b as f64;
        let var = means.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (b as f64 - 1.0);
        let se = (var / b as f64).sqrt();
        Some(t_quantile_975(b - 1) * se)
    }

    /// `(mean, half_width)` when a CI is available.
    pub fn mean_with_ci(&self) -> Option<(f64, f64)> {
        self.ci95_half_width().map(|hw| (self.mean(), hw))
    }
}

/// Accounting for engine-level batch coalescing: how many server visits
/// were merged and how much fixed per-op overhead the merging amortized
/// away.
///
/// One accumulator is filled per run; with batching off it stays all-zero
/// and serializes to the same shape, so results stay comparable across
/// configurations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchingStats {
    /// Coalesced batches formed (each occupied one worker visit).
    pub batches: u64,
    /// Ops that rode along as batch followers (excludes each batch's
    /// leader; `0` when batching never fired).
    pub batched_ops: u64,
    /// Server-seconds of fixed per-op overhead saved by amortization.
    pub overhead_saved_secs: f64,
}

impl BatchingStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one coalesced batch of `size` ops (leader included,
    /// `size >= 2`) that saved `overhead_saved_secs` of fixed overhead.
    pub fn record(&mut self, size: u32, overhead_saved_secs: f64) {
        self.batches += 1;
        self.batched_ops += u64::from(size.saturating_sub(1));
        self.overhead_saved_secs += overhead_saved_secs;
    }

    /// Mean ops per coalesced batch, leader included (0 when none formed).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.batched_ops + self.batches) as f64 / self.batches as f64
        }
    }
}

/// Two-sided 97.5 % Student-t quantile by degrees of freedom (tabulated for
/// small df, converging to the normal 1.96).
fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 31] = [
        f64::INFINITY,
        12.706,
        4.303,
        3.182,
        2.776,
        2.571,
        2.447,
        2.365,
        2.306,
        2.262,
        2.228,
        2.201,
        2.179,
        2.160,
        2.145,
        2.131,
        2.120,
        2.110,
        2.101,
        2.093,
        2.086,
        2.080,
        2.074,
        2.069,
        2.064,
        2.060,
        2.056,
        2.052,
        2.048,
        2.045,
        2.042,
    ];
    if df < TABLE.len() {
        TABLE[df]
    } else {
        1.96 + 2.4 / df as f64 // smooth approach to the normal quantile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_small() {
        let mut b = BatchMeans::new();
        assert_eq!(b.mean(), 0.0);
        assert_eq!(b.ci95_half_width(), None);
        b.record(5.0);
        assert_eq!(b.mean(), 5.0);
        assert_eq!(b.count(), 1);
        assert!(b.ci95_half_width().is_none());
    }

    #[test]
    fn mean_is_exact_regardless_of_batching() {
        let mut b = BatchMeans::new();
        for i in 1..=1000 {
            b.record(i as f64);
        }
        assert!((b.mean() - 500.5).abs() < 1e-9);
        assert_eq!(b.count(), 1000);
    }

    #[test]
    fn batch_count_stays_bounded() {
        let mut b = BatchMeans::new();
        for i in 0..100_000 {
            b.record((i % 7) as f64);
        }
        assert!(b.batches() < 64, "batches = {}", b.batches());
        assert!(b.ci95_half_width().is_some());
    }

    #[test]
    fn iid_ci_covers_true_mean() {
        // Deterministic pseudo-random stream with known mean 0.5.
        let mut b = BatchMeans::new();
        let mut x = 0.123f64;
        for _ in 0..50_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            b.record(x);
        }
        let (mean, hw) = b.mean_with_ci().unwrap();
        assert!(
            (mean - 0.5).abs() <= hw.max(0.01),
            "mean {mean} +- {hw} should cover 0.5"
        );
        assert!(hw < 0.05, "half-width {hw} suspiciously wide");
    }

    #[test]
    fn correlated_stream_gets_wider_ci_than_naive() {
        // A slowly drifting series: batch means capture the drift variance.
        let mut b = BatchMeans::new();
        let n = 20_000;
        for i in 0..n {
            let drift = ((i as f64 / n as f64) * std::f64::consts::TAU).sin();
            b.record(drift);
        }
        let hw = b.ci95_half_width().unwrap();
        // Naive SE of iid samples would be ~ sigma/sqrt(n) ≈ 0.005; the
        // batched interval must be far wider.
        assert!(hw > 0.05, "hw = {hw}");
    }

    #[test]
    fn ignores_non_finite() {
        let mut b = BatchMeans::new();
        b.record(f64::NAN);
        b.record(f64::INFINITY);
        b.record(1.0);
        assert_eq!(b.count(), 1);
        assert_eq!(b.mean(), 1.0);
    }

    #[test]
    fn batching_stats_accumulate() {
        let mut b = BatchingStats::new();
        assert_eq!(b.mean_batch_size(), 0.0);
        b.record(4, 3e-6);
        b.record(2, 1e-6);
        assert_eq!(b.batches, 2);
        assert_eq!(b.batched_ops, 4);
        assert!((b.mean_batch_size() - 3.0).abs() < 1e-12);
        assert!((b.overhead_saved_secs - 4e-6).abs() < 1e-15);
        let json = serde_json::to_string(&b).unwrap();
        let back: BatchingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn t_table_monotone_to_normal() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(30));
        assert!((t_quantile_975(1000) - 1.96).abs() < 0.01);
    }
}
