//! Fixed-width-bin time series for "metric over time" figures (e.g. RCT
//! during a load spike).

use serde::{Deserialize, Serialize};

/// Accumulates `(time, value)` observations into fixed-width bins and
/// reports the per-bin mean, count, and max.
///
/// ```
/// use das_metrics::timeseries::TimeSeries;
///
/// let mut ts = TimeSeries::new(1.0); // 1-second bins
/// ts.record(0.2, 10.0);
/// ts.record(0.7, 20.0);
/// ts.record(1.5, 100.0);
/// let bins = ts.bins();
/// assert_eq!(bins.len(), 2);
/// assert_eq!(bins[0].mean(), 15.0);
/// assert_eq!(bins[1].mean(), 100.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width: f64,
    bins: Vec<Bin>,
}

/// One aggregation bin of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Bin {
    /// Start of the bin (inclusive), in the same unit as the record times.
    pub start: f64,
    /// Number of observations in the bin.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value (`0` when empty).
    pub max: f64,
}

impl Bin {
    /// Mean of the bin's observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl TimeSeries {
    /// Creates a series with the given bin width (must be positive).
    pub fn new(bin_width: f64) -> Self {
        assert!(bin_width.is_finite() && bin_width > 0.0);
        TimeSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Records `value` observed at `time` (non-negative).
    pub fn record(&mut self, time: f64, value: f64) {
        if !time.is_finite() || time < 0.0 || !value.is_finite() {
            return;
        }
        let idx = (time / self.bin_width) as usize;
        if idx >= self.bins.len() {
            let old_len = self.bins.len();
            self.bins.resize(idx + 1, Bin::default());
            for (i, b) in self.bins.iter_mut().enumerate().skip(old_len) {
                b.start = i as f64 * self.bin_width;
            }
        }
        let b = &mut self.bins[idx];
        b.count += 1;
        b.sum += value;
        b.max = b.max.max(value);
    }

    /// All bins from time zero through the latest observation (bins with no
    /// observations have `count == 0`).
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// The bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// `(bin_start, mean)` pairs for plotting, skipping empty bins.
    pub fn mean_series(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| (b.start, b.mean()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut ts = TimeSeries::new(0.5);
        ts.record(0.1, 1.0);
        ts.record(0.4, 3.0);
        ts.record(0.6, 10.0);
        let bins = ts.bins();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[0].mean(), 2.0);
        assert_eq!(bins[0].max, 3.0);
        assert_eq!(bins[1].mean(), 10.0);
        assert_eq!(bins[0].start, 0.0);
        assert_eq!(bins[1].start, 0.5);
    }

    #[test]
    fn gaps_are_empty_bins() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(0.5, 1.0);
        ts.record(3.5, 2.0);
        assert_eq!(ts.bins().len(), 4);
        assert_eq!(ts.bins()[1].count, 0);
        assert_eq!(ts.bins()[2].count, 0);
        assert_eq!(ts.mean_series(), vec![(0.0, 1.0), (3.0, 2.0)]);
    }

    #[test]
    fn ignores_invalid_inputs() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(-1.0, 5.0);
        ts.record(f64::NAN, 5.0);
        ts.record(1.0, f64::INFINITY);
        assert!(ts.bins().is_empty() || ts.bins().iter().all(|b| b.count == 0));
    }

    #[test]
    fn empty_bin_mean_is_zero() {
        assert_eq!(Bin::default().mean(), 0.0);
    }
}
