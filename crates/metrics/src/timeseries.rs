//! Fixed-width-bin time series for "metric over time" figures (e.g. RCT
//! during a load spike).

use serde::{Deserialize, Serialize};

/// Accumulates `(time, value)` observations into fixed-width bins and
/// reports the per-bin mean, count, and max.
///
/// ```
/// use das_metrics::timeseries::TimeSeries;
///
/// let mut ts = TimeSeries::new(1.0); // 1-second bins
/// ts.record(0.2, 10.0);
/// ts.record(0.7, 20.0);
/// ts.record(1.5, 100.0);
/// let bins = ts.bins();
/// assert_eq!(bins.len(), 2);
/// assert_eq!(bins[0].mean(), 15.0);
/// assert_eq!(bins[1].mean(), 100.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width: f64,
    bins: Vec<Bin>,
}

/// One aggregation bin of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Bin {
    /// Start of the bin (inclusive), in the same unit as the record times.
    pub start: f64,
    /// Number of observations in the bin.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value (`0` when empty).
    pub max: f64,
}

impl Bin {
    /// Mean of the bin's observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl TimeSeries {
    /// Creates a series with the given bin width (must be positive).
    pub fn new(bin_width: f64) -> Self {
        assert!(bin_width.is_finite() && bin_width > 0.0);
        TimeSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Records `value` observed at `time` (non-negative).
    pub fn record(&mut self, time: f64, value: f64) {
        if !time.is_finite() || time < 0.0 || !value.is_finite() {
            return;
        }
        let idx = (time / self.bin_width) as usize;
        if idx >= self.bins.len() {
            let old_len = self.bins.len();
            self.bins.resize(idx + 1, Bin::default());
            for (i, b) in self.bins.iter_mut().enumerate().skip(old_len) {
                b.start = i as f64 * self.bin_width;
            }
        }
        let b = &mut self.bins[idx];
        b.count += 1;
        b.sum += value;
        b.max = b.max.max(value);
    }

    /// All bins from time zero through the latest observation (bins with no
    /// observations have `count == 0`).
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// The bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// `(bin_start, mean)` pairs for plotting, skipping empty bins.
    pub fn mean_series(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| (b.start, b.mean()))
            .collect()
    }
}

/// Integer-nanosecond fixed-width-bin time series: the exact-accounting
/// sibling of [`TimeSeries`] for telemetry aggregation, where the sums
/// must stay lossless (float accumulation drifts once per-bin sums pass
/// 2^53 ns ≈ 104 days of busy time, and bin assignment via `f64` division
/// can mis-bucket near boundaries).
///
/// ```
/// use das_metrics::timeseries::TimeSeriesNs;
///
/// let mut ts = TimeSeriesNs::new(1_000); // 1 µs bins
/// ts.record(200, 10);
/// ts.record(700, 20);
/// ts.record(1_500, 100);
/// let bins = ts.bins();
/// assert_eq!(bins.len(), 2);
/// assert_eq!(bins[0].sum_ns, 30);
/// assert_eq!(bins[1].max_ns, 100);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeriesNs {
    bin_width_ns: u64,
    bins: Vec<BinNs>,
}

/// One aggregation bin of a [`TimeSeriesNs`]. All fields are exact
/// integers; float views (mean seconds, …) belong to the presentation
/// layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinNs {
    /// Start of the bin (inclusive), nanoseconds.
    pub start_ns: u64,
    /// Number of observations in the bin.
    pub count: u64,
    /// Exact sum of observed values, nanoseconds.
    pub sum_ns: u64,
    /// Largest observed value (`0` when empty), nanoseconds.
    pub max_ns: u64,
}

impl BinNs {
    /// Integer mean of the bin's observations, rounded down (0 when
    /// empty — the same guard [`Bin::mean`] applies, with no NaN to
    /// guard against in the first place).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

impl TimeSeriesNs {
    /// Creates a series with the given bin width (must be non-zero).
    pub fn new(bin_width_ns: u64) -> Self {
        assert!(bin_width_ns > 0, "bin width must be non-zero");
        TimeSeriesNs {
            bin_width_ns,
            bins: Vec::new(),
        }
    }

    /// Records `value_ns` observed at `t_ns`. Exact: bin assignment is
    /// integer division, accumulation is integer addition.
    pub fn record(&mut self, t_ns: u64, value_ns: u64) {
        let idx = (t_ns / self.bin_width_ns) as usize;
        if idx >= self.bins.len() {
            let old_len = self.bins.len();
            self.bins.resize(idx + 1, BinNs::default());
            for (i, b) in self.bins.iter_mut().enumerate().skip(old_len) {
                b.start_ns = i as u64 * self.bin_width_ns;
            }
        }
        let b = &mut self.bins[idx];
        b.count += 1;
        b.sum_ns += value_ns;
        b.max_ns = b.max_ns.max(value_ns);
    }

    /// All bins from time zero through the latest observation (bins with
    /// no observations have `count == 0`).
    pub fn bins(&self) -> &[BinNs] {
        &self.bins
    }

    /// The bin width, nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    /// Exact total of every recorded value, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.bins.iter().map(|b| b.sum_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut ts = TimeSeries::new(0.5);
        ts.record(0.1, 1.0);
        ts.record(0.4, 3.0);
        ts.record(0.6, 10.0);
        let bins = ts.bins();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[0].mean(), 2.0);
        assert_eq!(bins[0].max, 3.0);
        assert_eq!(bins[1].mean(), 10.0);
        assert_eq!(bins[0].start, 0.0);
        assert_eq!(bins[1].start, 0.5);
    }

    #[test]
    fn gaps_are_empty_bins() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(0.5, 1.0);
        ts.record(3.5, 2.0);
        assert_eq!(ts.bins().len(), 4);
        assert_eq!(ts.bins()[1].count, 0);
        assert_eq!(ts.bins()[2].count, 0);
        assert_eq!(ts.mean_series(), vec![(0.0, 1.0), (3.0, 2.0)]);
    }

    #[test]
    fn ignores_invalid_inputs() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(-1.0, 5.0);
        ts.record(f64::NAN, 5.0);
        ts.record(1.0, f64::INFINITY);
        assert!(ts.bins().is_empty() || ts.bins().iter().all(|b| b.count == 0));
    }

    #[test]
    fn empty_bin_mean_is_zero() {
        // Pins the count == 0 guard: an empty bin must report 0, not NaN.
        assert_eq!(Bin::default().mean(), 0.0);
        let b = Bin {
            start: 1.0,
            count: 0,
            sum: 0.0,
            max: 0.0,
        };
        assert!(!b.mean().is_nan());
        assert_eq!(b.mean(), 0.0);
    }

    #[test]
    fn integer_bins_accumulate_exactly() {
        let mut ts = TimeSeriesNs::new(500);
        ts.record(100, 1);
        ts.record(400, 3);
        ts.record(600, 10);
        let bins = ts.bins();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[0].sum_ns, 4);
        assert_eq!(bins[0].mean_ns(), 2);
        assert_eq!(bins[0].max_ns, 3);
        assert_eq!(bins[1].start_ns, 500);
        assert_eq!(ts.total_ns(), 14);
        assert_eq!(ts.bin_width_ns(), 500);
    }

    #[test]
    fn integer_boundary_lands_in_the_upper_bin() {
        // Exact boundaries bucket deterministically: t == k·width goes to
        // bin k, with no float rounding to flip it.
        let mut ts = TimeSeriesNs::new(1000);
        ts.record(1000, 7);
        assert_eq!(ts.bins().len(), 2);
        assert_eq!(ts.bins()[0].count, 0);
        assert_eq!(ts.bins()[1].count, 1);
    }

    #[test]
    fn integer_gaps_are_empty_bins_and_empty_mean_is_zero() {
        let mut ts = TimeSeriesNs::new(100);
        ts.record(50, 1);
        ts.record(350, 2);
        assert_eq!(ts.bins().len(), 4);
        assert_eq!(ts.bins()[1], BinNs {
            start_ns: 100,
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        });
        assert_eq!(ts.bins()[1].mean_ns(), 0);
    }
}
