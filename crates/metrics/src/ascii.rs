//! Terminal visualization: Unicode sparklines and horizontal bar charts,
//! so experiment binaries can show shape at a glance without leaving the
//! terminal.

use crate::summary::ComparisonTable;

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a one-line Unicode sparkline, scaled to the data's
/// own min..max range. Non-finite values render as spaces.
///
/// ```
/// use das_metrics::ascii::sparkline;
///
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0]);
/// assert_eq!(s.chars().count(), 7);
/// assert!(s.starts_with('▁'));
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(values.len());
    }
    let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else {
                let t = ((v - min) / span * (BLOCKS.len() - 1) as f64).round() as usize;
                BLOCKS[t.min(BLOCKS.len() - 1)]
            }
        })
        .collect()
}

/// Renders one column of a [`ComparisonTable`] as a horizontal bar chart
/// (one bar per row), `width` characters at full scale.
///
/// Returns `None` if the column does not exist or holds no finite values.
pub fn bar_chart(table: &ComparisonTable, column: &str, width: usize) -> Option<String> {
    let col = table.columns().iter().position(|c| c == column)?;
    let rows: Vec<(&str, f64)> = table
        .rows()
        .iter()
        .filter_map(|r| {
            let v = *r.values.get(col)?;
            v.is_finite().then_some((r.label.as_str(), v))
        })
        .collect();
    if rows.is_empty() {
        return None;
    }
    let max = rows
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    if max <= 0.0 {
        return None;
    }
    let label_width = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{} ({column})\n", table.title());
    for (label, v) in rows {
        let bar_len = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:<label_width$} | {} {}\n",
            "█".repeat(bar_len.min(width)),
            crate::summary::format_value_pub(v),
        ));
    }
    Some(out)
}

/// Fill characters for [`stacked_bars`] segments, cycled when a bar has
/// more segments than glyphs.
const SEGMENT_FILLS: [char; 6] = ['█', '▓', '▒', '░', '▚', '▖'];

/// Renders one horizontal stacked bar per row: each row is a label plus
/// ordered `(segment name, value)` pairs, every bar sharing one scale so
/// totals are comparable across rows. A legend maps fill characters to
/// segment names. Used for the per-policy RCT blame breakdown.
///
/// Returns `None` when there are no rows or no positive finite totals.
pub fn stacked_bars(rows: &[(String, Vec<(&str, f64)>)], width: usize) -> Option<String> {
    let totals: Vec<f64> = rows
        .iter()
        .map(|(_, segs)| {
            segs.iter()
                .map(|&(_, v)| if v.is_finite() && v > 0.0 { v } else { 0.0 })
                .sum()
        })
        .collect();
    let max = totals.iter().cloned().fold(0.0f64, f64::max);
    if rows.is_empty() || max <= 0.0 {
        return None;
    }
    let label_width = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut legend: Vec<(&str, char)> = Vec::new();
    let mut out = String::new();
    for ((label, segs), total) in rows.iter().zip(&totals) {
        let mut bar = String::new();
        for (i, &(name, v)) in segs.iter().enumerate() {
            let fill = SEGMENT_FILLS[i % SEGMENT_FILLS.len()];
            if !legend.iter().any(|&(n, _)| n == name) {
                legend.push((name, fill));
            }
            if !(v.is_finite() && v > 0.0) {
                continue;
            }
            // Round each segment independently; a nonzero segment always
            // shows at least one cell so rare-but-real contributors (e.g.
            // retry stalls) stay visible.
            let cells = ((v / max) * width as f64).round().max(1.0) as usize;
            for _ in 0..cells {
                bar.push(fill);
            }
        }
        out.push_str(&format!(
            "{label:<label_width$} | {bar} {}\n",
            crate::summary::format_value_pub(*total),
        ));
    }
    let legend_line: Vec<String> = legend
        .iter()
        .map(|&(name, fill)| format!("{fill} {name}"))
        .collect();
    out.push_str(&format!(
        "{:<label_width$}   {}\n",
        "",
        legend_line.join("  ")
    ));
    Some(out)
}

/// Renders labelled *signed* values as diverging horizontal bars around a
/// shared zero axis: negative values grow left (`◀`-filled), positive ones
/// grow right (`▶`-filled), all on one scale (the largest magnitude spans
/// `width` cells). Nonzero values always get at least one cell so small
/// regressions stay visible. Used for per-segment RCT delta attribution,
/// where "which segments went down and which went up" is the whole point.
///
/// Returns `None` when `rows` is empty or no value is finite and nonzero.
pub fn diverging_bars(rows: &[(String, f64)], width: usize) -> Option<String> {
    let max = rows
        .iter()
        .map(|&(_, v)| if v.is_finite() { v.abs() } else { 0.0 })
        .fold(0.0f64, f64::max);
    if rows.is_empty() || max <= 0.0 {
        return None;
    }
    let label_width = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let v = if v.is_finite() { *v } else { 0.0 };
        let cells = if v == 0.0 {
            0
        } else {
            (((v.abs() / max) * width as f64).round() as usize).clamp(1, width)
        };
        let (left, right) = if v < 0.0 {
            ("◀".repeat(cells), String::new())
        } else {
            (String::new(), "▶".repeat(cells))
        };
        out.push_str(&format!(
            "{label:<label_width$} {left:>width$}|{right:<width$} {}{}\n",
            if v > 0.0 { "+" } else { "" },
            crate::summary::format_value_pub(v),
        ));
    }
    Some(out)
}

/// Renders labelled series as stacked sparklines with a shared scale —
/// handy for "RCT over time, one line per policy".
pub fn sparkline_panel(series: &[(&str, Vec<f64>)]) -> String {
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if all.is_empty() {
        return String::new();
    }
    let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let label_width = series
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, values) in series {
        let line: String = values
            .iter()
            .map(|&v| {
                if !v.is_finite() {
                    ' '
                } else {
                    let t = ((v - min) / span * (BLOCKS.len() - 1) as f64).round() as usize;
                    BLOCKS[t.min(BLOCKS.len() - 1)]
                }
            })
            .collect();
        out.push_str(&format!("{label:<label_width$} {line}\n"));
    }
    out.push_str(&format!(
        "{:<label_width$} (scale {:.3}..{:.3})\n",
        "", min, max
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_range() {
        let s = sparkline(&[1.0, 1.0, 1.0]);
        // Flat series: all minimum blocks.
        assert!(s.chars().all(|c| c == '▁'));
        let s = sparkline(&[0.0, 10.0]);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn sparkline_handles_non_finite() {
        let s = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().nth(1), Some(' '));
        assert_eq!(sparkline(&[f64::NAN]), " ");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn bar_chart_renders_rows() {
        let mut t = ComparisonTable::new("RCT", vec!["mean".into()]);
        t.push_row("FCFS", vec![10.0]);
        t.push_row("DAS", vec![5.0]);
        let chart = bar_chart(&t, "mean", 20).unwrap();
        assert!(chart.contains("FCFS"));
        assert!(chart.contains("DAS"));
        // FCFS's bar is twice DAS's.
        let fcfs_bar = chart.lines().find(|l| l.starts_with("FCFS")).unwrap();
        let das_bar = chart.lines().find(|l| l.starts_with("DAS")).unwrap();
        let count = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(count(fcfs_bar), 20);
        assert_eq!(count(das_bar), 10);
    }

    #[test]
    fn bar_chart_rejects_missing_or_empty() {
        let t = ComparisonTable::new("T", vec!["a".into()]);
        assert!(bar_chart(&t, "a", 10).is_none()); // no rows
        assert!(bar_chart(&t, "missing", 10).is_none());
        let mut t = ComparisonTable::new("T", vec!["a".into()]);
        t.push_row("x", vec![f64::NAN]);
        assert!(bar_chart(&t, "a", 10).is_none());
    }

    #[test]
    fn stacked_bars_share_scale_and_legend() {
        let rows = vec![
            (
                "FCFS".to_string(),
                vec![("queue", 6.0), ("service", 4.0)],
            ),
            (
                "DAS".to_string(),
                vec![("queue", 2.0), ("service", 3.0)],
            ),
        ];
        let chart = stacked_bars(&rows, 20).unwrap();
        let fcfs = chart.lines().find(|l| l.starts_with("FCFS")).unwrap();
        let das = chart.lines().find(|l| l.starts_with("DAS")).unwrap();
        // FCFS total (10) is at full width; DAS (5) at half.
        let cells = |l: &str| l.chars().filter(|c| SEGMENT_FILLS.contains(c)).count();
        assert_eq!(cells(fcfs), 20);
        assert_eq!(cells(das), 10);
        // Segments use distinct fills and the legend names both.
        assert!(fcfs.contains('█') && fcfs.contains('▓'));
        let legend = chart.lines().last().unwrap();
        assert!(legend.contains("█ queue") && legend.contains("▓ service"));
    }

    #[test]
    fn stacked_bars_keep_small_segments_visible() {
        let rows = vec![(
            "x".to_string(),
            vec![("big", 1000.0), ("tiny", 0.001), ("zero", 0.0)],
        )];
        let chart = stacked_bars(&rows, 10).unwrap();
        let bar = chart.lines().next().unwrap();
        // The tiny-but-nonzero segment still gets one cell; zero gets none.
        assert!(bar.contains('▓'));
        assert!(!bar.contains('▒'));
        // But the legend still names every segment.
        assert!(chart.lines().last().unwrap().contains("▒ zero"));
    }

    #[test]
    fn stacked_bars_reject_empty_and_nonpositive() {
        assert!(stacked_bars(&[], 10).is_none());
        let rows = vec![("x".to_string(), vec![("a", 0.0), ("b", f64::NAN)])];
        assert!(stacked_bars(&rows, 10).is_none());
    }

    #[test]
    fn diverging_bars_split_around_zero() {
        let rows = vec![
            ("queue".to_string(), -8.0),
            ("service".to_string(), 4.0),
            ("stall".to_string(), 0.0),
        ];
        let chart = diverging_bars(&rows, 10).unwrap();
        let queue = chart.lines().find(|l| l.starts_with("queue")).unwrap();
        let service = chart.lines().find(|l| l.starts_with("service")).unwrap();
        let stall = chart.lines().find(|l| l.starts_with("stall")).unwrap();
        // Negative fills left of the axis, positive right, zero neither;
        // magnitudes share one scale (8 → full 10 cells, 4 → 5 cells).
        assert_eq!(queue.chars().filter(|&c| c == '◀').count(), 10);
        assert!(!queue.contains('▶'));
        assert_eq!(service.chars().filter(|&c| c == '▶').count(), 5);
        assert!(!service.contains('◀'));
        assert!(!stall.contains('◀') && !stall.contains('▶'));
        // Every row carries the axis and a signed value.
        assert!(queue.contains('|') && queue.contains("-8"));
        assert!(service.contains("+4"));
    }

    #[test]
    fn diverging_bars_keep_small_values_visible() {
        let rows = vec![("big".to_string(), -1000.0), ("tiny".to_string(), 0.001)];
        let chart = diverging_bars(&rows, 10).unwrap();
        let tiny = chart.lines().find(|l| l.starts_with("tiny")).unwrap();
        assert_eq!(tiny.chars().filter(|&c| c == '▶').count(), 1);
    }

    #[test]
    fn diverging_bars_reject_empty_and_zero() {
        assert!(diverging_bars(&[], 10).is_none());
        let rows = vec![("a".to_string(), 0.0), ("b".to_string(), f64::NAN)];
        assert!(diverging_bars(&rows, 10).is_none());
    }

    #[test]
    fn panel_shares_scale() {
        let panel = sparkline_panel(&[
            ("low", vec![0.0, 0.0, 0.0]),
            ("high", vec![10.0, 10.0, 10.0]),
        ]);
        let lines: Vec<&str> = panel.lines().collect();
        assert!(lines[0].contains("▁▁▁"));
        assert!(lines[1].contains("███"));
        assert!(lines[2].contains("scale"));
        assert_eq!(sparkline_panel(&[]), "");
    }
}
