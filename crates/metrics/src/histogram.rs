//! A log-bucketed latency histogram (HDR-histogram style).
//!
//! Values are bucketed with a bounded relative error (default ~1 %), so
//! quantile queries are cheap and the memory footprint is fixed regardless
//! of sample count. Records are plain `f64`s in whatever unit the caller
//! chooses (this workspace uses seconds).

use serde::{Deserialize, Serialize};

/// Default number of sub-buckets per power of two (~0.8 % relative error).
const DEFAULT_SUBBUCKETS: usize = 128;

/// A fixed-memory histogram with bounded relative error.
///
/// ```
/// use das_metrics::histogram::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((p50 - 500.0).abs() / 500.0 < 0.02);
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// counts[exp][sub]: values in `[2^(exp+min_exp) * (1 + sub/S), ...)`.
    counts: Vec<u64>,
    subbuckets: usize,
    /// Smallest representable exponent; values below go to bucket 0.
    min_exp: i32,
    /// Largest exponent; values above saturate into the last bucket.
    max_exp: i32,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    underflow: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// A histogram covering `[1e-9, ~1e9]` with ~1 % relative error —
    /// suitable for latencies in seconds from nanoseconds up.
    pub fn new() -> Self {
        Self::with_range(-30, 30, DEFAULT_SUBBUCKETS)
    }

    /// A histogram covering `[2^min_exp, 2^max_exp)` with `subbuckets`
    /// linear sub-buckets per power of two.
    pub fn with_range(min_exp: i32, max_exp: i32, subbuckets: usize) -> Self {
        assert!(min_exp < max_exp, "empty exponent range");
        assert!(subbuckets >= 1);
        let buckets = (max_exp - min_exp) as usize * subbuckets;
        LogHistogram {
            counts: vec![0; buckets],
            subbuckets,
            min_exp,
            max_exp,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            underflow: 0,
        }
    }

    fn bucket_index(&self, v: f64) -> Option<usize> {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        let exp = v.log2().floor() as i32;
        if exp < self.min_exp {
            return None; // recorded as underflow
        }
        let exp = exp.min(self.max_exp - 1);
        let base = 2f64.powi(exp);
        let frac = ((v / base - 1.0) * self.subbuckets as f64) as usize;
        let frac = frac.min(self.subbuckets - 1);
        Some((exp - self.min_exp) as usize * self.subbuckets + frac)
    }

    /// The representative (upper-edge midpoint) value of a bucket.
    fn bucket_value(&self, idx: usize) -> f64 {
        let exp = self.min_exp + (idx / self.subbuckets) as i32;
        let sub = idx % self.subbuckets;
        let base = 2f64.powi(exp);
        base * (1.0 + (sub as f64 + 0.5) / self.subbuckets as f64)
    }

    /// Records one value. Non-finite and non-positive values count toward
    /// `count` but land in the underflow bucket (quantiles treat them as the
    /// smallest value).
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        match self.bucket_index(v) {
            Some(i) => self.counts[i] += 1,
            None => self.underflow += 1,
        }
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: f64, n: u64) {
        for _ in 0..n {
            self.record(v);
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum recorded value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0 && self.min.is_finite()).then_some(self.min)
    }

    /// Exact maximum recorded value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0 && self.max.is_finite()).then_some(self.max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with ~1 % relative error, or `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.min().unwrap_or(0.0));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the exact observed extremes so p0/p100 are tight.
                return Some(self.bucket_value(i).clamp(
                    if self.min.is_finite() { self.min } else { 0.0 },
                    if self.max.is_finite() {
                        self.max
                    } else {
                        f64::MAX
                    },
                ));
            }
        }
        self.max()
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    /// Panics if the two histograms have different bucket geometry.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.subbuckets, other.subbuckets, "geometry mismatch");
        assert_eq!(self.min_exp, other.min_exp, "geometry mismatch");
        assert_eq!(self.max_exp, other.max_exp, "geometry mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.underflow += other.underflow;
    }

    /// Clears all recorded data, keeping the geometry.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.underflow = 0;
    }

    /// The fraction of recorded values at or below `v` (0 when empty).
    /// Underflow/invalid records count as below any positive `v`.
    pub fn fraction_at_or_below(&self, v: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut below = self.underflow;
        for (value, c) in self.nonzero_buckets() {
            if value <= v {
                below += c;
            } else {
                break;
            }
        }
        below as f64 / self.count as f64
    }

    /// Iterates over `(bucket_midpoint, count)` pairs with non-zero counts,
    /// in increasing value order. Useful for exporting CDFs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_value(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = LogHistogram::new();
        h.record(0.0123);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(0.0123));
        assert_eq!(h.max(), Some(0.0123));
        let q = h.quantile(0.5).unwrap();
        assert!((q - 0.0123).abs() / 0.0123 < 0.01, "q = {q}");
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LogHistogram::new();
        // Latencies spanning five decades.
        for i in 0..100_000u64 {
            let v = 1e-6 * 1.0001f64.powi(i as i32 % 60_000);
            h.record(v);
        }
        // Compare against exact quantiles on the same data.
        let mut exact: Vec<f64> = (0..100_000u64)
            .map(|i| 1e-6 * 1.0001f64.powi(i as i32 % 60_000))
            .collect();
        exact.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let approx = h.quantile(q).unwrap();
            let truth = exact[((q * exact.len() as f64) as usize).min(exact.len() - 1)];
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.02, "q={q} approx={approx} truth={truth} rel={rel}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), 2.5);
    }

    #[test]
    fn extreme_quantiles_clamped_to_observed() {
        let mut h = LogHistogram::new();
        h.record(5.0);
        h.record(10.0);
        assert!(h.quantile(0.0).unwrap() >= 5.0);
        assert!(h.quantile(1.0).unwrap() <= 10.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 1..=500 {
            a.record(i as f64);
        }
        for i in 501..=1000 {
            b.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.02, "p50 = {p50}");
        assert_eq!(a.max(), Some(1000.0));
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = LogHistogram::with_range(-10, 10, 64);
        let b = LogHistogram::with_range(-10, 10, 128);
        a.merge(&b);
    }

    #[test]
    fn underflow_and_weird_values() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(1.0);
        assert_eq!(h.count(), 4);
        // Quantile q=0.25 falls in the underflow mass -> smallest observed.
        assert!(h.quantile(0.1).is_some());
        assert!(h.quantile(1.0).unwrap() >= 1.0 * 0.99);
    }

    #[test]
    fn record_n_counts() {
        let mut h = LogHistogram::new();
        h.record_n(2.0, 10);
        assert_eq!(h.count(), 10);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn reset_clears() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn nonzero_buckets_sorted() {
        let mut h = LogHistogram::new();
        for v in [8.0, 1.0, 64.0] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 3);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(buckets.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn fraction_at_or_below_tracks_cdf() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(LogHistogram::new().fraction_at_or_below(1.0), 0.0);
        let f = h.fraction_at_or_below(500.0);
        assert!((f - 0.5).abs() < 0.02, "f = {f}");
        assert_eq!(h.fraction_at_or_below(0.5), 0.0);
        assert_eq!(h.fraction_at_or_below(1e9), 1.0);
    }

    #[test]
    fn saturates_above_max_exp() {
        let mut h = LogHistogram::with_range(-4, 4, 16);
        h.record(1e9); // way above 2^4
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).is_some());
    }
}
