//! Per-class slowdown tracking for fairness/starvation analysis (Table 4).
//!
//! *Slowdown* of a request is its completion time divided by its ideal
//! (zero-queueing) completion time. Scheduling policies that favour small
//! requests can starve large ones; bucketing slowdown by request class
//! (e.g. fan-out) makes that visible.

use serde::{Deserialize, Serialize};

use crate::histogram::LogHistogram;

/// Tracks slowdown distributions per request class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowdownTracker {
    /// Upper bounds (inclusive) of each class, in ascending order; the last
    /// class is open-ended.
    class_bounds: Vec<usize>,
    per_class: Vec<LogHistogram>,
    overall: LogHistogram,
}

impl SlowdownTracker {
    /// Creates a tracker whose classes are `<= bounds[0]`,
    /// `(bounds[0], bounds[1]]`, …, `> bounds.last()`.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<usize>) -> Self {
        assert!(!bounds.is_empty(), "need at least one class bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let classes = bounds.len() + 1;
        SlowdownTracker {
            class_bounds: bounds,
            per_class: vec![LogHistogram::new(); classes],
            overall: LogHistogram::new(),
        }
    }

    /// A tracker with fan-out classes matching the paper-style analysis:
    /// 1, 2–4, 5–16, 17–64, >64.
    pub fn fanout_default() -> Self {
        SlowdownTracker::new(vec![1, 4, 16, 64])
    }

    fn class_of(&self, key: usize) -> usize {
        self.class_bounds
            .iter()
            .position(|&b| key <= b)
            .unwrap_or(self.class_bounds.len())
    }

    /// Records a request's slowdown (`actual / ideal`, ≥ 1 in theory) under
    /// class key `key` (e.g. its fan-out).
    pub fn record(&mut self, key: usize, actual: f64, ideal: f64) {
        if !(actual.is_finite() && ideal.is_finite()) || ideal <= 0.0 {
            return;
        }
        let slowdown = actual / ideal;
        let class = self.class_of(key);
        self.per_class[class].record(slowdown);
        self.overall.record(slowdown);
    }

    /// Number of classes (bounds + 1).
    pub fn class_count(&self) -> usize {
        self.per_class.len()
    }

    /// A label like `"<=4"` / `"5-16"` / `">64"` for class `i`.
    pub fn class_label(&self, i: usize) -> String {
        let n = self.class_bounds.len();
        if i == 0 {
            format!("<={}", self.class_bounds[0])
        } else if i < n {
            format!("{}-{}", self.class_bounds[i - 1] + 1, self.class_bounds[i])
        } else {
            format!(">{}", self.class_bounds[n - 1])
        }
    }

    /// `(count, mean, p99, p999)` slowdown for class `i`.
    pub fn class_stats(&self, i: usize) -> (u64, f64, f64, f64) {
        let h = &self.per_class[i];
        (
            h.count(),
            h.mean(),
            h.quantile(0.99).unwrap_or(0.0),
            h.quantile(0.999).unwrap_or(0.0),
        )
    }

    /// Overall p999 slowdown — the headline starvation indicator.
    pub fn overall_p999(&self) -> f64 {
        self.overall.quantile(0.999).unwrap_or(0.0)
    }

    /// Overall maximum slowdown observed.
    pub fn overall_max(&self) -> f64 {
        self.overall.max().unwrap_or(0.0)
    }

    /// Overall mean slowdown.
    pub fn overall_mean(&self) -> f64 {
        self.overall.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_keys() {
        let t = SlowdownTracker::new(vec![1, 4, 16]);
        assert_eq!(t.class_of(1), 0);
        assert_eq!(t.class_of(2), 1);
        assert_eq!(t.class_of(4), 1);
        assert_eq!(t.class_of(5), 2);
        assert_eq!(t.class_of(16), 2);
        assert_eq!(t.class_of(17), 3);
        assert_eq!(t.class_count(), 4);
    }

    #[test]
    fn labels() {
        let t = SlowdownTracker::new(vec![1, 4, 16]);
        assert_eq!(t.class_label(0), "<=1");
        assert_eq!(t.class_label(1), "2-4");
        assert_eq!(t.class_label(2), "5-16");
        assert_eq!(t.class_label(3), ">16");
    }

    #[test]
    fn records_split_by_class() {
        let mut t = SlowdownTracker::new(vec![2]);
        t.record(1, 2.0, 1.0); // slowdown 2, class 0
        t.record(10, 9.0, 3.0); // slowdown 3, class 1
        let (c0, m0, _, _) = t.class_stats(0);
        let (c1, m1, _, _) = t.class_stats(1);
        assert_eq!((c0, c1), (1, 1));
        assert!((m0 - 2.0).abs() < 0.05);
        assert!((m1 - 3.0).abs() < 0.05);
        assert!((t.overall_mean() - 2.5).abs() < 0.05);
        assert!(t.overall_max() >= 3.0 * 0.99);
        assert!(t.overall_p999() > 0.0);
    }

    #[test]
    fn ignores_invalid() {
        let mut t = SlowdownTracker::fanout_default();
        t.record(1, 1.0, 0.0);
        t.record(1, f64::NAN, 1.0);
        assert_eq!(t.class_stats(0).0, 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = SlowdownTracker::new(vec![4, 4]);
    }
}
