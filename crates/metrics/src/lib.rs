//! # das-metrics — measurement substrate
//!
//! Everything the evaluation reports is computed here:
//!
//! * [`histogram`] — fixed-memory log-bucketed histograms (~1 % relative
//!   error quantiles) for latency distributions;
//! * [`quantile`] — exact and P² streaming quantile estimators;
//! * [`timeseries`] — fixed-bin "metric over time" series for the
//!   time-varying-load figures;
//! * [`summary`] — [`summary::LatencySummary`] and
//!   [`summary::ComparisonTable`], the uniform format every experiment
//!   prints;
//! * [`slowdown`] — per-class slowdown tracking for the fairness table;
//! * [`batch`] — batch-means confidence intervals for autocorrelated
//!   simulation output;
//! * [`recovery`] — fault-recovery accounting (goodput vs wasted work,
//!   availability, fault-exposed RCT) for the fault-injection figures;
//! * [`ascii`] — terminal sparklines, bar charts, and stacked bars.
//!
//! ```
//! use das_metrics::summary::LatencySummary;
//!
//! let mut s = LatencySummary::new();
//! s.record(0.004);
//! s.record(0.006);
//! assert_eq!(s.count(), 2);
//! assert!((s.mean() - 0.005).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod ascii;
pub mod batch;
pub mod histogram;
pub mod quantile;
pub mod recovery;
pub mod slowdown;
pub mod summary;
pub mod timeseries;

pub use batch::{BatchMeans, BatchingStats};
pub use histogram::LogHistogram;
pub use slowdown::SlowdownTracker;
pub use summary::{ComparisonTable, LatencySummary, SummarySet};
pub use timeseries::{TimeSeries, TimeSeriesNs};
