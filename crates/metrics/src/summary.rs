//! Latency summaries and policy-comparison tables — the machinery behind
//! every table in EXPERIMENTS.md.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::histogram::LogHistogram;

/// A complete latency summary: exact mean/extremes plus ~1 %-error
/// quantiles, built on a [`LogHistogram`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    hist: LogHistogram,
}

impl Default for LatencySummary {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySummary {
    /// An empty summary.
    pub fn new() -> Self {
        LatencySummary {
            hist: LogHistogram::new(),
        }
    }

    /// Records one latency observation (seconds).
    pub fn record(&mut self, seconds: f64) {
        self.hist.record(seconds);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Exact mean latency in seconds.
    pub fn mean(&self) -> f64 {
        self.hist.mean()
    }

    /// Median latency (~1 % error).
    pub fn p50(&self) -> f64 {
        self.hist.quantile(0.50).unwrap_or(0.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.hist.quantile(0.95).unwrap_or(0.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.hist.quantile(0.99).unwrap_or(0.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.hist.quantile(0.999).unwrap_or(0.0)
    }

    /// Arbitrary quantile, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.hist.max()
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &LatencySummary) {
        self.hist.merge(&other.hist);
    }

    /// The fraction of requests completing within `slo_secs` — SLO
    /// attainment.
    pub fn fraction_within(&self, slo_secs: f64) -> f64 {
        self.hist.fraction_at_or_below(slo_secs)
    }

    /// `(value, cumulative_fraction)` points of the empirical CDF, for
    /// CDF figures.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let total = self.hist.count();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.hist
            .nonzero_buckets()
            .map(|(v, c)| {
                acc += c;
                (v, acc as f64 / total as f64)
            })
            .collect()
    }
}

/// One labelled row of a comparison table: a policy (or scenario) name and
/// its metric values in column order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. policy name).
    pub label: String,
    /// One value per column.
    pub values: Vec<f64>,
}

/// A small table builder used to print the evaluation's tables in a uniform
/// Markdown format and to compute "% change vs baseline" columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl ComparisonTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        ComparisonTable {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the value count does not match the columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// The table rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Value at `(row_label, column_name)`, if present.
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r.label == row_label)?;
        row.values.get(col).copied()
    }

    /// Percentage change of `row` vs `baseline_row` in `column`:
    /// negative = improvement (smaller value).
    pub fn percent_change(&self, row: &str, baseline_row: &str, column: &str) -> Option<f64> {
        let v = self.value(row, column)?;
        let b = self.value(baseline_row, column)?;
        if b == 0.0 {
            return None;
        }
        Some((v - b) / b * 100.0)
    }

    /// Renders the table as GitHub-flavoured Markdown with values in
    /// engineering-friendly precision.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str("| |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---:|");
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("| {} |", r.label));
            for v in &r.values {
                out.push_str(&format!(" {} |", format_value(*v)));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.label);
            for v in &r.values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a value with sensible precision for latencies/percentages.
fn format_value(v: f64) -> String {
    format_value_pub(v)
}

/// Crate-public value formatting shared with the ASCII renderer.
pub(crate) fn format_value_pub(v: f64) -> String {
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.3}")
    } else if a >= 0.001 {
        format!("{v:.5}")
    } else {
        format!("{v:.3e}")
    }
}

/// Accumulates per-key summaries (e.g. one [`LatencySummary`] per policy).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SummarySet {
    map: BTreeMap<String, LatencySummary>,
}

impl SummarySet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The summary for `key`, created on first use.
    pub fn entry(&mut self, key: &str) -> &mut LatencySummary {
        self.map.entry(key.to_string()).or_default()
    }

    /// The summary for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&LatencySummary> {
        self.map.get(key)
    }

    /// Iterates `(key, summary)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LatencySummary)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Builds a mean/p50/p95/p99 comparison table from this set.
    pub fn to_table(&self, title: &str) -> ComparisonTable {
        let mut t = ComparisonTable::new(
            title,
            vec![
                "mean (ms)".into(),
                "p50 (ms)".into(),
                "p95 (ms)".into(),
                "p99 (ms)".into(),
            ],
        );
        for (k, s) in self.iter() {
            t.push_row(
                k,
                vec![s.mean() * 1e3, s.p50() * 1e3, s.p95() * 1e3, s.p99() * 1e3],
            );
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = LatencySummary::new();
        for i in 1..=100 {
            s.record(i as f64 / 1000.0);
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 0.0505).abs() < 1e-9);
        assert!((s.p50() - 0.050).abs() / 0.050 < 0.03);
        assert!((s.p99() - 0.099).abs() / 0.099 < 0.03);
        assert!(s.p95() <= s.p99());
        assert!(s.p999() >= s.p99());
        assert!(s.max().unwrap() >= 0.0999);
    }

    #[test]
    fn slo_attainment() {
        let mut s = LatencySummary::new();
        for i in 1..=100 {
            s.record(i as f64 / 1000.0);
        }
        let f = s.fraction_within(0.050);
        assert!((f - 0.5).abs() < 0.03, "f = {f}");
        assert_eq!(s.fraction_within(10.0), 1.0);
    }

    #[test]
    fn summary_merge() {
        let mut a = LatencySummary::new();
        let mut b = LatencySummary::new();
        a.record(0.001);
        b.record(0.002);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut s = LatencySummary::new();
        for i in 1..=1000 {
            s.record(i as f64);
        }
        let cdf = s.cdf_points();
        assert!(!cdf.is_empty());
        assert!(cdf.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = ComparisonTable::new("Test", vec!["mean".into(), "p99".into()]);
        t.push_row("FCFS", vec![10.0, 50.0]);
        t.push_row("DAS", vec![7.0, 30.0]);
        assert_eq!(t.value("DAS", "mean"), Some(7.0));
        assert_eq!(t.value("DAS", "nope"), None);
        assert_eq!(t.value("nope", "mean"), None);
        let pc = t.percent_change("DAS", "FCFS", "mean").unwrap();
        assert!((pc + 30.0).abs() < 1e-9);
        let md = t.to_markdown();
        assert!(md.contains("| FCFS |"));
        assert!(md.contains("### Test"));
        let csv = t.to_csv();
        assert!(csv.starts_with("label,mean,p99\n"));
        assert!(csv.contains("DAS,7,30"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_wrong_width() {
        let mut t = ComparisonTable::new("T", vec!["a".into()]);
        t.push_row("x", vec![1.0, 2.0]);
    }

    #[test]
    fn percent_change_zero_baseline() {
        let mut t = ComparisonTable::new("T", vec!["m".into()]);
        t.push_row("base", vec![0.0]);
        t.push_row("x", vec![1.0]);
        assert_eq!(t.percent_change("x", "base", "m"), None);
    }

    #[test]
    fn summary_set_table() {
        let mut set = SummarySet::new();
        set.entry("FCFS").record(0.010);
        set.entry("DAS").record(0.005);
        let t = set.to_table("Policies");
        // BTreeMap => alphabetical order: DAS before FCFS.
        assert_eq!(t.rows()[0].label, "DAS");
        assert!((t.value("FCFS", "mean (ms)").unwrap() - 10.0).abs() < 1e-9);
        assert!(set.get("DAS").is_some());
        assert!(set.get("nope").is_none());
    }

    #[test]
    fn format_value_ranges() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(123.456), "123.5");
        assert_eq!(format_value(1.5), "1.500");
        assert_eq!(format_value(0.0123), "0.01230");
        assert!(format_value(1e-6).contains('e'));
    }
}
