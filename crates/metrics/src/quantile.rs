//! Exact and streaming quantile estimators.
//!
//! [`ExactQuantiles`] stores every sample — exact but O(n) memory; used in
//! tests and for small result sets. [`P2Quantile`] is the constant-memory
//! Jain–Chlamtac P² estimator; used when only one or two quantiles are
//! needed from a long stream.

use serde::{Deserialize, Serialize};

/// Stores all samples and answers exact quantile queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactQuantiles {
    values: Vec<f64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.values.push(v);
            self.sorted = false;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The exact `q`-quantile using the nearest-rank method, or `None` when
    /// empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.values.len() as f64).ceil() as usize).max(1);
        Some(self.values[rank - 1])
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Read-only view of the raw samples (unsorted unless a quantile was
    /// queried).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// The P² streaming quantile estimator (Jain & Chlamtac, 1985): estimates a
/// single quantile with five markers and O(1) memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Increments for desired positions.
    increments: [f64; 5],
    count: usize,
    /// Initial observations collected before the marker invariant holds.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "q must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// Records one value. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup.sort_by(f64::total_cmp);
                self.heights.copy_from_slice(&self.warmup);
            }
            return;
        }
        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (1..5).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let parabolic = self.parabolic(i, sign);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, sign);
                }
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before any samples.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.warmup.len() < 5 {
            // Exact while we still hold all samples.
            let mut v = self.warmup.clone();
            v.sort_by(f64::total_cmp);
            let rank = ((self.q * v.len() as f64).ceil() as usize).max(1);
            return Some(v[rank - 1]);
        }
        Some(self.heights[2])
    }

    /// Number of recorded values.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The target quantile.
    pub fn q(&self) -> f64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_nearest_rank() {
        let mut e = ExactQuantiles::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            e.record(v);
        }
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(0.5), Some(3.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.mean(), 3.0);
        assert_eq!(e.count(), 5);
    }

    #[test]
    fn exact_ignores_non_finite() {
        let mut e = ExactQuantiles::new();
        e.record(f64::NAN);
        e.record(f64::INFINITY);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), None);
    }

    #[test]
    fn exact_interleaves_record_and_query() {
        let mut e = ExactQuantiles::new();
        e.record(10.0);
        assert_eq!(e.quantile(0.5), Some(10.0));
        e.record(1.0);
        assert_eq!(e.quantile(0.0), Some(1.0));
    }

    #[test]
    fn p2_median_of_uniform() {
        let mut p = P2Quantile::new(0.5);
        // A deterministic low-discrepancy stream over (0, 1).
        let mut x = 0.5f64;
        for _ in 0..50_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            p.record(x);
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "est = {est}");
        assert_eq!(p.q(), 0.5);
    }

    #[test]
    fn p2_p99_of_exponential_like() {
        let mut p = P2Quantile::new(0.99);
        let mut exact = ExactQuantiles::new();
        let mut x = 0.123f64;
        for _ in 0..100_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            let v = -((1.0 - x).max(1e-12)).ln(); // Exp(1) via inverse CDF
            p.record(v);
            exact.record(v);
        }
        let est = p.estimate().unwrap();
        let truth = exact.quantile(0.99).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn p2_small_sample_is_exact() {
        let mut p = P2Quantile::new(0.5);
        p.record(3.0);
        p.record(1.0);
        p.record(2.0);
        assert_eq!(p.estimate(), Some(2.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn p2_empty() {
        let p = P2Quantile::new(0.9);
        assert_eq!(p.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1)")]
    fn p2_rejects_boundary_q() {
        let _ = P2Quantile::new(1.0);
    }
}
