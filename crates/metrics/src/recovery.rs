//! Fault-recovery accounting: goodput vs wasted work, timeout/retry/hedge
//! counts, availability, and RCT conditioned on fault exposure.
//!
//! One [`RecoveryStats`] is filled in by the engine per run. With all
//! fault knobs at their zero defaults every counter stays zero, so the
//! struct is cheap to carry unconditionally.

use serde::{Deserialize, Serialize};

use crate::batch::BatchingStats;
use crate::summary::LatencySummary;

/// Everything measured about fault handling in one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Requests admitted by the coordinator (arrived inside the horizon).
    pub accepted: u64,
    /// Requests that completed (every op answered exactly once).
    pub completed: u64,
    /// Requests aborted after exhausting their retry budget.
    pub aborted: u64,
    /// Per-op deadline expirations.
    pub timeouts: u64,
    /// Re-dispatched attempts (excludes the first attempt of each op).
    pub retries: u64,
    /// Hedged (speculative duplicate) read attempts issued.
    pub hedges: u64,
    /// Responses discarded because their op was already complete, their
    /// attempt had been closed, or the whole request was gone.
    pub duplicate_responses: u64,
    /// Ops lost to a server crash (queued or in service when it died).
    pub crash_drops: u64,
    /// Server-seconds of service that produced an accepted response.
    pub goodput_service_secs: f64,
    /// Server-seconds spent on work that was thrown away: losing hedge
    /// attempts, responses past their attempt's closure, and partial
    /// service truncated by a crash.
    pub wasted_service_secs: f64,
    /// RCT of completed requests that never touched a fault (measured
    /// window only).
    pub rct_clean: LatencySummary,
    /// RCT of completed requests that saw at least one timeout, retry,
    /// hedge, duplicate, or crash-drop (measured window only).
    pub rct_fault_exposed: LatencySummary,
    /// Requests shed at the coordinator by deadline-aware admission
    /// (never dispatched; excluded from `accepted`).
    #[serde(default)]
    pub shed_admission: u64,
    /// Requests shed at a full server queue (dispatched, then dropped;
    /// included in `accepted`).
    #[serde(default)]
    pub shed_queue: u64,
    /// Retry dispatches denied by the backpressure token budget (each
    /// denial aborts its request).
    #[serde(default)]
    pub retries_denied: u64,
    /// Hedge dispatches suppressed by the backpressure token budget (the
    /// primary attempt keeps running).
    #[serde(default)]
    pub hedges_denied: u64,
    /// Engine-level batch coalescing accounting.
    #[serde(default)]
    pub batching: BatchingStats,
}

impl RecoveryStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed / accepted, in `[0, 1]`; 1.0 for an idle run.
    pub fn availability(&self) -> f64 {
        if self.accepted == 0 {
            1.0
        } else {
            self.completed as f64 / self.accepted as f64
        }
    }

    /// Wasted / (wasted + goodput) service seconds, in `[0, 1]`.
    pub fn wasted_fraction(&self) -> f64 {
        let total = self.goodput_service_secs + self.wasted_service_secs;
        if total <= 0.0 {
            0.0
        } else {
            self.wasted_service_secs / total
        }
    }

    /// True when any fault machinery fired during the run.
    pub fn any_faults_seen(&self) -> bool {
        self.aborted > 0
            || self.timeouts > 0
            || self.retries > 0
            || self.hedges > 0
            || self.duplicate_responses > 0
            || self.crash_drops > 0
    }

    /// Requests offered to the system: admitted plus shed at admission.
    pub fn offered(&self) -> u64 {
        self.accepted + self.shed_admission
    }

    /// Requests shed anywhere (admission or full queue).
    pub fn shed(&self) -> u64 {
        self.shed_admission + self.shed_queue
    }

    /// Shed / offered, in `[0, 1]`; 0.0 for an idle run.
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.shed() as f64 / offered as f64
        }
    }

    /// True when any overload-control machinery fired during the run.
    pub fn any_overload_seen(&self) -> bool {
        self.shed_admission > 0
            || self.shed_queue > 0
            || self.retries_denied > 0
            || self.hedges_denied > 0
            || self.batching.batches > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stats_are_benign() {
        let s = RecoveryStats::new();
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.wasted_fraction(), 0.0);
        assert!(!s.any_faults_seen());
    }

    #[test]
    fn availability_ratio() {
        let s = RecoveryStats {
            accepted: 100,
            completed: 97,
            aborted: 3,
            ..Default::default()
        };
        assert!((s.availability() - 0.97).abs() < 1e-12);
        assert!(s.any_faults_seen());
    }

    #[test]
    fn wasted_fraction_ratio() {
        let s = RecoveryStats {
            goodput_service_secs: 9.0,
            wasted_service_secs: 1.0,
            ..Default::default()
        };
        assert!((s.wasted_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn overload_accounting() {
        let s = RecoveryStats {
            accepted: 90,
            completed: 85,
            shed_admission: 10,
            shed_queue: 5,
            ..Default::default()
        };
        assert_eq!(s.offered(), 100);
        assert_eq!(s.shed(), 15);
        assert!((s.shed_fraction() - 0.15).abs() < 1e-12);
        assert!(s.any_overload_seen());
        assert!(!RecoveryStats::new().any_overload_seen());
        assert_eq!(RecoveryStats::new().shed_fraction(), 0.0);
    }

    #[test]
    fn overload_fields_default_when_missing() {
        // Stats serialized before the overload layer still deserialize.
        let mut s = RecoveryStats::new();
        s.accepted = 3;
        s.completed = 3;
        s.rct_clean.record(0.002);
        s.rct_fault_exposed.record(0.010);
        let json = serde_json::to_string(&s).unwrap();
        let stripped = json
            .replace(",\"shed_admission\":0", "")
            .replace(",\"shed_queue\":0", "")
            .replace(",\"retries_denied\":0", "")
            .replace(",\"hedges_denied\":0", "")
            .replace(
                &format!(
                    ",\"batching\":{}",
                    serde_json::to_string(&s.batching).unwrap()
                ),
                "",
            );
        assert_ne!(json, stripped, "overload fields expected in serialized form");
        let back: RecoveryStats = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.accepted, 3);
        assert_eq!(back.shed(), 0);
        assert!(!back.any_overload_seen());
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = RecoveryStats::new();
        s.accepted = 10;
        s.completed = 9;
        s.aborted = 1;
        s.timeouts = 4;
        s.rct_clean.record(0.002);
        s.rct_fault_exposed.record(0.010);
        let json = serde_json::to_string(&s).unwrap();
        let back: RecoveryStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.accepted, 10);
        assert_eq!(back.rct_clean.count(), 1);
        assert_eq!(back.rct_fault_exposed.count(), 1);
    }
}
