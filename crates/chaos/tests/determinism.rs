//! Determinism and RNG-stream-isolation guarantees of the chaos harness.
//!
//! Two laws are pinned here, both byte-level:
//!
//! 1. `search(seed, budget)` is a pure function: the serialized report is
//!    byte-identical across runs.
//! 2. Fault-schedule sampling draws from its own seeded stream: generating
//!    a case with chaos fault generation *on* versus *off* (same base
//!    seed) yields the same workload, and a fault-stripped run of the
//!    faulty case byte-matches the fault-free case's event log.

// Integration tests unwrap freely: a panic is the failure report, and
// the float comparison below is deliberately bit-exact.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use das_chaos::{search, ChaosCase, ChaosConfig, SearchSpace};
use das_sched::policy::PolicyKind;
use das_sim::rng::SeedFactory;
use das_store::config::{FaultProfile, OverloadProfile};
use das_trace::export::write_jsonl;

#[test]
fn same_seed_same_report_bytes() {
    let cfg = ChaosConfig {
        seed: 97,
        budget: 5,
        shrink_budget: 15,
        ..ChaosConfig::default()
    };
    let a = search(&cfg).unwrap();
    let b = search(&cfg).unwrap();
    let ja = serde_json::to_string_pretty(&a.report).unwrap();
    let jb = serde_json::to_string_pretty(&b.report).unwrap();
    assert_eq!(ja, jb, "same (seed, budget) must produce identical bytes");
    assert_eq!(
        a.report.render_markdown(),
        b.report.render_markdown(),
        "markdown rendering must be deterministic too"
    );
}

#[test]
fn different_budgets_share_a_prefix_of_cases() {
    // Case i depends only on (seed, i), not on the budget: growing the
    // budget must not re-roll earlier cases.
    let space = SearchSpace::default();
    let seeds = SeedFactory::new(55);
    let a: Vec<ChaosCase> = (0..3).map(|i| space.generate(&seeds, i).unwrap()).collect();
    let b: Vec<ChaosCase> = (0..6).map(|i| space.generate(&seeds, i).unwrap()).collect();
    assert_eq!(a[..], b[..3]);
}

/// Strips every fault, overload knob, and DAS-noise knob from a case,
/// keeping the workload side untouched.
fn strip_faults(case: &ChaosCase) -> ChaosCase {
    let mut calm = case.clone();
    calm.faults = FaultProfile::none();
    calm.overload = OverloadProfile::none();
    calm.cluster.perf_events.clear();
    calm.cluster.hint_loss = 0.0;
    calm.cluster.estimate_noise = 0.0;
    calm
}

#[test]
fn fault_generation_does_not_perturb_the_workload() {
    // Satellite check: fault-schedule sampling uses its own seeded stream.
    // A space with fault generation zeroed must generate, for the same
    // base seed, the exact same workload trace — and running the faulty
    // case with its faults stripped must byte-match the calm case's event
    // log end to end.
    let space = SearchSpace::default();
    let calm_space = space.without_faults();
    let seeds = SeedFactory::new(7);

    for index in 0..4 {
        let faulty = space.generate(&seeds, index).unwrap();
        let calm = calm_space.generate(&seeds, index).unwrap();
        assert_eq!(faulty.trace, calm.trace, "case {index}: workload drifted");
        assert_eq!(faulty.workload, calm.workload);
        assert_eq!(faulty.seed, calm.seed);
        assert_eq!(faulty.horizon_secs, calm.horizon_secs);

        // The only differences between strip_faults(faulty) and calm are
        // the fault knobs themselves — so the two whole cases must now be
        // equal, and their event logs byte-identical.
        let stripped = strip_faults(&faulty);
        assert_eq!(stripped, calm, "case {index}: non-fault fields drifted");

        let run_a = stripped.run_policy(PolicyKind::das()).unwrap();
        let run_b = calm.run_policy(PolicyKind::das()).unwrap();
        let mut log_a = Vec::new();
        let mut log_b = Vec::new();
        write_jsonl(run_a.trace.as_ref().unwrap(), &mut log_a).unwrap();
        write_jsonl(run_b.trace.as_ref().unwrap(), &mut log_b).unwrap();
        assert!(!log_a.is_empty());
        assert_eq!(log_a, log_b, "case {index}: event logs differ");
    }
}

#[test]
fn faulty_and_calm_runs_share_arrivals() {
    // Even with faults active, the injected request stream is identical:
    // the engine sees the same arrivals and only the fault machinery
    // diverges afterwards.
    let space = SearchSpace::default();
    let seeds = SeedFactory::new(19);
    let faulty = space.generate(&seeds, 2).unwrap();
    let calm = strip_faults(&faulty);
    assert_eq!(faulty.requests(), calm.requests());
}
