//! Soundness properties of the delta-debug shrinker.
//!
//! The contract under test: for any failing case and any predicate, the
//! shrunk case (a) still satisfies the predicate — it fails the *same*
//! check its parent failed, (b) never grows, (c) descends through a
//! strictly decreasing size metric (which is also the termination
//! argument), and (d) respects the evaluation budget. Predicates here are
//! cheap structural ones so hundreds of shrink runs stay fast; one
//! real-simulation test at the end exercises the same contract with a live
//! oracle predicate.

// Integration tests unwrap freely: a panic is the failure report.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use das_chaos::{shrink, size_metric, ChaosCase, SearchSpace};
use das_sched::policy::PolicyKind;
use das_sim::rng::SeedFactory;

fn generated_case(seed: u64, index: u64) -> ChaosCase {
    SearchSpace::default()
        .generate(&SeedFactory::new(seed), index % 4)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shrinking under a structural predicate preserves the predicate,
    /// never grows the case, and descends strictly.
    #[test]
    fn shrink_is_sound_for_structural_predicates(
        seed in any::<u64>(),
        index in 0u64..4,
        predicate_kind in 0u8..4,
        floor in 1usize..64,
    ) {
        let case = generated_case(seed, index);
        let mut pred = |c: &ChaosCase| -> bool {
            match predicate_kind {
                // "The failure needs at least `floor` requests."
                0 => c.trace.len() >= floor.min(case.trace.len()),
                // "The failure needs some fault machinery active."
                1 => c.faults.is_active() || !case.faults.is_active(),
                // "The failure needs the first crash window."
                2 => {
                    case.faults.crashes.crashes.is_empty()
                        || !c.faults.crashes.crashes.is_empty()
                }
                // "Any case fails" — the shrinker may take everything.
                _ => true,
            }
        };
        prop_assert!(pred(&case), "parent must fail (satisfy the predicate)");

        let out = shrink(&case, &mut pred, 2_000);

        // (a) the shrunk case still fails the same predicate;
        prop_assert!(pred(&out.case));
        // (b) it never grew;
        prop_assert!(size_metric(&out.case) <= size_metric(&case));
        // (c) accepted steps descend strictly — the termination measure;
        let mut last = size_metric(&case);
        for step in &out.steps {
            prop_assert!(step.size < last, "non-decreasing step {step:?}");
            last = step.size;
        }
        if let Some(final_step) = out.steps.last() {
            prop_assert_eq!(final_step.size, size_metric(&out.case));
        }
        // (d) and the case is still a valid, runnable configuration.
        prop_assert!(out.case.validate().is_ok());
    }

    /// The evaluation budget is a hard cap.
    #[test]
    fn shrink_budget_is_respected(
        seed in any::<u64>(),
        budget in 0u64..40,
    ) {
        let case = generated_case(seed, 1);
        let out = shrink(&case, &mut |_| true, budget);
        prop_assert!(out.evaluations <= budget);
    }

    /// A predicate nothing smaller satisfies leaves the case untouched.
    #[test]
    fn unsatisfiable_reductions_return_the_parent(seed in any::<u64>()) {
        let case = generated_case(seed, 2);
        let original_size = size_metric(&case);
        // Only the exact parent size passes, so every candidate is
        // rejected and the fixpoint is the input itself.
        let out = shrink(&case, &mut |c| size_metric(c) >= original_size, 2_000);
        prop_assert_eq!(&out.case, &case);
        prop_assert!(out.steps.is_empty());
    }
}

/// The same contract against a live simulation predicate: "FCFS still
/// completes at least one request". Expensive, so a single seed.
#[test]
fn shrink_with_live_simulation_predicate() {
    let case = generated_case(1234, 0);
    let mut sims = 0u32;
    let mut pred = |c: &ChaosCase| -> bool {
        sims += 1;
        c.run_policy(PolicyKind::Fcfs)
            .map(|r| r.completed >= 1)
            .unwrap_or(false)
    };
    assert!(pred(&case));
    let out = shrink(&case, &mut pred, 60);
    assert!(pred(&out.case), "shrunk case lost the property");
    assert!(size_metric(&out.case) < size_metric(&case), "nothing shrank");
    assert!(out.evaluations <= 60);
    assert!(sims >= out.evaluations as u32);
}
