//! The invariant oracles every chaos case is checked against.
//!
//! Each oracle reuses existing machinery rather than re-deriving physics:
//! telemetry conservation folds the event log with [`das_trace::telemetry`],
//! exactly-once reads [`das_trace::analysis::request_outcomes`], telescoping
//! re-sums [`das_trace::analysis::critical_paths`], and the regression
//! oracle compares the paired FCFS/DAS runs the case already produced.
//! Violations come back in a deterministic order (oracle declaration order,
//! then policy), so reports are byte-stable.

use serde::{Deserialize, Serialize};

use das_store::engine::RunResult;
use das_trace::analysis::{critical_paths, request_outcomes};
use das_trace::telemetry::{self, TelemetryConfig};

use crate::case::{ChaosCase, PairedRun};

/// All oracle slugs, in evaluation (and report) order.
pub const ALL_ORACLES: [&str; 6] = [
    "conservation",
    "exactly-once",
    "telescoping",
    "goodput-floor",
    "das-regression",
    "bound-drift",
];

/// Which oracles run, and their thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Enabled oracle slugs (subset of [`ALL_ORACLES`]).
    pub enabled: Vec<String>,
    /// Minimum completed/offered fraction under admission control.
    pub goodput_floor: f64,
    /// DAS-vs-FCFS mean-RCT ratio above which DAS "lost" the pairing.
    /// Slightly above 1.0 absorbs ties; a committed inversion reproducer
    /// demonstrates a genuine loss, not noise.
    pub das_regression_ratio: f64,
    /// Factor over the zero-queueing lower bound beyond which a run is
    /// considered pathological.
    pub bound_drift_factor: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            enabled: ALL_ORACLES.iter().map(|s| s.to_string()).collect(),
            goodput_floor: 0.5,
            das_regression_ratio: 1.05,
            bound_drift_factor: 30.0,
        }
    }
}

impl OracleConfig {
    /// A config with only the named oracles enabled. Unknown slugs are an
    /// error so a typo in `--oracles` cannot silently disable a check.
    pub fn only(slugs: &[&str]) -> Result<Self, String> {
        for s in slugs {
            if !ALL_ORACLES.contains(s) {
                return Err(format!(
                    "unknown oracle {s:?}; known: {}",
                    ALL_ORACLES.join(", ")
                ));
            }
        }
        Ok(OracleConfig {
            enabled: slugs.iter().map(|s| s.to_string()).collect(),
            ..OracleConfig::default()
        })
    }

    fn on(&self, slug: &str) -> bool {
        self.enabled.iter().any(|s| s == slug)
    }
}

/// One oracle violation on one run of a case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The violated oracle's slug.
    pub oracle: String,
    /// Which run violated it (`"fcfs"`, `"das"`, or `"pair"`).
    pub policy: String,
    /// Human-readable description of the breach.
    pub detail: String,
    /// The violating measure (ratio, count, fraction — oracle-specific),
    /// used to rank findings and to confirm a shrunk case still fails.
    pub measure: f64,
}

/// Evaluates every enabled oracle against a paired run.
pub fn evaluate(case: &ChaosCase, paired: &PairedRun, cfg: &OracleConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    let runs = [("fcfs", &paired.fcfs), ("das", &paired.das)];

    if cfg.on("conservation") {
        for (policy, run) in runs {
            out.extend(check_conservation(case, run, policy));
        }
    }
    if cfg.on("exactly-once") {
        for (policy, run) in runs {
            out.extend(check_exactly_once(run, policy));
        }
    }
    if cfg.on("telescoping") {
        for (policy, run) in runs {
            out.extend(check_telescoping(run, policy));
        }
    }
    if cfg.on("goodput-floor") {
        for (policy, run) in runs {
            out.extend(check_goodput(case, run, policy, cfg.goodput_floor));
        }
    }
    if cfg.on("das-regression") {
        out.extend(check_regression(paired, cfg.das_regression_ratio));
    }
    if cfg.on("bound-drift") {
        for (policy, run) in runs {
            out.extend(check_bound_drift(run, policy, cfg.bound_drift_factor));
        }
    }
    out
}

/// `busy + idle == workers × horizon` per server, per epoch: folded busy
/// time may never exceed the worker capacity of an epoch.
fn check_conservation(case: &ChaosCase, run: &RunResult, policy: &str) -> Option<Violation> {
    let log = run.trace.as_ref()?;
    if !log.complete() {
        return None; // an overflowed ring can under-count; nothing to assert
    }
    let cfg = TelemetryConfig {
        workers: case.cluster.workers_per_server,
        ..TelemetryConfig::default()
    };
    let t = telemetry::fold(log, &cfg);
    let capacity = u64::from(cfg.workers) * cfg.epoch_ns;
    for series in t.servers.values() {
        for (epoch, &busy) in series.busy_ns.iter().enumerate() {
            if busy > capacity {
                return Some(Violation {
                    oracle: "conservation".into(),
                    policy: policy.into(),
                    detail: format!(
                        "server {} epoch {epoch}: busy {busy} ns exceeds capacity {capacity} ns",
                        series.server
                    ),
                    measure: busy as f64 / capacity as f64,
                });
            }
        }
    }
    // The sweep-line lower bound on concurrency must also fit the cluster.
    if let Some((server, needed)) = telemetry::min_workers(log) {
        if needed > case.cluster.workers_per_server {
            return Some(Violation {
                oracle: "conservation".into(),
                policy: policy.into(),
                detail: format!(
                    "server {server} needs {needed} concurrent workers, cluster has {}",
                    case.cluster.workers_per_server
                ),
                measure: f64::from(needed),
            });
        }
    }
    None
}

/// Every request completes at most once, and never both completes and
/// aborts.
fn check_exactly_once(run: &RunResult, policy: &str) -> Option<Violation> {
    let log = run.trace.as_ref()?;
    if !log.complete() {
        return None;
    }
    for (request, completes, aborts) in request_outcomes(log) {
        if completes > 1 || (completes > 0 && aborts > 0) {
            return Some(Violation {
                oracle: "exactly-once".into(),
                policy: policy.into(),
                detail: format!(
                    "request {request}: {completes} completions, {aborts} aborts"
                ),
                measure: f64::from(completes + aborts),
            });
        }
    }
    None
}

/// Every blame path telescopes: the five segments sum exactly to the RCT.
fn check_telescoping(run: &RunResult, policy: &str) -> Option<Violation> {
    let log = run.trace.as_ref()?;
    if !log.complete() {
        return None;
    }
    for p in critical_paths(log) {
        if p.sum_ns() != p.rct_ns {
            return Some(Violation {
                oracle: "telescoping".into(),
                policy: policy.into(),
                detail: format!(
                    "request {}: segments sum to {} ns but rct is {} ns",
                    p.request,
                    p.sum_ns(),
                    p.rct_ns
                ),
                measure: (p.sum_ns() as f64 - p.rct_ns as f64).abs(),
            });
        }
    }
    None
}

/// Under admission control the store must still complete at least
/// `floor` of offered requests — shedding everything is not "overload
/// control".
fn check_goodput(
    case: &ChaosCase,
    run: &RunResult,
    policy: &str,
    floor: f64,
) -> Option<Violation> {
    if !case.overload.admission.enabled() {
        return None;
    }
    let offered = run.recovery.offered();
    if offered == 0 {
        return None;
    }
    let goodput = run.recovery.completed as f64 / offered as f64;
    (goodput < floor).then(|| Violation {
        oracle: "goodput-floor".into(),
        policy: policy.into(),
        detail: format!(
            "completed {}/{} offered ({:.3} < floor {floor})",
            run.recovery.completed, offered, goodput
        ),
        measure: goodput,
    })
}

/// DAS's mean RCT exceeding FCFS's by more than the configured ratio on
/// the *same* request stream — the adaptive scheduler lost to its baseline.
fn check_regression(paired: &PairedRun, ratio: f64) -> Option<Violation> {
    let r = paired.ratio()?;
    (r > ratio).then(|| Violation {
        oracle: "das-regression".into(),
        policy: "pair".into(),
        detail: format!(
            "das mean rct {:.3} ms vs fcfs {:.3} ms (ratio {r:.3} > {ratio})",
            paired.das.mean_rct() * 1e3,
            paired.fcfs.mean_rct() * 1e3
        ),
        measure: r,
    })
}

/// The mean RCT drifting absurdly far above the zero-queueing lower bound
/// flags runaway queueing the overload layer should have damped.
fn check_bound_drift(run: &RunResult, policy: &str, factor: f64) -> Option<Violation> {
    if run.measured == 0 || run.lower_bound_mean_rct <= 0.0 {
        return None;
    }
    let drift = run.mean_rct() / run.lower_bound_mean_rct;
    (drift > factor).then(|| Violation {
        oracle: "bound-drift".into(),
        policy: policy.into(),
        detail: format!(
            "mean rct {:.3} ms is {drift:.1}x the zero-queueing bound {:.3} ms",
            run.mean_rct() * 1e3,
            run.lower_bound_mean_rct * 1e3
        ),
        measure: drift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sim::rng::SeedFactory;

    use crate::space::SearchSpace;

    #[test]
    fn unknown_oracle_slug_is_rejected() {
        assert!(OracleConfig::only(&["conservation"]).is_ok());
        let err = OracleConfig::only(&["no-such-oracle"]).unwrap_err();
        assert!(err.contains("no-such-oracle"));
    }

    #[test]
    fn physics_oracles_pass_on_generated_cases() {
        // The engine's invariants hold on ordinary cases; oracles exist to
        // catch regressions, not to fire on every run.
        let space = SearchSpace::default();
        let seeds = SeedFactory::new(21);
        let cfg = OracleConfig {
            // The comparative oracles (regression, drift, goodput) can
            // legitimately fire on hostile cases; here we check only the
            // hard physics invariants.
            enabled: vec![
                "conservation".into(),
                "exactly-once".into(),
                "telescoping".into(),
            ],
            ..OracleConfig::default()
        };
        let case = space.generate(&seeds, 5).unwrap();
        let paired = case.run_paired().unwrap();
        let violations = evaluate(&case, &paired, &cfg);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn regression_oracle_fires_on_inverted_pair() {
        let space = SearchSpace::default();
        let seeds = SeedFactory::new(23);
        let case = space.generate(&seeds, 0).unwrap();
        let mut paired = case.run_paired().unwrap();
        // Force an inversion by swapping the pair.
        if paired.das.mean_rct() < paired.fcfs.mean_rct() {
            std::mem::swap(&mut paired.das, &mut paired.fcfs);
        }
        let cfg = OracleConfig {
            enabled: vec!["das-regression".into()],
            das_regression_ratio: 1.0,
            ..OracleConfig::default()
        };
        let v = evaluate(&case, &paired, &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "das-regression");
        assert!(v[0].measure > 1.0);
    }
}
