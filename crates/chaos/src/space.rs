//! The declared search space chaos cases are drawn from.
//!
//! A [`SearchSpace`] bounds every knob the fuzzer may turn: cluster shape,
//! load factor, crash windows, gray-failure perf events, link faults, and
//! the overload-control toggles. Case generation draws each concern from
//! its **own** [`SeedFactory`] stream (`"chaos-workload"`, `"chaos-faults"`,
//! `"chaos-overload"`), so zeroing the fault bounds cannot perturb the
//! generated workload — the determinism tests byte-diff traces to pin this.
//! Cases are valid by construction: loss implies retries, retry budgets
//! never exceed admission deadlines, and crash windows never overlap.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use das_net::latency::{LatencyConfig, NetworkConfig};
use das_sim::fault::{CrashWindow, FaultSchedule};
use das_sim::rng::{open_unit, SeedFactory, SimRng};
use das_sim::time::{SimDuration, SimTime};
use das_store::config::{
    AdmissionConfig, BackpressureConfig, BatchConfig, ClusterConfig, FaultProfile, HedgeConfig,
    OverloadProfile, PerfEvent, RetryConfig,
};
use das_store::partition::PartitionerConfig;
use das_workload::generator::{WorkloadGenerator, WorkloadSpec};
use das_workload::spec::{ArrivalConfig, FanoutConfig, PopularityConfig, SizeConfig};

use crate::case::ChaosCase;

/// Uniform draw in `[a, b]` (degenerate bounds return `a`).
fn uniform(rng: &mut SimRng, a: f64, b: f64) -> f64 {
    a + (b - a) * open_unit(rng)
}

/// Uniform integer draw in the inclusive range `[lo, hi]`.
fn pick_u32(rng: &mut SimRng, (lo, hi): (u32, u32)) -> u32 {
    lo + (rng.next_u64() % u64::from(hi.saturating_sub(lo) + 1)) as u32
}

/// Bernoulli draw with success probability `p`.
fn coin(rng: &mut SimRng, p: f64) -> bool {
    open_unit(rng) <= p
}

/// Bounds on every knob chaos search may turn.
///
/// Tuple fields are inclusive `(min, max)` ranges; `*_max` scalars bound a
/// knob that may also be off. The default space is deliberately small and
/// hostile: few servers, high load, noisy DAS inputs (hint loss, estimate
/// noise, many coordinators) — the regime where adaptive scheduling can
/// actually lose to FCFS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Cluster size range.
    pub servers: (u32, u32),
    /// Workers per server range.
    pub workers_per_server: (u32, u32),
    /// Replication factor range.
    pub replication: (u32, u32),
    /// Independent coordinators range (more = staler DAS estimates).
    pub coordinators: (u32, u32),
    /// Offered-load factor rho range (fraction of cluster service capacity).
    pub rho: (f64, f64),
    /// Simulated horizon range, seconds.
    pub horizon_secs: (f64, f64),
    /// Key-population range.
    pub n_keys: (usize, usize),
    /// Largest multi-get fan-out range.
    pub fanout_max: (usize, usize),
    /// Cap on the per-access write probability.
    pub write_fraction_max: f64,
    /// Cap on the progress-hint loss probability (DAS stress).
    pub hint_loss_max: f64,
    /// Cap on the coordinator's service-time estimate noise (DAS stress).
    pub estimate_noise_max: f64,
    /// Largest number of crash windows per case.
    pub max_crash_windows: u32,
    /// Crash-window duration range, seconds.
    pub crash_len_secs: (f64, f64),
    /// Largest number of gray-failure perf events per case.
    pub max_perf_events: u32,
    /// Perf-event rate-multiplier range (below 1 = slowdown).
    pub perf_multiplier: (f64, f64),
    /// Cap on each link-fault probability (loss, duplication, extra delay).
    pub link_prob_max: f64,
    /// Cap on the extra delay injected by delayed messages, microseconds.
    pub extra_delay_micros_max: f64,
    /// Probability that retries are enabled without loss forcing them.
    pub retry_prob: f64,
    /// Probability that hedged reads are enabled.
    pub hedge_prob: f64,
    /// Probability that each overload-control knob (admission,
    /// backpressure, batching) is switched on.
    pub overload_prob: f64,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            servers: (4, 8),
            workers_per_server: (1, 2),
            replication: (1, 2),
            coordinators: (1, 4),
            rho: (0.55, 0.9),
            horizon_secs: (0.25, 0.5),
            n_keys: (2_000, 10_000),
            fanout_max: (4, 16),
            write_fraction_max: 0.3,
            hint_loss_max: 0.5,
            estimate_noise_max: 0.5,
            max_crash_windows: 3,
            crash_len_secs: (0.02, 0.12),
            max_perf_events: 2,
            perf_multiplier: (0.05, 0.5),
            link_prob_max: 0.05,
            extra_delay_micros_max: 2_000.0,
            retry_prob: 0.3,
            hedge_prob: 0.3,
            overload_prob: 0.5,
        }
    }
}

impl SearchSpace {
    /// A space with every fault, recovery, overload, and DAS-noise bound
    /// zeroed — generated cases carry a default (inactive) fault profile.
    /// Paired with the same seed against the original space, the workload
    /// side of each case must be identical (stream isolation); the
    /// determinism tests byte-diff exactly that.
    pub fn without_faults(&self) -> Self {
        SearchSpace {
            hint_loss_max: 0.0,
            estimate_noise_max: 0.0,
            max_crash_windows: 0,
            max_perf_events: 0,
            link_prob_max: 0.0,
            extra_delay_micros_max: 0.0,
            retry_prob: 0.0,
            hedge_prob: 0.0,
            overload_prob: 0.0,
            ..self.clone()
        }
    }

    /// `work_per_request_secs` from the cluster's service model — the same
    /// arithmetic `das_core::load` uses, replicated here because das-chaos
    /// sits below das-core in the crate graph (the core crate's equivalence
    /// tests pin the two against each other).
    fn work_per_request_secs(spec: &WorkloadSpec, cluster: &ClusterConfig) -> f64 {
        spec.mean_fanout() * cluster.per_op_overhead.as_secs_f64()
            + spec.mean_request_bytes() / cluster.base_rate_bytes_per_sec
    }

    /// Draws the cluster and workload (arrival rate solved from rho).
    fn draw_workload(&self, rng: &mut SimRng) -> (ClusterConfig, WorkloadSpec, f64) {
        let servers = pick_u32(rng, self.servers);
        let cluster = ClusterConfig {
            servers,
            workers_per_server: pick_u32(rng, self.workers_per_server),
            base_rate_bytes_per_sec: 5e7,
            per_op_overhead: SimDuration::from_micros(100),
            network: NetworkConfig {
                latency: LatencyConfig::Lognormal {
                    mean_micros: 50.0,
                    sigma: 0.4,
                },
                bandwidth_bytes_per_sec: Some(1.25e9),
            },
            partitioner: PartitionerConfig::ConsistentHash { vnodes: 128 },
            replication: pick_u32(rng, self.replication).min(servers),
            coordinators: pick_u32(rng, self.coordinators),
            hint_loss: uniform(rng, 0.0, self.hint_loss_max),
            perf_events: Vec::new(),
            estimate_noise: uniform(rng, 0.0, self.estimate_noise_max),
        };
        let n_keys_span = (self.n_keys.1 - self.n_keys.0) as u64 + 1;
        let mut spec = WorkloadSpec {
            n_keys: self.n_keys.0 + (rng.next_u64() % n_keys_span) as usize,
            // Placeholder rate; replaced below once the spec's means exist.
            arrival: ArrivalConfig::Poisson { rate: 1.0 },
            fanout: FanoutConfig::Zipf {
                max: self.fanout_max.0
                    + (rng.next_u64() % ((self.fanout_max.1 - self.fanout_max.0) as u64 + 1))
                        as usize,
                theta: uniform(rng, 0.6, 1.2),
            },
            sizes: SizeConfig::Etc {
                min_bytes: 512,
                max_bytes: 256 << 10,
                alpha: 1.1,
            },
            popularity: PopularityConfig::Zipf {
                theta: uniform(rng, 0.6, 1.1),
            },
            hot_key_size_cap: None,
            write_fraction: uniform(rng, 0.0, self.write_fraction_max),
        };
        let rho = uniform(rng, self.rho.0, self.rho.1);
        let work = Self::work_per_request_secs(&spec, &cluster);
        let rate = rho * f64::from(cluster.servers) * f64::from(cluster.workers_per_server) / work;
        spec.arrival = ArrivalConfig::Poisson { rate };
        let horizon = uniform(rng, self.horizon_secs.0, self.horizon_secs.1);
        (cluster, spec, horizon)
    }

    /// Draws crash windows, perf events, link faults, and the recovery
    /// policy — all from the fault stream only.
    fn draw_faults(
        &self,
        rng: &mut SimRng,
        servers: u32,
        horizon: f64,
    ) -> (FaultProfile, Vec<PerfEvent>) {
        let mut crashes = Vec::new();
        if self.max_crash_windows > 0 {
            let n = pick_u32(rng, (0, self.max_crash_windows));
            for _ in 0..n {
                let server = pick_u32(rng, (0, servers - 1));
                let down = uniform(rng, 0.0, horizon * 0.8);
                let len = uniform(rng, self.crash_len_secs.0, self.crash_len_secs.1);
                crashes.push(CrashWindow {
                    server,
                    down_secs: down,
                    up_secs: down + len,
                });
            }
        }
        let crashes = dedup_overlaps(crashes);

        let mut perf_events = Vec::new();
        if self.max_perf_events > 0 {
            let n = pick_u32(rng, (0, self.max_perf_events));
            for _ in 0..n {
                let start = uniform(rng, 0.0, horizon * 0.8);
                let len = uniform(rng, self.crash_len_secs.0, self.crash_len_secs.1);
                perf_events.push(PerfEvent {
                    server: pick_u32(rng, (0, servers - 1)),
                    start_secs: start,
                    end_secs: start + len,
                    multiplier: uniform(rng, self.perf_multiplier.0, self.perf_multiplier.1),
                });
            }
        }

        let draw_link = |rng: &mut SimRng| das_net::faults::LinkFaults {
            loss: if coin(rng, 0.5) {
                uniform(rng, 0.0, self.link_prob_max)
            } else {
                0.0
            },
            duplication: if coin(rng, 0.5) {
                uniform(rng, 0.0, self.link_prob_max)
            } else {
                0.0
            },
            extra_delay_prob: if coin(rng, 0.5) {
                uniform(rng, 0.0, self.link_prob_max)
            } else {
                0.0
            },
            extra_delay_micros: uniform(rng, 0.0, self.extra_delay_micros_max),
        };
        let request_faults = draw_link(rng);
        let response_faults = draw_link(rng);

        // Loss without retries would hang a request forever, so any loss
        // forces the retry machinery on (validity by construction).
        let lossy = request_faults.loss > 0.0 || response_faults.loss > 0.0;
        let retry = if lossy || coin(rng, self.retry_prob) {
            RetryConfig {
                deadline_secs: uniform(rng, 0.005, 0.04),
                max_attempts: pick_u32(rng, (2, 4)),
                jitter: uniform(rng, 0.0, 0.5),
                ..RetryConfig::default()
            }
        } else {
            RetryConfig::default()
        };
        let hedge = if coin(rng, self.hedge_prob) {
            HedgeConfig {
                quantile: uniform(rng, 0.9, 0.99),
                min_samples: 20,
                ..HedgeConfig::default()
            }
        } else {
            HedgeConfig::default()
        };

        (
            FaultProfile {
                crashes: FaultSchedule { crashes },
                request_faults,
                response_faults,
                retry,
                hedge,
            },
            perf_events,
        )
    }

    /// Draws the overload-control profile from the overload stream only.
    fn draw_overload(&self, rng: &mut SimRng) -> OverloadProfile {
        OverloadProfile {
            admission: if coin(rng, self.overload_prob) {
                AdmissionConfig {
                    deadline_secs: uniform(rng, 0.02, 0.1),
                    queue_capacity: pick_u32(rng, (64, 512)),
                    write_penalty: uniform(rng, 1.0, 2.0),
                }
            } else {
                AdmissionConfig::default()
            },
            backpressure: if coin(rng, self.overload_prob) {
                BackpressureConfig {
                    tokens_per_sec: uniform(rng, 100.0, 2_000.0),
                    burst: uniform(rng, 4.0, 32.0),
                }
            } else {
                BackpressureConfig::default()
            },
            batch: if coin(rng, self.overload_prob) {
                BatchConfig {
                    max_ops: pick_u32(rng, (2, 8)),
                    tiny_op_bytes: 4096,
                    overhead_fraction: uniform(rng, 0.1, 0.5),
                }
            } else {
                BatchConfig::default()
            },
        }
    }

    /// Generates case `index` of the run seeded by `seeds`. The returned
    /// case is validated; an error here is a bug in the space, not in the
    /// caller.
    pub fn generate(&self, seeds: &SeedFactory, index: u64) -> Result<ChaosCase, String> {
        let mut wl_rng = seeds.stream("chaos-workload", index);
        let mut fault_rng = seeds.stream("chaos-faults", index);
        let mut ov_rng = seeds.stream("chaos-overload", index);

        let (mut cluster, workload, horizon) = self.draw_workload(&mut wl_rng);
        let (mut faults, perf_events) = self.draw_faults(&mut fault_rng, cluster.servers, horizon);
        cluster.perf_events = perf_events;
        let overload = self.draw_overload(&mut ov_rng);
        // A retry budget above the admission deadline is invalid (every
        // retried attempt would outlive its request); clamp rather than
        // redraw so the fault stream's draw count stays fixed.
        if overload.admission.enabled() && faults.retry.deadline_secs > overload.admission.deadline_secs
        {
            faults.retry.deadline_secs = overload.admission.deadline_secs;
        }

        let case_seed = seeds.derived_seed("chaos-case", index);
        let trace = WorkloadGenerator::new(&workload, &SeedFactory::new(case_seed))
            .take_until(SimTime::from_secs_f64(horizon));
        let case = ChaosCase {
            name: format!("case{index:04}"),
            seed: case_seed,
            horizon_secs: horizon,
            warmup_secs: 0.1 * horizon,
            cluster,
            workload,
            faults,
            overload,
            trace,
        };
        case.validate().map(|()| case)
    }

    /// Mutates `base` into a neighbouring case, biased toward placing
    /// fault edges near DAS scheduling decisions: `decisions` holds decision
    /// instants (seconds) harvested from the parent's DAS trace, and most
    /// mutations drop a crash or gray-failure edge just before one of them
    /// (with a little jitter), which is exactly where a stale estimate hurts
    /// the most. The workload trace is never touched here — shrinking owns
    /// trace reduction.
    pub fn mutate(&self, base: &ChaosCase, rng: &mut SimRng, decisions: &[f64]) -> ChaosCase {
        let mut out = base.clone();
        out.name = format!("{}m", base.name);
        let horizon = base.horizon_secs;
        let pick_instant = |rng: &mut SimRng| -> f64 {
            if decisions.is_empty() || coin(rng, 0.25) {
                uniform(rng, 0.0, horizon * 0.8)
            } else {
                let d = decisions[(rng.next_u64() % decisions.len() as u64) as usize];
                // Land the edge just before the decision so the scheduler
                // acts on information the fault has already invalidated.
                (d - uniform(rng, 0.0, 0.01)).max(0.0)
            }
        };
        match rng.next_u64() % 6 {
            0 if self.max_crash_windows > 0 => {
                let down = pick_instant(rng);
                let len = uniform(rng, self.crash_len_secs.0, self.crash_len_secs.1);
                out.faults.crashes.crashes.push(CrashWindow {
                    server: pick_u32(rng, (0, base.cluster.servers - 1)),
                    down_secs: down,
                    up_secs: down + len,
                });
                out.faults.crashes.crashes = dedup_overlaps(out.faults.crashes.crashes.clone());
            }
            1 if !out.faults.crashes.crashes.is_empty() => {
                let n = out.faults.crashes.crashes.len() as u64;
                let i = (rng.next_u64() % n) as usize;
                let w = &mut out.faults.crashes.crashes[i];
                let len = w.up_secs - w.down_secs;
                w.down_secs = pick_instant(rng);
                w.up_secs = w.down_secs + len;
                out.faults.crashes.crashes = dedup_overlaps(out.faults.crashes.crashes.clone());
            }
            2 if self.max_perf_events > 0 => {
                let start = pick_instant(rng);
                let len = uniform(rng, self.crash_len_secs.0, self.crash_len_secs.1);
                out.cluster.perf_events.push(PerfEvent {
                    server: pick_u32(rng, (0, base.cluster.servers - 1)),
                    start_secs: start,
                    end_secs: start + len,
                    multiplier: uniform(rng, self.perf_multiplier.0, self.perf_multiplier.1),
                });
            }
            3 if self.link_prob_max > 0.0 => {
                out.faults.response_faults.loss = uniform(rng, 0.0, self.link_prob_max);
                if !out.faults.retry.enabled() {
                    out.faults.retry.deadline_secs = uniform(rng, 0.005, 0.04);
                }
                if out.overload.admission.enabled()
                    && out.faults.retry.deadline_secs > out.overload.admission.deadline_secs
                {
                    out.faults.retry.deadline_secs = out.overload.admission.deadline_secs;
                }
            }
            4 if self.hint_loss_max > 0.0 => {
                out.cluster.hint_loss = uniform(rng, 0.0, self.hint_loss_max);
            }
            _ if self.estimate_noise_max > 0.0 => {
                out.cluster.estimate_noise = uniform(rng, 0.0, self.estimate_noise_max);
            }
            _ => {}
        }
        out
    }
}

/// Sorts windows by `(server, down)` and drops any window overlapping the
/// previously kept one on the same server — the generated schedule always
/// passes [`FaultSchedule::first_overlap`].
fn dedup_overlaps(mut windows: Vec<CrashWindow>) -> Vec<CrashWindow> {
    windows.sort_by(|a, b| {
        a.server
            .cmp(&b.server)
            .then(a.down_secs.total_cmp(&b.down_secs))
    });
    let mut kept: Vec<CrashWindow> = Vec::with_capacity(windows.len());
    for w in windows {
        let overlaps = kept
            .last()
            .is_some_and(|p| p.server == w.server && w.down_secs < p.up_secs);
        if !overlaps {
            kept.push(w);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_valid_and_deterministic() {
        let space = SearchSpace::default();
        let seeds = SeedFactory::new(42);
        for i in 0..16 {
            let a = space.generate(&seeds, i).unwrap();
            let b = space.generate(&seeds, i).unwrap();
            assert_eq!(a, b);
            assert!(!a.trace.is_empty(), "case {i} generated an empty trace");
        }
    }

    #[test]
    fn different_indices_differ() {
        let space = SearchSpace::default();
        let seeds = SeedFactory::new(42);
        let a = space.generate(&seeds, 0).unwrap();
        let b = space.generate(&seeds, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_stream_is_isolated_from_workload() {
        // Zeroing every fault/overload bound must not change the workload
        // side of the case: separate RNG streams per concern.
        let space = SearchSpace::default();
        let calm = space.without_faults();
        let seeds = SeedFactory::new(7);
        for i in 0..8 {
            let a = space.generate(&seeds, i).unwrap();
            let b = calm.generate(&seeds, i).unwrap();
            assert_eq!(a.trace, b.trace, "case {i} trace drifted");
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.seed, b.seed);
            assert!(b.faults.crashes.crashes.is_empty());
            assert!(b.cluster.perf_events.is_empty());
            assert!(!b.overload.is_active());
        }
    }

    #[test]
    fn mutation_yields_valid_cases() {
        let space = SearchSpace::default();
        let seeds = SeedFactory::new(13);
        let base = space.generate(&seeds, 2).unwrap();
        let mut rng = seeds.stream("chaos-search", 99);
        let decisions = [0.05, 0.1, 0.2];
        for _ in 0..32 {
            let m = space.mutate(&base, &mut rng, &decisions);
            assert!(m.validate().is_ok(), "mutant failed validation");
            assert_eq!(m.trace, base.trace, "mutation must not touch the trace");
        }
    }

    #[test]
    fn dedup_drops_only_overlaps() {
        let w = |server, down: f64, up: f64| CrashWindow {
            server,
            down_secs: down,
            up_secs: up,
        };
        let kept = dedup_overlaps(vec![w(0, 0.1, 0.2), w(0, 0.15, 0.3), w(1, 0.1, 0.2)]);
        assert_eq!(kept.len(), 2);
        let kept = dedup_overlaps(vec![w(0, 0.1, 0.2), w(0, 0.2, 0.3)]);
        assert_eq!(kept.len(), 2, "back-to-back windows are legal");
    }
}
