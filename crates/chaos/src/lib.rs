//! # das-chaos — deterministic chaos search over fault schedules
//!
//! A simulation-testing harness in the FoundationDB/Jepsen style, built on
//! the deterministic simulator: generate combined fault-schedule +
//! workload + overload configurations from a declared [`space::SearchSpace`],
//! run each candidate paired (FCFS and DAS over the *identical* request
//! trace), and check a suite of invariant [`oracle`]s reusing the repo's
//! existing machinery — telemetry conservation, exactly-once completion,
//! blame-path telescoping, goodput floors under admission control, and a
//! DAS-vs-FCFS paired-replay regression oracle.
//!
//! Any failing case is delta-debug [`shrink`]-ed — drop or narrow fault
//! events, trim the workload trace — to a minimal reproducer that still
//! fails the *same* oracle, then emitted as a self-contained replayable
//! [`artifact::Reproducer`] (`das_experiment replay` accepts its files).
//!
//! Everything is seeded: the same `(seed, budget, space)` triple produces a
//! byte-identical [`report::ChaosReport`]. Each concern draws from its own
//! [`das_sim::rng::SeedFactory`] stream (`"chaos-workload"`,
//! `"chaos-faults"`, `"chaos-overload"`, `"chaos-search"`), so enabling
//! fault generation never perturbs workload arrivals — the determinism
//! tests byte-diff event logs to pin this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Test code asserts on exact deterministic outputs and unwraps freely;
// the machine-checked rules apply to shipped library paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod case;
pub mod oracle;
pub mod report;
pub mod search;
pub mod shrink;
pub mod space;

pub use artifact::{corpus_dir, read_corpus, Reproducer};
pub use case::{ChaosCase, PairedRun};
pub use oracle::{OracleConfig, Violation};
pub use report::ChaosReport;
pub use search::{search, ChaosConfig, Finding, SearchOutcome};
pub use shrink::{shrink, size_metric, ShrinkOutcome};
pub use space::SearchSpace;
