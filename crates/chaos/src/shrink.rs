//! Delta-debug shrinking: reduce a failing case to a minimal reproducer.
//!
//! Greedy first-improvement descent over a deterministic candidate list:
//! trim trace chunks (halving block sizes, ddmin-style), drop or narrow
//! crash windows and perf events, zero link-fault knobs, and disable
//! whole subsystems (hedge, admission, backpressure, batching, DAS noise).
//! A candidate is accepted only when it **strictly decreases** the integer
//! [`size_metric`] *and* still fails the caller's predicate — usually "the
//! same oracle still fires" — so termination is a corollary of a strictly
//! decreasing `u64`, and the proptests pin exactly that.

use serde::{Deserialize, Serialize};

use crate::case::ChaosCase;

/// The integer size of a case — what shrinking minimizes. Counts the trace
/// length, a per-event cost for crash windows and perf events (1 plus the
/// clamped duration in ms, so *narrowing* a window also shrinks), and a
/// fixed cost for each active fault/overload/noise knob.
pub fn size_metric(case: &ChaosCase) -> u64 {
    const KNOB: u64 = 4;
    let window_cost = |down: f64, up: f64| -> u64 {
        let len_ms = ((up - down).clamp(0.0, 10.0) * 1e3).ceil() as u64;
        1 + len_ms
    };
    let mut size = case.trace.len() as u64;
    for w in &case.faults.crashes.crashes {
        size += window_cost(w.down_secs, w.up_secs);
    }
    for e in &case.cluster.perf_events {
        size += window_cost(e.start_secs, e.end_secs);
    }
    let link_knobs = |l: &das_net::faults::LinkFaults| -> u64 {
        [l.loss, l.duplication, l.extra_delay_prob]
            .iter()
            .filter(|&&p| p > 0.0)
            .count() as u64
            * KNOB
    };
    size += link_knobs(&case.faults.request_faults);
    size += link_knobs(&case.faults.response_faults);
    if case.faults.hedge.enabled() {
        size += KNOB;
    }
    if case.overload.admission.enabled() {
        size += KNOB;
    }
    if case.overload.backpressure.enabled() {
        size += KNOB;
    }
    if case.overload.batch.enabled() {
        size += KNOB;
    }
    if case.cluster.hint_loss > 0.0 {
        size += KNOB;
    }
    if case.cluster.estimate_noise > 0.0 {
        size += KNOB;
    }
    size
}

/// One accepted shrink step, for the audit trail in reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkStep {
    /// What was removed or narrowed.
    pub action: String,
    /// The case size after this step.
    pub size: u64,
}

/// The result of a shrink run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// The minimized case (== input when nothing could be removed).
    pub case: ChaosCase,
    /// Accepted steps, in order; sizes are strictly decreasing.
    pub steps: Vec<ShrinkStep>,
    /// Predicate evaluations spent (accepted and rejected candidates).
    pub evaluations: u64,
}

/// Every single-step reduction of `case`, as `(action, candidate)` pairs in
/// a deterministic order. Each candidate is strictly smaller under
/// [`size_metric`] by construction, except degenerate narrows which the
/// accept loop filters out.
fn candidates(case: &ChaosCase) -> Vec<(String, ChaosCase)> {
    let mut out: Vec<(String, ChaosCase)> = Vec::new();

    // Trace trimming, ddmin-style: remove aligned chunks at halving sizes.
    // Dropping a *prefix* chunk is tried too — early requests only warm the
    // system up, and many failures live in the tail.
    let n = case.trace.len();
    let mut chunk = n / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let mut c = case.clone();
            c.trace.drain(start..end);
            out.push((format!("drop trace[{start}..{end}]"), c));
            start += chunk;
        }
        if chunk == 1 && n > 16 {
            break; // single-request removal only pays off on tiny traces
        }
        chunk /= 2;
        if chunk > 0 && n / chunk > 16 {
            break; // cap the candidate count on huge traces
        }
    }

    for (i, w) in case.faults.crashes.crashes.iter().enumerate() {
        let mut c = case.clone();
        c.faults.crashes.crashes.remove(i);
        out.push((format!("drop crash window {i}"), c));
        if w.up_secs - w.down_secs > 0.002 {
            let mut c = case.clone();
            let mid = w.down_secs + (w.up_secs - w.down_secs) / 2.0;
            c.faults.crashes.crashes[i].up_secs = mid;
            out.push((format!("halve crash window {i}"), c));
        }
    }

    for (i, e) in case.cluster.perf_events.iter().enumerate() {
        let mut c = case.clone();
        c.cluster.perf_events.remove(i);
        out.push((format!("drop perf event {i}"), c));
        if e.end_secs - e.start_secs > 0.002 {
            let mut c = case.clone();
            let mid = e.start_secs + (e.end_secs - e.start_secs) / 2.0;
            c.cluster.perf_events[i].end_secs = mid;
            out.push((format!("halve perf event {i}"), c));
        }
    }

    for (dir, get) in [
        (
            "request",
            (|c: &mut ChaosCase| &mut c.faults.request_faults)
                as fn(&mut ChaosCase) -> &mut das_net::faults::LinkFaults,
        ),
        ("response", |c: &mut ChaosCase| &mut c.faults.response_faults),
    ] {
        for knob in ["loss", "duplication", "extra_delay_prob"] {
            let mut c = case.clone();
            let l = get(&mut c);
            let active = match knob {
                "loss" => {
                    let was = l.loss > 0.0;
                    l.loss = 0.0;
                    was
                }
                "duplication" => {
                    let was = l.duplication > 0.0;
                    l.duplication = 0.0;
                    was
                }
                _ => {
                    let was = l.extra_delay_prob > 0.0;
                    l.extra_delay_prob = 0.0;
                    was
                }
            };
            if active {
                out.push((format!("zero {dir} {knob}"), c));
            }
        }
    }

    if case.faults.hedge.enabled() {
        let mut c = case.clone();
        c.faults.hedge.quantile = 0.0;
        out.push(("disable hedging".into(), c));
    }
    if case.overload.admission.enabled() {
        let mut c = case.clone();
        c.overload.admission.deadline_secs = 0.0;
        out.push(("disable admission".into(), c));
    }
    if case.overload.backpressure.enabled() {
        let mut c = case.clone();
        c.overload.backpressure.tokens_per_sec = 0.0;
        out.push(("disable backpressure".into(), c));
    }
    if case.overload.batch.enabled() {
        let mut c = case.clone();
        c.overload.batch.max_ops = 0;
        out.push(("disable batching".into(), c));
    }
    if case.cluster.hint_loss > 0.0 {
        let mut c = case.clone();
        c.cluster.hint_loss = 0.0;
        out.push(("zero hint loss".into(), c));
    }
    if case.cluster.estimate_noise > 0.0 {
        let mut c = case.clone();
        c.cluster.estimate_noise = 0.0;
        out.push(("zero estimate noise".into(), c));
    }
    out
}

/// Shrinks `case` while `still_fails` holds, spending at most
/// `max_evaluations` predicate calls. The input case is assumed failing
/// (the caller just observed it fail); the result is the smallest case
/// found with the failure preserved.
///
/// Candidates that fail [`ChaosCase::validate`] are skipped without
/// spending an evaluation — e.g. zeroing `loss` alone is invalid while the
/// other direction still loses messages without retries... it isn't
/// (retries stay on), but narrowing can in principle produce inconsistent
/// combinations, and skipping keeps the loop robust to future knobs.
pub fn shrink(
    case: &ChaosCase,
    still_fails: &mut dyn FnMut(&ChaosCase) -> bool,
    max_evaluations: u64,
) -> ShrinkOutcome {
    let mut current = case.clone();
    let mut size = size_metric(&current);
    let mut steps = Vec::new();
    let mut evaluations = 0u64;

    'descend: loop {
        for (action, candidate) in candidates(&current) {
            if evaluations >= max_evaluations {
                break 'descend;
            }
            let candidate_size = size_metric(&candidate);
            if candidate_size >= size || candidate.validate().is_err() {
                continue;
            }
            evaluations += 1;
            if still_fails(&candidate) {
                current = candidate;
                size = candidate_size;
                steps.push(ShrinkStep {
                    action,
                    size,
                });
                continue 'descend; // restart enumeration from the smaller case
            }
        }
        break; // fixpoint: no candidate both shrinks and still fails
    }

    ShrinkOutcome {
        case: current,
        steps,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sim::rng::SeedFactory;

    use crate::space::SearchSpace;

    fn sample_case() -> ChaosCase {
        SearchSpace::default()
            .generate(&SeedFactory::new(31), 1)
            .unwrap()
    }

    #[test]
    fn size_metric_counts_trace_and_faults() {
        let case = sample_case();
        let mut calm = case.clone();
        calm.faults = das_store::config::FaultProfile::none();
        calm.cluster.perf_events.clear();
        calm.cluster.hint_loss = 0.0;
        calm.cluster.estimate_noise = 0.0;
        calm.overload = das_store::config::OverloadProfile::none();
        assert_eq!(size_metric(&calm), calm.trace.len() as u64);
        assert!(size_metric(&case) >= size_metric(&calm));
    }

    #[test]
    fn shrink_to_trivial_predicate_reaches_small_fixpoint() {
        // A predicate that always fails lets the shrinker remove
        // everything removable.
        let case = sample_case();
        let out = shrink(&case, &mut |_| true, 10_000);
        assert!(size_metric(&out.case) <= size_metric(&case));
        assert!(out.case.trace.len() <= 16);
        assert!(out.case.faults.crashes.crashes.is_empty());
        assert!(out.case.cluster.perf_events.is_empty());
        // Steps strictly decrease.
        for pair in out.steps.windows(2) {
            assert!(pair[1].size < pair[0].size);
        }
    }

    #[test]
    fn shrink_respects_the_predicate() {
        // Predicate: the trace must keep at least 100 requests. The
        // shrinker may remove faults but never cross the floor.
        let case = sample_case();
        assert!(case.trace.len() >= 100, "need a real trace for this test");
        let out = shrink(&case, &mut |c| c.trace.len() >= 100, 10_000);
        assert!(out.case.trace.len() >= 100);
    }

    #[test]
    fn shrink_budget_bounds_evaluations() {
        let case = sample_case();
        let out = shrink(&case, &mut |_| true, 5);
        assert!(out.evaluations <= 5);
    }
}
