//! The byte-stable chaos-search report.
//!
//! Everything in a [`ChaosReport`] is derived deterministically from the
//! `(seed, budget, space, oracles)` tuple: maps are `BTreeMap`, findings
//! are in case order, and floats serialize via serde_json's shortest
//! round-trip form — the CI goldens byte-diff the JSON and the Markdown.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The worst DAS-vs-FCFS inversion seen anywhere in the search, even when
/// it stayed below the regression oracle's threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InversionSummary {
    /// The search iteration that produced it.
    pub case_index: u64,
    /// DAS mean RCT over FCFS mean RCT (> 1 = DAS lost).
    pub ratio: f64,
    /// FCFS mean RCT, milliseconds.
    pub fcfs_mean_ms: f64,
    /// DAS mean RCT, milliseconds.
    pub das_mean_ms: f64,
}

/// One shrunk finding, as it appears in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindingSummary {
    /// Stable reproducer slug (`case0007_das_regression`).
    pub slug: String,
    /// The search iteration that found it.
    pub case_index: u64,
    /// The violated oracle.
    pub oracle: String,
    /// Which run violated it (`"fcfs"`, `"das"`, `"pair"`).
    pub policy: String,
    /// Violation description from the *minimized* case.
    pub detail: String,
    /// The violating measure on the minimized case.
    pub measure: f64,
    /// Case size before shrinking.
    pub size_before: u64,
    /// Case size after shrinking.
    pub size_after: u64,
    /// Predicate evaluations the shrinker spent.
    pub shrink_evals: u64,
}

/// The complete, deterministic result of one chaos search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Master seed of the search.
    pub seed: u64,
    /// Requested case budget.
    pub budget: u64,
    /// Cases actually generated and run (== budget unless findings capped
    /// the run early).
    pub cases_run: u64,
    /// Total paired-policy simulations executed, including shrinking.
    pub sim_runs: u64,
    /// Violations per oracle slug across all cases (pre-shrink).
    pub oracle_hits: BTreeMap<String, u64>,
    /// Worst DAS-vs-FCFS inversion observed, threshold or not.
    pub worst_inversion: Option<InversionSummary>,
    /// Shrunk findings, in discovery order.
    pub findings: Vec<FindingSummary>,
}

impl ChaosReport {
    /// Renders the report as a Markdown table pair (oracle hit-rates and
    /// findings) — the same content Table 11 in EXPERIMENTS.md is built
    /// from.
    pub fn render_markdown(&self) -> String {
        let mut md = String::new();
        md.push_str(&format!(
            "# Chaos search report\n\nseed {} | budget {} | cases {} | simulations {}\n\n",
            self.seed, self.budget, self.cases_run, self.sim_runs
        ));
        md.push_str("## Oracle hits\n\n| oracle | hits | hit rate |\n|---|---|---|\n");
        for (oracle, hits) in &self.oracle_hits {
            let rate = if self.cases_run == 0 {
                0.0
            } else {
                *hits as f64 / self.cases_run as f64
            };
            md.push_str(&format!("| {oracle} | {hits} | {rate:.3} |\n"));
        }
        if let Some(w) = &self.worst_inversion {
            md.push_str(&format!(
                "\n## Worst DAS-vs-FCFS inversion\n\ncase {}: ratio {:.3} \
                 (das {:.3} ms vs fcfs {:.3} ms)\n",
                w.case_index, w.ratio, w.das_mean_ms, w.fcfs_mean_ms
            ));
        }
        md.push_str("\n## Findings (minimized)\n\n");
        if self.findings.is_empty() {
            md.push_str("none\n");
        } else {
            md.push_str(
                "| slug | oracle | policy | measure | size before → after | shrink evals |\n\
                 |---|---|---|---|---|---|\n",
            );
            for f in &self.findings {
                md.push_str(&format!(
                    "| {} | {} | {} | {:.3} | {} → {} | {} |\n",
                    f.slug, f.oracle, f.policy, f.measure, f.size_before, f.size_after,
                    f.shrink_evals
                ));
            }
        }
        md
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serde_roundtrip_and_markdown() {
        let mut hits = BTreeMap::new();
        hits.insert("das-regression".to_string(), 3u64);
        let r = ChaosReport {
            seed: 1,
            budget: 10,
            cases_run: 10,
            sim_runs: 25,
            oracle_hits: hits,
            worst_inversion: Some(InversionSummary {
                case_index: 7,
                ratio: 1.31,
                fcfs_mean_ms: 2.0,
                das_mean_ms: 2.62,
            }),
            findings: vec![FindingSummary {
                slug: "case0007_das_regression".into(),
                case_index: 7,
                oracle: "das-regression".into(),
                policy: "pair".into(),
                detail: "ratio 1.31".into(),
                measure: 1.31,
                size_before: 900,
                size_after: 120,
                shrink_evals: 40,
            }],
        };
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ChaosReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        let md = r.render_markdown();
        assert!(md.contains("case0007_das_regression"));
        assert!(md.contains("Worst DAS-vs-FCFS inversion"));
    }
}
