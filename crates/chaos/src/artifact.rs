//! Self-contained, replayable reproducer artifacts.
//!
//! A [`Reproducer`] bundles a minimized [`ChaosCase`] with the violation it
//! demonstrates. Serialized as a single JSON file it is the committed
//! corpus format (`crates/chaos/corpus/*.case.json`); [`Reproducer::verify`]
//! re-runs the case from scratch and checks the same oracle still fires
//! with the recorded verdict — what CI asserts for every committed
//! reproducer on every build.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::case::ChaosCase;
use crate::oracle::{evaluate, OracleConfig, Violation};

/// A minimized failing case plus the verdict it must keep reproducing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Stable slug, also the artifact's file stem.
    pub slug: String,
    /// The oracle this case violates.
    pub oracle: String,
    /// Which run violates it (`"fcfs"`, `"das"`, `"pair"`).
    pub policy: String,
    /// Violation description recorded when the case was minimized.
    pub detail: String,
    /// The violating measure recorded at minimization.
    pub measure: f64,
    /// The minimized case itself.
    pub case: ChaosCase,
}

impl Reproducer {
    /// Re-runs the case and returns the live violation if the recorded
    /// oracle still fires, or an error describing the verdict drift.
    pub fn verify(&self, oracles: &OracleConfig) -> Result<Violation, String> {
        let paired = self.case.run_paired()?;
        let violations = evaluate(&self.case, &paired, oracles);
        violations
            .into_iter()
            .find(|v| v.oracle == self.oracle && v.policy == self.policy)
            .ok_or_else(|| {
                format!(
                    "reproducer {}: oracle {} ({}) no longer fires",
                    self.slug, self.oracle, self.policy
                )
            })
    }

    /// Reads a reproducer from a JSON file.
    pub fn read(path: &Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&raw).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Writes the reproducer as pretty JSON (byte-stable for a given
    /// value, so regenerating an unchanged corpus is a no-op diff).
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| format!("serialize {}: {e}", self.slug))?;
        std::fs::write(path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))
    }
}

/// The committed corpus directory (`crates/chaos/corpus`), resolved
/// relative to this crate so tests and CI find it from any working
/// directory.
pub fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// All `*.case.json` reproducers under `dir`, sorted by file name for
/// deterministic iteration.
pub fn read_corpus(dir: &Path) -> Result<Vec<Reproducer>, String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".case.json"))
        })
        .collect();
    paths.sort();
    paths.iter().map(|p| Reproducer::read(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sim::rng::SeedFactory;

    use crate::space::SearchSpace;

    #[test]
    fn reproducer_roundtrips_through_disk() {
        let case = SearchSpace::default()
            .generate(&SeedFactory::new(3), 0)
            .unwrap();
        let r = Reproducer {
            slug: "case0000_test".into(),
            oracle: "das-regression".into(),
            policy: "pair".into(),
            detail: "test".into(),
            measure: 1.2,
            case,
        };
        let dir = std::env::temp_dir().join("das_chaos_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case0000_test.case.json");
        r.write(&path).unwrap();
        let back = Reproducer::read(&path).unwrap();
        assert_eq!(r, back);
        let corpus = read_corpus(&dir).unwrap();
        assert!(corpus.contains(&back));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_rejects_a_verdict_that_cannot_fire() {
        let case = SearchSpace::default()
            .generate(&SeedFactory::new(3), 1)
            .unwrap();
        let r = Reproducer {
            slug: "case0001_bogus".into(),
            // Physics oracles hold on ordinary cases, so this claimed
            // violation cannot reproduce.
            oracle: "exactly-once".into(),
            policy: "das".into(),
            detail: "bogus".into(),
            measure: 2.0,
            case,
        };
        let err = r.verify(&OracleConfig::default()).unwrap_err();
        assert!(err.contains("no longer fires"), "{err}");
    }
}
