//! A self-contained chaos case: everything one adversarial run needs.
//!
//! A [`ChaosCase`] pins the cluster, the fault and overload profiles, the
//! run seed, *and the materialized request trace*, so the case is closed
//! under shrinking (trimming the trace cannot drift the workload) and
//! serializes to a self-contained replayable artifact. Running a case
//! always runs the **pair** — FCFS and DAS over the identical request
//! stream — because the regression oracle and the mutation bias both need
//! the paired view.

use serde::{Deserialize, Serialize};

use das_sched::policy::PolicyKind;
use das_sim::rng::SeedFactory;
use das_store::config::{ClusterConfig, FaultProfile, OverloadProfile, SimulationConfig};
use das_store::engine::{run_simulation, KeyRead, RunResult, StoreRequest};
use das_trace::TraceConfig;
use das_workload::generator::{RequestSpec, WorkloadSpec};
use das_workload::keyspace::KeySpace;

/// One generated chaos configuration, closed under shrinking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCase {
    /// Case label (search index, mutation lineage).
    pub name: String,
    /// Master seed of the simulated run (engine, network, key sizes).
    pub seed: u64,
    /// Simulated run length, seconds.
    pub horizon_secs: f64,
    /// Warmup excluded from statistics, seconds.
    pub warmup_secs: f64,
    /// The cluster under test (including gray-failure perf events).
    pub cluster: ClusterConfig,
    /// The workload spec the trace was materialized from; key *sizes* are
    /// resolved from a key space rebuilt with this spec and [`Self::seed`],
    /// exactly as `das_core::ExperimentConfig::run_trace` resolves them.
    pub workload: WorkloadSpec,
    /// Crash windows, link faults, and the recovery policy.
    pub faults: FaultProfile,
    /// Admission, backpressure, and batching knobs.
    pub overload: OverloadProfile,
    /// The materialized request trace both policies replay.
    pub trace: Vec<RequestSpec>,
}

/// The paired run every oracle sees: FCFS and DAS over the same trace.
#[derive(Debug)]
pub struct PairedRun {
    /// The FCFS baseline run.
    pub fcfs: RunResult,
    /// The DAS run.
    pub das: RunResult,
}

impl PairedRun {
    /// DAS mean RCT over FCFS mean RCT, when both are measurable.
    /// Above 1.0 means DAS *lost* the pairing.
    pub fn ratio(&self) -> Option<f64> {
        let (f, d) = (self.fcfs.mean_rct(), self.das.mean_rct());
        (self.fcfs.measured > 0 && self.das.measured > 0 && f > 0.0).then(|| d / f)
    }
}

impl ChaosCase {
    /// The per-policy simulation config. Tracing is always on: every
    /// oracle reads the event log, and tracing is non-perturbing by
    /// construction (bit-identical results with it off).
    pub fn sim_config(&self, policy: PolicyKind) -> SimulationConfig {
        SimulationConfig {
            cluster: self.cluster.clone(),
            policy,
            seed: self.seed,
            horizon_secs: self.horizon_secs,
            warmup_secs: self.warmup_secs,
            rct_timeseries_bin_secs: None,
            faults: self.faults.clone(),
            overload: self.overload,
            trace: TraceConfig::enabled(),
        }
    }

    /// Validates the case: config invariants plus trace well-formedness.
    pub fn validate(&self) -> Result<(), String> {
        self.sim_config(PolicyKind::Fcfs)
            .validate()
            .map_err(|e| e.to_string())?;
        das_workload::trace::validate_trace(&self.trace).map_err(|e| e.to_string())
    }

    /// Resolves the pinned trace into store requests, byte-compatible with
    /// `das_core::adapter::trace_to_requests` (same key space, same pinned
    /// `(arrival, id)` injection order) — the equivalence the core crate's
    /// tests pin, so a committed reproducer replays to the same verdict
    /// through `das_experiment replay`.
    pub fn requests(&self) -> Vec<StoreRequest> {
        let seeds = SeedFactory::new(self.seed);
        let spec = &self.workload;
        let ks = KeySpace::with_hot_key_cap(
            spec.n_keys,
            &spec.sizes,
            &spec.popularity,
            spec.hot_key_size_cap,
            &seeds,
        );
        let mut ordered: Vec<&RequestSpec> = self.trace.iter().collect();
        ordered.sort_by_key(|r| (r.arrival, r.id));
        ordered
            .iter()
            .map(|r| StoreRequest {
                id: r.id,
                arrival: r.arrival,
                reads: r
                    .keys
                    .iter()
                    .map(|&key| KeyRead {
                        key,
                        bytes: ks.size_of(key),
                        write: r.write_keys.contains(&key),
                    })
                    .collect(),
            })
            .collect()
    }

    /// Runs one policy over the pinned trace.
    pub fn run_policy(&self, policy: PolicyKind) -> Result<RunResult, String> {
        run_simulation(&self.sim_config(policy), self.requests())
    }

    /// Runs the FCFS/DAS pair over the identical request stream.
    pub fn run_paired(&self) -> Result<PairedRun, String> {
        Ok(PairedRun {
            fcfs: self.run_policy(PolicyKind::Fcfs)?,
            das: self.run_policy(PolicyKind::das())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    #[test]
    fn paired_runs_share_the_request_stream() {
        let space = SearchSpace::default();
        let case = space.generate(&SeedFactory::new(7), 0).unwrap();
        assert!(case.validate().is_ok());
        let p = case.run_paired().unwrap();
        // Same offered requests on both sides of the pair.
        assert_eq!(p.fcfs.recovery.offered(), p.das.recovery.offered());
        assert!(p.fcfs.completed > 0);
        assert!(p.ratio().unwrap() > 0.0);
    }

    #[test]
    fn case_serde_roundtrip() {
        let space = SearchSpace::default();
        let case = space.generate(&SeedFactory::new(9), 3).unwrap();
        let json = serde_json::to_string(&case).unwrap();
        let back: ChaosCase = serde_json::from_str(&json).unwrap();
        assert_eq!(case, back);
    }

    #[test]
    fn runs_are_deterministic() {
        let space = SearchSpace::default();
        let case = space.generate(&SeedFactory::new(11), 1).unwrap();
        let a = case.run_paired().unwrap();
        let b = case.run_paired().unwrap();
        assert_eq!(a.fcfs.mean_rct().to_bits(), b.fcfs.mean_rct().to_bits());
        assert_eq!(a.das.events_processed, b.das.events_processed);
    }
}
