//! The budgeted chaos-search loop.
//!
//! Each iteration either generates a fresh case from the [`SearchSpace`]
//! or mutates a pooled *interesting* case (one that violated an oracle, or
//! came close to a DAS-vs-FCFS inversion), with mutations biased toward
//! dropping fault edges just before the parent run's `SchedDecision`
//! instants — the moments where a stale estimate hurts the scheduler most.
//! Every violation is delta-debug shrunk to a minimal reproducer before it
//! is reported. All randomness flows through `stream("chaos-search", i)`,
//! so a `(seed, budget)` pair maps to one exact report.

use std::collections::BTreeMap;

use rand::RngCore;

use das_sim::rng::{open_unit, SeedFactory};
use das_trace::event::TraceEvent;

use crate::case::ChaosCase;
use crate::oracle::{evaluate, OracleConfig, Violation};
use crate::report::{ChaosReport, FindingSummary, InversionSummary};
use crate::shrink::{shrink, size_metric, ShrinkStep};
use crate::space::SearchSpace;

/// Everything one chaos search needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: same seed + same config = byte-identical report.
    pub seed: u64,
    /// Number of cases to generate and run.
    pub budget: u64,
    /// The space cases are drawn from.
    pub space: SearchSpace,
    /// Which oracles run, and their thresholds.
    pub oracles: OracleConfig,
    /// Whether violations are shrunk (off = raw cases in findings).
    pub shrink: bool,
    /// Predicate-evaluation budget per shrink run (each evaluation is one
    /// paired simulation).
    pub shrink_budget: u64,
    /// Stop collecting findings after this many (the search still runs its
    /// full budget so oracle hit counts stay comparable across configs).
    pub max_findings: usize,
    /// Fraction of iterations that mutate a pooled case instead of
    /// generating a fresh one (when the pool is non-empty).
    pub mutation_fraction: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            budget: 100,
            space: SearchSpace::default(),
            oracles: OracleConfig::default(),
            shrink: true,
            shrink_budget: 150,
            max_findings: 8,
            mutation_fraction: 0.5,
        }
    }
}

/// One shrunk finding with its full minimized case (the CLI writes it out
/// as a replayable reproducer).
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable slug, `case{index:04}_{oracle}` with `-` mapped to `_`.
    pub slug: String,
    /// The search iteration that found it.
    pub case_index: u64,
    /// The violation as re-evaluated on the minimized case.
    pub violation: Violation,
    /// Case size before shrinking.
    pub size_before: u64,
    /// Case size after shrinking.
    pub size_after: u64,
    /// Predicate evaluations the shrinker spent.
    pub shrink_evals: u64,
    /// Accepted shrink steps, for the audit trail.
    pub steps: Vec<ShrinkStep>,
    /// The minimized case.
    pub case: ChaosCase,
}

/// The search result: the byte-stable report plus the full findings.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Deterministic summary (what the CLI serializes and CI byte-diffs).
    pub report: ChaosReport,
    /// Findings with their minimized cases.
    pub findings: Vec<Finding>,
}

/// Up to 64 `SchedDecision` instants (seconds) from a run's event log,
/// evenly strided so long runs don't bias mutations toward the warmup.
fn decision_instants(log: Option<&das_trace::TraceLog>) -> Vec<f64> {
    let Some(log) = log else {
        return Vec::new();
    };
    let all: Vec<f64> = log
        .events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::SchedDecision { t_ns, .. } => Some(*t_ns as f64 * 1e-9),
            _ => None,
        })
        .collect();
    let stride = (all.len() / 64).max(1);
    all.iter().step_by(stride).copied().take(64).collect()
}

/// Runs the search to completion. Errors only on a harness bug (a
/// generated case failing validation or the engine rejecting a run).
pub fn search(cfg: &ChaosConfig) -> Result<SearchOutcome, String> {
    let seeds = SeedFactory::new(cfg.seed);
    let mut oracle_hits: BTreeMap<String, u64> = BTreeMap::new();
    let mut worst_inversion: Option<InversionSummary> = None;
    let mut findings: Vec<Finding> = Vec::new();
    let mut sim_runs: u64 = 0;
    // Interesting parents for mutation: the case plus its DAS decision
    // instants. Bounded ring, replacement by search-stream draw.
    let mut pool: Vec<(ChaosCase, Vec<f64>)> = Vec::new();
    const POOL_CAP: usize = 32;

    for i in 0..cfg.budget {
        let mut rng = seeds.stream("chaos-search", i);
        let mutate = !pool.is_empty() && open_unit(&mut rng) <= cfg.mutation_fraction;
        let case = if mutate {
            let idx = (rng.next_u64() % pool.len() as u64) as usize;
            let (parent, decisions) = &pool[idx];
            let mut m = cfg.space.mutate(parent, &mut rng, decisions);
            m.name = format!("case{i:04}");
            m
        } else {
            cfg.space.generate(&seeds, i)?
        };

        let paired = case.run_paired()?;
        sim_runs += 2;
        let violations = evaluate(&case, &paired, &cfg.oracles);
        for v in &violations {
            *oracle_hits.entry(v.oracle.clone()).or_insert(0) += 1;
        }

        if let Some(ratio) = paired.ratio() {
            let beats = worst_inversion
                .as_ref()
                .is_none_or(|w| ratio > w.ratio);
            if beats {
                worst_inversion = Some(InversionSummary {
                    case_index: i,
                    ratio,
                    fcfs_mean_ms: paired.fcfs.mean_rct() * 1e3,
                    das_mean_ms: paired.das.mean_rct() * 1e3,
                });
            }
        }

        let near_inversion = paired.ratio().is_some_and(|r| r > 0.9);
        if !violations.is_empty() || near_inversion {
            let decisions = decision_instants(paired.das.trace.as_ref());
            if pool.len() < POOL_CAP {
                pool.push((case.clone(), decisions));
            } else {
                let idx = (rng.next_u64() % POOL_CAP as u64) as usize;
                pool[idx] = (case.clone(), decisions);
            }
        }

        if let Some(v) = violations.first() {
            if findings.len() < cfg.max_findings {
                findings.push(minimize(cfg, i, &case, v, &mut sim_runs)?);
            }
        }
    }

    let report = ChaosReport {
        seed: cfg.seed,
        budget: cfg.budget,
        cases_run: cfg.budget,
        sim_runs,
        oracle_hits,
        worst_inversion,
        findings: findings
            .iter()
            .map(|f| FindingSummary {
                slug: f.slug.clone(),
                case_index: f.case_index,
                oracle: f.violation.oracle.clone(),
                policy: f.violation.policy.clone(),
                detail: f.violation.detail.clone(),
                measure: f.violation.measure,
                size_before: f.size_before,
                size_after: f.size_after,
                shrink_evals: f.shrink_evals,
            })
            .collect(),
    };
    Ok(SearchOutcome { report, findings })
}

/// Re-runs `case` and returns the violation matching `oracle`, if the case
/// still produces one.
fn reproduce(case: &ChaosCase, oracles: &OracleConfig, oracle: &str) -> Option<Violation> {
    let paired = case.run_paired().ok()?;
    evaluate(case, &paired, oracles)
        .into_iter()
        .find(|v| v.oracle == oracle)
}

fn minimize(
    cfg: &ChaosConfig,
    case_index: u64,
    case: &ChaosCase,
    violation: &Violation,
    sim_runs: &mut u64,
) -> Result<Finding, String> {
    let size_before = size_metric(case);
    let slug = format!("case{case_index:04}_{}", violation.oracle.replace('-', "_"));
    if !cfg.shrink {
        return Ok(Finding {
            slug,
            case_index,
            violation: violation.clone(),
            size_before,
            size_after: size_before,
            shrink_evals: 0,
            steps: Vec::new(),
            case: case.clone(),
        });
    }
    let oracle = violation.oracle.clone();
    let oracles = cfg.oracles.clone();
    let mut evals_sims = 0u64;
    let outcome = shrink(
        case,
        &mut |candidate| {
            evals_sims += 2;
            reproduce(candidate, &oracles, &oracle).is_some()
        },
        cfg.shrink_budget,
    );
    *sim_runs += evals_sims;
    // Re-evaluate on the minimized case so the reported detail/measure
    // describe the artifact that ships, not its ancestor. One more paired
    // run; the shrink predicate guarantees it still fires.
    *sim_runs += 2;
    let final_violation = reproduce(&outcome.case, &oracles, &oracle)
        .ok_or_else(|| format!("shrunk case for {slug} no longer reproduces its violation"))?;
    Ok(Finding {
        slug,
        case_index,
        violation: final_violation,
        size_before,
        size_after: size_metric(&outcome.case),
        shrink_evals: outcome.evaluations,
        steps: outcome.steps,
        case: outcome.case,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_deterministic() {
        let cfg = ChaosConfig {
            seed: 5,
            budget: 6,
            shrink_budget: 20,
            ..ChaosConfig::default()
        };
        let a = search(&cfg).unwrap();
        let b = search(&cfg).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.report.cases_run, 6);
        assert!(a.report.sim_runs >= 12);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let mk = |seed| ChaosConfig {
            seed,
            budget: 4,
            shrink: false,
            ..ChaosConfig::default()
        };
        let a = search(&mk(1)).unwrap();
        let b = search(&mk(2)).unwrap();
        assert_ne!(
            (a.report.worst_inversion.clone(), a.report.oracle_hits.clone()),
            (b.report.worst_inversion.clone(), b.report.oracle_hits.clone())
        );
    }

    #[test]
    fn findings_reproduce_after_shrinking() {
        // Lower the regression bar so a small budget reliably finds
        // something, then check the minimized case still fails the same
        // oracle when replayed from scratch.
        let cfg = ChaosConfig {
            seed: 11,
            budget: 8,
            oracles: OracleConfig {
                das_regression_ratio: 1.0,
                ..OracleConfig::default()
            },
            shrink_budget: 30,
            max_findings: 2,
            ..ChaosConfig::default()
        };
        let out = search(&cfg).unwrap();
        for f in &out.findings {
            assert!(f.size_after <= f.size_before);
            let v = reproduce(&f.case, &cfg.oracles, &f.violation.oracle);
            assert!(v.is_some(), "{} does not reproduce", f.slug);
        }
    }

    #[test]
    fn decision_instants_are_bounded() {
        let mut rng = SeedFactory::new(1).stream("t", 0);
        let events = (0..1000)
            .map(|i| TraceEvent::SchedDecision {
                t_ns: i * 1_000_000 + (rng.next_u64() % 1000),
                request: i,
                op: 0,
                server: 0,
                rule: "min-rank".into(),
                position: 0,
                queue_len: 1,
            })
            .collect();
        let log = das_trace::TraceLog {
            sample: 1.0,
            dropped: 0,
            events,
        };
        let d = decision_instants(Some(&log));
        assert!(d.len() <= 64 && !d.is_empty());
    }
}
