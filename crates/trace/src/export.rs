//! Exporters: JSONL and Chrome `trace_event` JSON (Perfetto-loadable).

use std::collections::BTreeSet;
use std::io::{self, Write};

use serde::Value;

use crate::event::{DispatchKind, TraceEvent};
use crate::recorder::TraceLog;
use crate::telemetry::Telemetry;

/// Writes the log as JSON Lines: one [`TraceEvent`] object per line, in
/// simulation-time order.
pub fn write_jsonl<W: Write>(log: &TraceLog, mut w: W) -> io::Result<()> {
    for ev in &log.events {
        let line = serde_json::to_string(ev).map_err(io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads a JSON Lines event log back into a [`TraceLog`].
///
/// The inverse of [`write_jsonl`]: one [`TraceEvent`] per non-blank line.
/// Parse failures map to [`io::ErrorKind::InvalidData`] with the 1-based
/// line number attached; I/O errors keep their kind and also gain the line
/// number. JSONL carries events only, so the reconstructed log reports
/// `sample = 1.0` and `dropped = 0` — of what the file holds, nothing was
/// discarded.
pub fn read_jsonl<R: io::Read>(r: R) -> io::Result<TraceLog> {
    use std::io::BufRead;
    let mut events = Vec::new();
    for (i, line) in io::BufReader::new(r).lines().enumerate() {
        let line =
            line.map_err(|e| io::Error::new(e.kind(), format!("trace line {}: {e}", i + 1)))?;
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceEvent = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {e}", i + 1),
            )
        })?;
        events.push(ev);
    }
    Ok(TraceLog {
        sample: 1.0,
        dropped: 0,
        events,
    })
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn us(t_ns: u64) -> Value {
    Value::F64(t_ns as f64 / 1000.0)
}

/// Greedily packs half-open spans `(start, end)` into lanes; returns one
/// lane index per span (input order preserved). Spans must be sorted by
/// `start`.
fn assign_lanes(spans: &[(u64, u64)]) -> Vec<usize> {
    let mut lane_ends: Vec<u64> = Vec::new();
    spans
        .iter()
        .map(|&(start, end)| {
            if let Some(i) = lane_ends.iter().position(|&e| e <= start) {
                lane_ends[i] = end;
                i
            } else {
                lane_ends.push(end);
                lane_ends.len() - 1
            }
        })
        .collect()
}

/// Builds a Chrome `trace_event` document from the log.
///
/// Layout: pid 0 holds one lane-packed `X` span per traced request plus
/// coordinator-side instants (timeouts, retries, hedges, aborts, crash
/// drops); pid `server + 1` holds that server's lane-packed service spans,
/// its scheduler-decision and hint-arrival instants, and a `queue_len`
/// counter track. Load the result in Perfetto or `chrome://tracing`.
pub fn chrome_trace(log: &TraceLog) -> Value {
    chrome_trace_with_telemetry(log, None)
}

/// [`chrome_trace`], optionally interleaving per-server `"C"` counter
/// tracks from folded [`Telemetry`]: one sample per epoch per server for
/// busy occupancy (percent of worker capacity), outstanding bottleneck
/// demand (ms), end-of-epoch queue depth, and the per-epoch
/// reorder/shed/retry/hedge/batch rates — so load and the scheduling
/// decisions it provoked sit on one Perfetto timeline.
pub fn chrome_trace_with_telemetry(log: &TraceLog, telemetry: Option<&Telemetry>) -> Value {
    let mut out: Vec<Value> = Vec::new();

    // Process metadata.
    let mut servers: BTreeSet<u32> = BTreeSet::new();
    for ev in &log.events {
        match *ev {
            TraceEvent::OpEnqueue { server, .. }
            | TraceEvent::SchedDecision { server, .. }
            | TraceEvent::ServiceEnd { server, .. }
            | TraceEvent::ServerCrash { server, .. }
            | TraceEvent::ServerRecover { server, .. }
            | TraceEvent::Batched { server, .. }
            | TraceEvent::HintArrive { server, .. }
            | TraceEvent::QueueSample { server, .. } => {
                servers.insert(server);
            }
            _ => {}
        }
    }
    let meta = |pid: u64, name: String| {
        obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(pid)),
            ("tid", Value::U64(0)),
            ("args", obj(vec![("name", Value::Str(name))])),
        ])
    };
    out.push(meta(0, "requests".into()));
    for &s in &servers {
        out.push(meta(s as u64 + 1, format!("server {s}")));
    }

    // Request spans (arrival -> terminal), lane-packed on pid 0.
    let mut requests: Vec<(u64, u64, u64, &'static str)> = Vec::new(); // (req, start, end, suffix)
    {
        use std::collections::BTreeMap;
        let mut arrivals: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in &log.events {
            match *ev {
                TraceEvent::RequestArrive { t_ns, request, .. } => {
                    arrivals.insert(request, t_ns);
                }
                TraceEvent::RequestComplete { t_ns, request, .. } => {
                    if let Some(a) = arrivals.remove(&request) {
                        requests.push((request, a, t_ns, ""));
                    }
                }
                TraceEvent::RequestAbort { t_ns, request } => {
                    if let Some(a) = arrivals.remove(&request) {
                        requests.push((request, a, t_ns, " (aborted)"));
                    }
                }
                TraceEvent::Shed { t_ns, request, .. } => {
                    if let Some(a) = arrivals.remove(&request) {
                        requests.push((request, a, t_ns, " (shed)"));
                    }
                }
                _ => {}
            }
        }
    }
    requests.sort_by_key(|&(_, start, _, _)| start);
    let spans: Vec<(u64, u64)> = requests.iter().map(|&(_, s, e, _)| (s, e)).collect();
    for (&(req, start, end, suffix), lane) in requests.iter().zip(assign_lanes(&spans)) {
        out.push(obj(vec![
            ("name", Value::Str(format!("request {req}{suffix}"))),
            ("cat", Value::Str("request".into())),
            ("ph", Value::Str("X".into())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(lane as u64 + 1)),
            ("ts", us(start)),
            ("dur", us(end - start)),
            ("args", obj(vec![("request", Value::U64(req))])),
        ]));
    }

    // Per-server service spans, lane-packed per server.
    for &server in &servers {
        let mut spans: Vec<(u64, u64, u64, u32)> = Vec::new(); // (start, end, req, op)
        for ev in &log.events {
            if let TraceEvent::ServiceEnd {
                t_ns,
                request,
                op,
                server: s,
                service_ns,
            } = *ev
            {
                if s == server {
                    spans.push((t_ns.saturating_sub(service_ns), t_ns, request, op));
                }
            }
        }
        spans.sort_by_key(|&(start, ..)| start);
        let bare: Vec<(u64, u64)> = spans.iter().map(|&(s, e, ..)| (s, e)).collect();
        for (&(start, end, req, op), lane) in spans.iter().zip(assign_lanes(&bare)) {
            out.push(obj(vec![
                ("name", Value::Str(format!("r{req}.{op}"))),
                ("cat", Value::Str("service".into())),
                ("ph", Value::Str("X".into())),
                ("pid", Value::U64(server as u64 + 1)),
                ("tid", Value::U64(lane as u64 + 1)),
                ("ts", us(start)),
                ("dur", us(end - start)),
                (
                    "args",
                    obj(vec![
                        ("request", Value::U64(req)),
                        ("op", Value::U64(op as u64)),
                    ]),
                ),
            ]));
        }
    }

    // Instants and counters.
    let instant = |name: String, pid: u64, t_ns: u64, args: Value| {
        obj(vec![
            ("name", Value::Str(name)),
            ("ph", Value::Str("i".into())),
            ("s", Value::Str("t".into())),
            ("pid", Value::U64(pid)),
            ("tid", Value::U64(0)),
            ("ts", us(t_ns)),
            ("args", args),
        ])
    };
    for ev in &log.events {
        match *ev {
            TraceEvent::SchedDecision {
                t_ns,
                request,
                op,
                server,
                ref rule,
                position,
                queue_len,
            } => out.push(instant(
                format!("dequeue {rule}"),
                server as u64 + 1,
                t_ns,
                obj(vec![
                    ("request", Value::U64(request)),
                    ("op", Value::U64(op as u64)),
                    ("position", Value::U64(position as u64)),
                    ("queue_len", Value::U64(queue_len as u64)),
                ]),
            )),
            TraceEvent::OpDispatch {
                t_ns,
                request,
                op,
                server,
                kind,
                attempt,
                ..
            } if kind != DispatchKind::First => out.push(instant(
                format!("{} r{request}.{op}", kind.as_str()),
                0,
                t_ns,
                obj(vec![
                    ("server", Value::U64(server as u64)),
                    ("attempt", Value::U64(attempt as u64)),
                ]),
            )),
            TraceEvent::OpTimeout {
                t_ns,
                request,
                op,
                attempt,
            } => out.push(instant(
                format!("timeout r{request}.{op}"),
                0,
                t_ns,
                obj(vec![("attempt", Value::U64(attempt as u64))]),
            )),
            TraceEvent::CrashDrop {
                t_ns,
                request,
                op,
                server,
            } => out.push(instant(
                format!("crash-drop r{request}.{op}"),
                0,
                t_ns,
                obj(vec![("server", Value::U64(server as u64))]),
            )),
            TraceEvent::Admitted {
                t_ns,
                request,
                slack_ns,
            } => out.push(instant(
                format!("admit r{request}"),
                0,
                t_ns,
                obj(vec![("slack_ms", Value::F64(slack_ns as f64 / 1e6))]),
            )),
            TraceEvent::Shed {
                t_ns,
                request,
                reason,
                server,
            } => out.push(instant(
                format!("shed {} r{request}", reason.as_str()),
                0,
                t_ns,
                obj(vec![("server", Value::U64(server as u64))]),
            )),
            TraceEvent::Batched {
                t_ns,
                request,
                op,
                server,
                size,
            } => out.push(instant(
                format!("batch r{request}.{op}"),
                server as u64 + 1,
                t_ns,
                obj(vec![("size", Value::U64(size as u64))]),
            )),
            TraceEvent::HintArrive {
                t_ns,
                request,
                server,
                eta_ns,
                remaining_ns,
            } => out.push(instant(
                format!("hint r{request}"),
                server as u64 + 1,
                t_ns,
                obj(vec![
                    ("eta_ms", Value::F64(eta_ns as f64 / 1e6)),
                    ("remaining_ms", Value::F64(remaining_ns as f64 / 1e6)),
                ]),
            )),
            TraceEvent::ServerCrash { t_ns, server } => out.push(instant(
                "crash".into(),
                server as u64 + 1,
                t_ns,
                obj(vec![]),
            )),
            TraceEvent::ServerRecover { t_ns, server } => out.push(instant(
                "recover".into(),
                server as u64 + 1,
                t_ns,
                obj(vec![]),
            )),
            TraceEvent::QueueSample {
                t_ns,
                server,
                queue_len,
                backlog_ns,
            } => out.push(obj(vec![
                ("name", Value::Str("queue".into())),
                ("ph", Value::Str("C".into())),
                ("pid", Value::U64(server as u64 + 1)),
                ("ts", us(t_ns)),
                (
                    "args",
                    obj(vec![
                        ("len", Value::U64(queue_len as u64)),
                        ("backlog_ms", Value::F64(backlog_ns as f64 / 1e6)),
                    ]),
                ),
            ])),
            _ => {}
        }
    }

    // Telemetry counter tracks: one sample per server per epoch, stamped
    // at the epoch's start so the value covers the whole bucket.
    if let Some(t) = telemetry {
        let counter = |name: &str, pid: u64, t_ns: u64, args: Value| {
            obj(vec![
                ("name", Value::Str(name.into())),
                ("ph", Value::Str("C".into())),
                ("pid", Value::U64(pid)),
                ("ts", us(t_ns)),
                ("args", args),
            ])
        };
        let capacity = (u64::from(t.workers) * t.epoch_ns) as f64;
        for series in t.servers.values() {
            let pid = series.server as u64 + 1;
            for e in 0..t.epochs {
                let t_ns = e as u64 * t.epoch_ns;
                out.push(counter(
                    "tm busy %",
                    pid,
                    t_ns,
                    obj(vec![(
                        "busy",
                        Value::F64(series.busy_ns[e] as f64 * 100.0 / capacity),
                    )]),
                ));
                out.push(counter(
                    "tm demand ms",
                    pid,
                    t_ns,
                    obj(vec![(
                        "demand",
                        Value::F64(series.demand_ns[e] as f64 / 1e6),
                    )]),
                ));
                out.push(counter(
                    "tm depth",
                    pid,
                    t_ns,
                    obj(vec![("len", Value::U64(series.queue_len[e] as u64))]),
                ));
                out.push(counter(
                    "tm rates",
                    pid,
                    t_ns,
                    obj(vec![
                        ("reorders", Value::U64(series.reorders[e] as u64)),
                        ("sheds", Value::U64(series.sheds[e] as u64)),
                        ("retries", Value::U64(series.retries[e] as u64)),
                        ("hedges", Value::U64(series.hedges[e] as u64)),
                        ("batched", Value::U64(series.batched_ops[e] as u64)),
                        ("hints", Value::U64(series.hints[e] as u64)),
                    ]),
                ));
            }
        }
    }

    obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Serializes [`chrome_trace`] to a writer.
pub fn write_chrome<W: Write>(log: &TraceLog, mut w: W) -> io::Result<()> {
    let doc = serde_json::to_string(&chrome_trace(log)).map_err(io::Error::other)?;
    w.write_all(doc.as_bytes())
}

/// Serializes [`chrome_trace_with_telemetry`] to a writer.
pub fn write_chrome_with_telemetry<W: Write>(
    log: &TraceLog,
    telemetry: &Telemetry,
    mut w: W,
) -> io::Result<()> {
    let doc = serde_json::to_string(&chrome_trace_with_telemetry(log, Some(telemetry)))
        .map_err(io::Error::other)?;
    w.write_all(doc.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_log() -> TraceLog {
        TraceLog {
            sample: 1.0,
            dropped: 0,
            events: vec![
                TraceEvent::RequestArrive {
                    t_ns: 0,
                    request: 1,
                    keys: 1,
                    fanout: 1,
                },
                TraceEvent::OpDispatch {
                    t_ns: 0,
                    request: 1,
                    op: 0,
                    server: 0,
                    attempt: 0,
                    kind: DispatchKind::First,
                    est_ns: 100,
                    bytes: 64,
                },
                TraceEvent::OpEnqueue {
                    t_ns: 50,
                    request: 1,
                    op: 0,
                    server: 0,
                    queue_len: 1,
                },
                TraceEvent::QueueSample {
                    t_ns: 50,
                    server: 0,
                    queue_len: 1,
                    backlog_ns: 100,
                },
                TraceEvent::SchedDecision {
                    t_ns: 60,
                    request: 1,
                    op: 0,
                    server: 0,
                    rule: "policy-order".into(),
                    position: 0,
                    queue_len: 1,
                },
                TraceEvent::ServiceEnd {
                    t_ns: 160,
                    request: 1,
                    op: 0,
                    server: 0,
                    service_ns: 100,
                },
                TraceEvent::OpResponse {
                    t_ns: 200,
                    request: 1,
                    op: 0,
                    server: 0,
                    accepted: true,
                },
                TraceEvent::RequestComplete {
                    t_ns: 200,
                    request: 1,
                    rct_ns: 200,
                },
            ],
        }
    }

    #[test]
    fn jsonl_is_one_event_per_line() {
        let mut buf = Vec::new();
        write_jsonl(&tiny_log(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), tiny_log().events.len());
        for line in lines {
            let _: TraceEvent = serde_json::from_str(line).unwrap();
        }
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let doc = chrome_trace(&tiny_log());
        let json = serde_json::to_string(&doc).unwrap();
        // Parses back and has the container key the viewers expect.
        let back: Value = serde_json::from_str(&json).unwrap();
        match &back {
            Value::Object(fields) => {
                let events = fields
                    .iter()
                    .find(|(k, _)| k == "traceEvents")
                    .map(|(_, v)| v)
                    .unwrap();
                match events {
                    Value::Array(items) => {
                        // Metadata + request span + service span + counter +
                        // decision instant at minimum.
                        assert!(items.len() >= 5, "only {} events", items.len());
                    }
                    other => panic!("traceEvents is {other:?}"),
                }
            }
            other => panic!("root is {other:?}"),
        }
    }

    #[test]
    fn jsonl_roundtrips_through_read() {
        let log = tiny_log();
        let mut buf = Vec::new();
        write_jsonl(&log, &mut buf).unwrap();
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(back.events, log.events);
        assert_eq!(back.sample, 1.0);
        assert_eq!(back.dropped, 0);
    }

    #[test]
    fn read_jsonl_skips_blank_lines_and_flags_bad_ones() {
        let mut buf = Vec::new();
        write_jsonl(&tiny_log(), &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n'); // trailing blank line is fine
        assert_eq!(
            read_jsonl(text.as_bytes()).unwrap().events.len(),
            tiny_log().events.len()
        );

        text.push_str("{not json}\n");
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let n = tiny_log().events.len() + 2; // + blank line + bad line
        assert!(
            err.to_string().contains(&format!("trace line {n}")),
            "{err}"
        );
    }

    #[test]
    fn read_jsonl_keeps_io_error_kind_and_line() {
        struct FailAfterFirstLine {
            sent: bool,
        }
        impl io::Read for FailAfterFirstLine {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.sent {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "link died"));
                }
                self.sent = true;
                let line = b"{\"ev\":\"request_arrive\",\"t_ns\":0,\"request\":1,\"keys\":1,\"fanout\":1}\n";
                buf[..line.len()].copy_from_slice(line);
                Ok(line.len())
            }
        }
        let err = read_jsonl(FailAfterFirstLine { sent: false }).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("trace line 2"), "{err}");
    }

    #[test]
    fn overload_events_render_in_chrome_trace() {
        use crate::event::ShedReason;
        let log = TraceLog {
            sample: 1.0,
            dropped: 0,
            events: vec![
                TraceEvent::RequestArrive {
                    t_ns: 0,
                    request: 1,
                    keys: 1,
                    fanout: 1,
                },
                TraceEvent::Admitted {
                    t_ns: 0,
                    request: 1,
                    slack_ns: 2_000_000,
                },
                TraceEvent::Batched {
                    t_ns: 40,
                    request: 1,
                    op: 0,
                    server: 3,
                    size: 2,
                },
                TraceEvent::RequestArrive {
                    t_ns: 10,
                    request: 2,
                    keys: 1,
                    fanout: 1,
                },
                TraceEvent::Shed {
                    t_ns: 10,
                    request: 2,
                    reason: ShedReason::Admission,
                    server: 3,
                },
            ],
        };
        let json = serde_json::to_string(&chrome_trace(&log)).unwrap();
        // The shed request closes its span with a "(shed)" marker, and all
        // three overload instants appear (batch on the server's track).
        assert!(json.contains("request 2 (shed)"), "{json}");
        assert!(json.contains("admit r1"), "{json}");
        assert!(json.contains("shed admission r2"), "{json}");
        assert!(json.contains("batch r1.0"), "{json}");
        assert!(json.contains("server 3"), "{json}");
    }

    #[test]
    fn hint_instants_render_on_the_server_track() {
        let log = TraceLog {
            sample: 1.0,
            dropped: 0,
            events: vec![TraceEvent::HintArrive {
                t_ns: 500,
                request: 4,
                server: 2,
                eta_ns: 2_000_000,
                remaining_ns: 1_000_000,
            }],
        };
        let json = serde_json::to_string(&chrome_trace(&log)).unwrap();
        assert!(json.contains("hint r4"), "{json}");
        assert!(json.contains("server 2"), "{json}");
        assert!(json.contains("remaining_ms"), "{json}");
    }

    #[test]
    fn telemetry_counter_tracks_render_per_epoch() {
        use crate::telemetry::{fold, TelemetryConfig};
        let log = tiny_log();
        let t = fold(
            &log,
            &TelemetryConfig {
                epoch_ns: 100,
                workers: 1,
            },
        );
        let mut buf = Vec::new();
        write_chrome_with_telemetry(&log, &t, &mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        assert!(json.contains("tm busy %"), "{json}");
        assert!(json.contains("tm demand ms"), "{json}");
        assert!(json.contains("tm depth"), "{json}");
        assert!(json.contains("tm rates"), "{json}");
        // Without telemetry the counter tracks are absent and the document
        // is byte-identical to the plain export.
        let plain = serde_json::to_string(&chrome_trace(&log)).unwrap();
        assert!(!plain.contains("tm busy %"));
        assert_eq!(
            plain,
            serde_json::to_string(&chrome_trace_with_telemetry(&log, None)).unwrap()
        );
    }

    #[test]
    fn lane_packing_reuses_free_lanes() {
        // Two disjoint spans share a lane; an overlapping one gets lane 1.
        let lanes = assign_lanes(&[(0, 10), (5, 15), (20, 30)]);
        assert_eq!(lanes, vec![0, 1, 0]);
    }

    #[test]
    fn write_chrome_produces_bytes() {
        let mut buf = Vec::new();
        write_chrome(&tiny_log(), &mut buf).unwrap();
        assert!(buf.starts_with(b"{\"traceEvents\":["));
    }
}
