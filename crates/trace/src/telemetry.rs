//! Streaming per-server telemetry: a deterministic fold of the raw
//! [`TraceEvent`] stream into epoch-bucketed, integer-nanosecond time
//! series.
//!
//! [`fold`] walks a [`TraceLog`] once, in recorded (simulation-time)
//! order, and produces one [`ServerSeries`] per server that appears in
//! the log. Per epoch of [`TelemetryConfig::epoch_ns`] it accounts:
//!
//! * **busy occupancy** — exact integer overlap of every realized service
//!   span (`[t_ns − service_ns, t_ns)` from [`TraceEvent::ServiceEnd`])
//!   with the epoch. Batch-follower slices are booked over disjoint
//!   intervals by the engine, so summing spans never double-bills a
//!   worker. Idle is defined as the complement
//!   (`workers · epoch_ns − busy`), which gives the conservation law
//!   checked by the proptests: per server,
//!   `Σ busy + Σ idle == workers · horizon_ns` exactly.
//! * **queue depth** — the last queue length the server reported inside
//!   the epoch ([`TraceEvent::OpEnqueue`] is post-enqueue,
//!   [`TraceEvent::SchedDecision`] is pre-removal so depth drops by one,
//!   [`TraceEvent::QueueSample`] is authoritative), forward-filled across
//!   event-free epochs.
//! * **outstanding bottleneck demand** — a gauge of the summed
//!   coordinator service estimates (`est_ns` of the latest
//!   [`TraceEvent::OpDispatch`]) of every op currently sitting in the
//!   server's queue: raised on enqueue, released when the op starts
//!   service (scheduler decision or batch-follower pull) or dies in a
//!   crash. On a clean fully-sampled run the gauge returns exactly to
//!   zero.
//! * **rates** — enqueues, completions, dequeue reorders (scheduler
//!   decisions with arrival-order `position > 0`, i.e. rank inversions),
//!   sheds, retry and hedge dispatches, batch-coalesced ops, and hint
//!   arrivals. At `sample = 1.0` the epoch counts sum exactly to the
//!   matching `RecoveryStats` totals (proptest-enforced).
//!
//! Everything here is pure integer arithmetic on the recorded
//! nanosecond timestamps — no floats, no wall clocks, no hashing — so
//! the fold is bit-deterministic and `das-lint`'s accounting rules apply
//! to this file. Seconds-facing views live in [`crate::present`] /
//! the report layer.

use std::collections::BTreeMap;

use crate::event::{DispatchKind, TraceEvent};
use crate::recorder::TraceLog;

/// How to bucket the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Epoch (bucket) width, nanoseconds. Must be non-zero.
    pub epoch_ns: u64,
    /// Workers per server, for the idle complement. The conservation law
    /// `busy + idle == workers · horizon` only holds when this matches
    /// the simulated cluster.
    pub workers: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_ns: 10_000_000, // 10 ms
            workers: 1,
        }
    }
}

/// Epoch-bucketed series for one server. All vectors have length
/// [`Telemetry::epochs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerSeries {
    /// The server id.
    pub server: u32,
    /// Busy worker-nanoseconds per epoch (exact span overlap).
    pub busy_ns: Vec<u64>,
    /// Queue depth at the end of each epoch (last report, forward-filled).
    pub queue_len: Vec<u32>,
    /// Outstanding bottleneck demand (summed `est_ns` of queued ops) at
    /// the end of each epoch, forward-filled.
    pub demand_ns: Vec<u64>,
    /// Ops enqueued per epoch.
    pub enqueues: Vec<u32>,
    /// Ops whose service completed per epoch.
    pub completions: Vec<u32>,
    /// Scheduler decisions that reordered the queue (`position > 0`).
    pub reorders: Vec<u32>,
    /// Requests shed at (or blamed on) this server per epoch.
    pub sheds: Vec<u32>,
    /// Retry dispatches targeting this server per epoch.
    pub retries: Vec<u32>,
    /// Hedge dispatches targeting this server per epoch.
    pub hedges: Vec<u32>,
    /// Ops that started service inside a coalesced batch per epoch
    /// (leaders included, matching one `Batched` event per member).
    pub batched_ops: Vec<u32>,
    /// Coordinator progress hints that arrived per epoch.
    pub hints: Vec<u32>,
}

impl ServerSeries {
    fn new(server: u32, epochs: usize) -> Self {
        ServerSeries {
            server,
            busy_ns: vec![0; epochs],
            queue_len: vec![0; epochs],
            demand_ns: vec![0; epochs],
            enqueues: vec![0; epochs],
            completions: vec![0; epochs],
            reorders: vec![0; epochs],
            sheds: vec![0; epochs],
            retries: vec![0; epochs],
            hedges: vec![0; epochs],
            batched_ops: vec![0; epochs],
            hints: vec![0; epochs],
        }
    }

    /// Total busy worker-nanoseconds across all epochs.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Idle worker-nanoseconds in `epoch` under `cfg`: the complement
    /// `workers · epoch_ns − busy`. Saturates at zero if `cfg.workers`
    /// understates the real worker count (conservation then no longer
    /// holds — the caller passed the wrong cluster shape).
    pub fn idle_ns(&self, epoch: usize, cfg: &TelemetryConfig) -> u64 {
        let capacity = u64::from(cfg.workers) * cfg.epoch_ns;
        capacity.saturating_sub(self.busy_ns[epoch])
    }

    /// Total idle worker-nanoseconds across all epochs.
    pub fn total_idle_ns(&self, cfg: &TelemetryConfig) -> u64 {
        (0..self.busy_ns.len()).map(|e| self.idle_ns(e, cfg)).sum()
    }

    /// Largest queue depth observed at any epoch end.
    pub fn peak_queue_len(&self) -> u32 {
        self.queue_len.iter().copied().max().unwrap_or(0)
    }

    /// Largest end-of-epoch outstanding demand, nanoseconds.
    pub fn peak_demand_ns(&self) -> u64 {
        self.demand_ns.iter().copied().max().unwrap_or(0)
    }

    /// Sum of an integer counter series.
    pub fn total(counts: &[u32]) -> u64 {
        counts.iter().map(|&c| u64::from(c)).sum()
    }
}

/// The folded telemetry for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    /// Epoch width, nanoseconds.
    pub epoch_ns: u64,
    /// Number of epochs. The covered horizon is `epochs · epoch_ns` and
    /// always contains every event timestamp in the log.
    pub epochs: usize,
    /// Workers per server used for the idle complement.
    pub workers: u32,
    /// Per-server series, keyed by server id (deterministic order).
    pub servers: BTreeMap<u32, ServerSeries>,
}

impl Telemetry {
    /// The covered horizon, nanoseconds (`epochs · epoch_ns`).
    pub fn horizon_ns(&self) -> u64 {
        self.epochs as u64 * self.epoch_ns
    }

    /// Worker-nanosecond capacity per server over the horizon
    /// (`workers · horizon_ns`) — the conserved quantity:
    /// every server's `total_busy_ns() + total_idle_ns(cfg)` equals this
    /// exactly when `cfg.workers` matches the cluster.
    pub fn capacity_ns(&self) -> u64 {
        u64::from(self.workers) * self.horizon_ns()
    }
}

/// Running gauge state written into a series with last-write-wins
/// semantics, then forward-filled over untouched epochs.
struct Gauge<T: Copy> {
    value: T,
    touched: Vec<bool>,
}

impl<T: Copy> Gauge<T> {
    fn new(zero: T, epochs: usize) -> Self {
        Gauge {
            value: zero,
            touched: vec![false; epochs],
        }
    }

    fn set(&mut self, series: &mut [T], epoch: usize, value: T) {
        self.value = value;
        series[epoch] = value;
        self.touched[epoch] = true;
    }

    /// Copies each epoch's last written value forward across untouched
    /// epochs (gaps before the first write keep the zero default).
    fn fill(&self, series: &mut [T]) {
        let mut last: Option<T> = None;
        for (e, slot) in series.iter_mut().enumerate() {
            if self.touched[e] {
                last = Some(*slot);
            } else if let Some(v) = last {
                *slot = v;
            }
        }
    }
}

/// Per-server mutable fold state that is not itself a published series.
struct ServerFold {
    queue: Gauge<u32>,
    demand: Gauge<u64>,
}

/// Folds a trace into epoch-bucketed per-server telemetry.
///
/// The fold is a single deterministic pass over the recorded event order
/// (simulation-time order by construction). Servers are discovered from
/// the events themselves; a server that never appears gets no series.
///
/// # Panics
///
/// Panics if `cfg.epoch_ns == 0`.
pub fn fold(log: &TraceLog, cfg: &TelemetryConfig) -> Telemetry {
    assert!(cfg.epoch_ns > 0, "telemetry epoch must be non-zero");
    let max_t = log.events.iter().map(TraceEvent::t_ns).max().unwrap_or(0);
    // Floor + 1: the event at max_t lands in epoch max_t / epoch_ns,
    // which is always < epochs.
    let epochs = (max_t / cfg.epoch_ns) as usize + 1;

    let mut servers: BTreeMap<u32, ServerSeries> = BTreeMap::new();
    let mut state: BTreeMap<u32, ServerFold> = BTreeMap::new();
    // Discover-or-fetch: the two maps always hold the same key set, and
    // returning both entries at once keeps every event arm panic-free.
    fn touch<'a>(
        servers: &'a mut BTreeMap<u32, ServerSeries>,
        state: &'a mut BTreeMap<u32, ServerFold>,
        server: u32,
        epochs: usize,
    ) -> (&'a mut ServerSeries, &'a mut ServerFold) {
        (
            servers
                .entry(server)
                .or_insert_with(|| ServerSeries::new(server, epochs)),
            state.entry(server).or_insert_with(|| ServerFold {
                queue: Gauge::new(0u32, epochs),
                demand: Gauge::new(0u64, epochs),
            }),
        )
    }

    // Latest coordinator estimate per (request, op), from dispatches.
    let mut last_est: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    // Ops currently queued: (request, op) -> (server, est_ns charged).
    let mut queued: BTreeMap<(u64, u32), (u32, u64)> = BTreeMap::new();

    for ev in &log.events {
        let epoch = (ev.t_ns() / cfg.epoch_ns) as usize;
        match *ev {
            TraceEvent::OpDispatch {
                request,
                op,
                server,
                kind,
                est_ns,
                ..
            } => {
                let (s, _) = touch(&mut servers, &mut state, server, epochs);
                last_est.insert((request, op), est_ns);
                match kind {
                    DispatchKind::First => {}
                    DispatchKind::Retry => s.retries[epoch] += 1,
                    DispatchKind::Hedge => s.hedges[epoch] += 1,
                }
            }
            TraceEvent::OpEnqueue {
                request,
                op,
                server,
                queue_len,
                ..
            } => {
                let (s, f) = touch(&mut servers, &mut state, server, epochs);
                let est = last_est.get(&(request, op)).copied().unwrap_or(0);
                // A crashed-and-redelivered op can re-enqueue under the
                // same key; the old charge was already released by the
                // crash-drop, so a plain insert is exact.
                queued.insert((request, op), (server, est));
                s.enqueues[epoch] += 1;
                f.queue.set(&mut s.queue_len, epoch, queue_len);
                let demand = f.demand.value + est;
                f.demand.set(&mut s.demand_ns, epoch, demand);
            }
            TraceEvent::SchedDecision {
                request,
                op,
                server,
                position,
                queue_len,
                ..
            } => {
                let (s, f) = touch(&mut servers, &mut state, server, epochs);
                if position > 0 {
                    s.reorders[epoch] += 1;
                }
                // `queue_len` is pre-removal: depth after the pick is one
                // lower.
                f.queue
                    .set(&mut s.queue_len, epoch, queue_len.saturating_sub(1));
                if let Some((srv, est)) = queued.remove(&(request, op)) {
                    release_demand(&mut servers, &mut state, srv, est, epoch);
                }
            }
            TraceEvent::Batched {
                request, op, server, ..
            } => {
                let (s, _) = touch(&mut servers, &mut state, server, epochs);
                s.batched_ops[epoch] += 1;
                // Followers start service without a SchedDecision: the
                // batch pull is their dequeue. (The leader's charge was
                // already released by its decision — the remove is a
                // no-op then.)
                if let Some((srv, est)) = queued.remove(&(request, op)) {
                    release_demand(&mut servers, &mut state, srv, est, epoch);
                }
            }
            TraceEvent::ServiceEnd {
                t_ns,
                server,
                service_ns,
                ..
            } => {
                let (s, _) = touch(&mut servers, &mut state, server, epochs);
                s.completions[epoch] += 1;
                add_span(&mut s.busy_ns, cfg.epoch_ns, t_ns.saturating_sub(service_ns), t_ns);
            }
            TraceEvent::CrashDrop {
                request, op, server, ..
            } => {
                touch(&mut servers, &mut state, server, epochs);
                // A queued op died with the crash: release its charge.
                // (In-service drops were already released at their
                // decision; the remove is a no-op then.)
                if let Some((srv, est)) = queued.remove(&(request, op)) {
                    release_demand(&mut servers, &mut state, srv, est, epoch);
                }
            }
            TraceEvent::ServerCrash { server, .. } => {
                let (s, f) = touch(&mut servers, &mut state, server, epochs);
                // The queue empties instantly; per-op CrashDrop events
                // release the sampled charges, but unsampled runs (or
                // partial samples) would leak — zero the gauges outright.
                f.queue.set(&mut s.queue_len, epoch, 0);
                f.demand.set(&mut s.demand_ns, epoch, 0);
                queued.retain(|_, &mut (srv, _)| srv != server);
            }
            TraceEvent::Shed { server, .. } => {
                let (s, _) = touch(&mut servers, &mut state, server, epochs);
                s.sheds[epoch] += 1;
            }
            TraceEvent::HintArrive { server, .. } => {
                let (s, _) = touch(&mut servers, &mut state, server, epochs);
                s.hints[epoch] += 1;
            }
            TraceEvent::QueueSample {
                server, queue_len, ..
            } => {
                let (s, f) = touch(&mut servers, &mut state, server, epochs);
                f.queue.set(&mut s.queue_len, epoch, queue_len);
            }
            TraceEvent::ServerRecover { .. }
            | TraceEvent::RequestArrive { .. }
            | TraceEvent::OpResponse { .. }
            | TraceEvent::RequestComplete { .. }
            | TraceEvent::RequestAbort { .. }
            | TraceEvent::OpTimeout { .. }
            | TraceEvent::Admitted { .. } => {}
        }
    }

    for (server, s) in &mut servers {
        let f = &state[server];
        f.queue.fill(&mut s.queue_len);
        f.demand.fill(&mut s.demand_ns);
    }

    Telemetry {
        epoch_ns: cfg.epoch_ns,
        epochs,
        workers: cfg.workers,
        servers,
    }
}

/// Infers the minimum `workers` a cluster must have had to produce `log`:
/// the peak number of concurrently open service spans on any one server.
/// Returns `(server, min_workers)` for the most-parallel server, or `None`
/// if the log carries no positive-length service span.
///
/// Each [`TraceEvent::ServiceEnd`] realizes the span
/// `[t_ns − service_ns, t_ns)`; on a single server those spans can only
/// overlap if distinct workers served them, so the peak overlap is a hard
/// lower bound on the server's worker count. Half-open spans mean a span
/// ending exactly when another starts does *not* overlap it — ends are
/// processed before starts at equal timestamps. Callers folding with
/// [`TelemetryConfig::workers`] below this bound would report busy
/// occupancy above capacity (and silently saturated idle), so
/// `das_experiment top` refuses such configs, naming this bound.
pub fn min_workers(log: &TraceLog) -> Option<(u32, u32)> {
    // Per-server sweep line: +1 at span start, −1 at span end, sorted with
    // ends before starts at equal times; the peak running sum is the
    // minimum concurrency.
    let mut edges: BTreeMap<u32, Vec<(u64, i32)>> = BTreeMap::new();
    for ev in &log.events {
        if let TraceEvent::ServiceEnd {
            t_ns,
            server,
            service_ns,
            ..
        } = *ev
        {
            if service_ns > 0 {
                let e = edges.entry(server).or_default();
                e.push((t_ns.saturating_sub(service_ns), 1));
                e.push((t_ns, -1));
            }
        }
    }
    let mut best: Option<(u32, u32)> = None;
    for (server, mut e) in edges {
        // Sorting by (t, delta) puts −1 before +1 at equal t: touching
        // spans don't count as overlap.
        e.sort_unstable();
        let mut open: i32 = 0;
        let mut peak: i32 = 0;
        for (_, d) in e {
            open += d;
            peak = peak.max(open);
        }
        if best.is_none_or(|(_, b)| peak as u32 > b) {
            best = Some((server, peak as u32));
        }
    }
    best
}

/// Lowers a server's demand gauge by `est` at `epoch`.
fn release_demand(
    servers: &mut BTreeMap<u32, ServerSeries>,
    state: &mut BTreeMap<u32, ServerFold>,
    server: u32,
    est: u64,
    epoch: usize,
) {
    let (Some(s), Some(f)) = (servers.get_mut(&server), state.get_mut(&server)) else {
        return;
    };
    let demand = f.demand.value.saturating_sub(est);
    f.demand.set(&mut s.demand_ns, epoch, demand);
}

/// Adds the exact overlap of `[start, end)` with each epoch to `busy`.
/// Spans reaching past the last epoch boundary are clipped (cannot happen
/// for spans taken from the log that sized the epoch vector).
fn add_span(busy: &mut [u64], epoch_ns: u64, start: u64, end: u64) {
    if start >= end || busy.is_empty() {
        return;
    }
    let horizon = busy.len() as u64 * epoch_ns;
    let end = end.min(horizon);
    let mut t = start.min(end);
    while t < end {
        let e = (t / epoch_ns) as usize;
        let boundary = (e as u64 + 1) * epoch_ns;
        let upto = end.min(boundary);
        busy[e] += upto - t;
        t = upto;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(events: Vec<TraceEvent>) -> TraceLog {
        TraceLog {
            sample: 1.0,
            dropped: 0,
            events,
        }
    }

    fn cfg(epoch_ns: u64) -> TelemetryConfig {
        TelemetryConfig {
            epoch_ns,
            workers: 1,
        }
    }

    #[test]
    fn busy_spans_split_exactly_across_epochs() {
        // Service [50, 250) over 100ns epochs: 50 + 100 + 50.
        let t = fold(
            &log(vec![TraceEvent::ServiceEnd {
                t_ns: 250,
                request: 1,
                op: 0,
                server: 0,
                service_ns: 200,
            }]),
            &cfg(100),
        );
        assert_eq!(t.epochs, 3);
        let s = &t.servers[&0];
        assert_eq!(s.busy_ns, vec![50, 100, 50]);
        assert_eq!(s.total_busy_ns(), 200);
        // Conservation: busy + idle == capacity.
        assert_eq!(s.total_busy_ns() + s.total_idle_ns(&cfg(100)), t.capacity_ns());
    }

    #[test]
    fn queue_gauge_forward_fills_and_decision_drops_depth() {
        let events = vec![
            TraceEvent::OpDispatch {
                t_ns: 0,
                request: 1,
                op: 0,
                server: 2,
                attempt: 0,
                kind: DispatchKind::First,
                est_ns: 700,
                bytes: 0,
            },
            TraceEvent::OpEnqueue {
                t_ns: 10,
                request: 1,
                op: 0,
                server: 2,
                queue_len: 3,
            },
            TraceEvent::SchedDecision {
                t_ns: 450,
                request: 1,
                op: 0,
                server: 2,
                rule: "min-rank".into(),
                position: 2,
                queue_len: 3,
            },
            TraceEvent::ServiceEnd {
                t_ns: 950,
                request: 1,
                op: 0,
                server: 2,
                service_ns: 500,
            },
        ];
        let t = fold(&log(events), &cfg(100));
        let s = &t.servers[&2];
        assert_eq!(t.epochs, 10);
        // Epoch 0 ends at depth 3, epochs 1-3 forward-fill, epoch 4's
        // decision drops it to 2, filled to the end.
        assert_eq!(s.queue_len, vec![3, 3, 3, 3, 2, 2, 2, 2, 2, 2]);
        // Demand: +700 at enqueue, released at the decision.
        assert_eq!(s.demand_ns[0], 700);
        assert_eq!(s.demand_ns[3], 700);
        assert_eq!(s.demand_ns[4], 0);
        assert_eq!(*s.demand_ns.last().unwrap(), 0);
        assert_eq!(ServerSeries::total(&s.reorders), 1);
        assert_eq!(ServerSeries::total(&s.enqueues), 1);
        assert_eq!(ServerSeries::total(&s.completions), 1);
    }

    #[test]
    fn batch_follower_releases_demand_without_decision() {
        let events = vec![
            TraceEvent::OpDispatch {
                t_ns: 0,
                request: 1,
                op: 1,
                server: 0,
                attempt: 0,
                kind: DispatchKind::First,
                est_ns: 300,
                bytes: 0,
            },
            TraceEvent::OpEnqueue {
                t_ns: 0,
                request: 1,
                op: 1,
                server: 0,
                queue_len: 1,
            },
            TraceEvent::Batched {
                t_ns: 50,
                request: 1,
                op: 1,
                server: 0,
                size: 2,
            },
        ];
        let t = fold(&log(events), &cfg(1000));
        let s = &t.servers[&0];
        assert_eq!(s.demand_ns, vec![0]);
        assert_eq!(ServerSeries::total(&s.batched_ops), 1);
    }

    #[test]
    fn retry_hedge_shed_and_hint_counters() {
        let dispatch = |kind, op| TraceEvent::OpDispatch {
            t_ns: 5,
            request: 1,
            op,
            server: 0,
            attempt: 1,
            kind,
            est_ns: 10,
            bytes: 0,
        };
        let events = vec![
            dispatch(DispatchKind::Retry, 0),
            dispatch(DispatchKind::Hedge, 1),
            TraceEvent::Shed {
                t_ns: 6,
                request: 2,
                reason: crate::event::ShedReason::Admission,
                server: 0,
            },
            TraceEvent::HintArrive {
                t_ns: 7,
                request: 1,
                server: 0,
                eta_ns: 100,
                remaining_ns: 50,
            },
        ];
        let t = fold(&log(events), &cfg(100));
        let s = &t.servers[&0];
        assert_eq!(ServerSeries::total(&s.retries), 1);
        assert_eq!(ServerSeries::total(&s.hedges), 1);
        assert_eq!(ServerSeries::total(&s.sheds), 1);
        assert_eq!(ServerSeries::total(&s.hints), 1);
    }

    #[test]
    fn crash_zeroes_gauges() {
        let events = vec![
            TraceEvent::OpDispatch {
                t_ns: 0,
                request: 1,
                op: 0,
                server: 0,
                attempt: 0,
                kind: DispatchKind::First,
                est_ns: 400,
                bytes: 0,
            },
            TraceEvent::OpEnqueue {
                t_ns: 0,
                request: 1,
                op: 0,
                server: 0,
                queue_len: 1,
            },
            TraceEvent::ServerCrash { t_ns: 150, server: 0 },
        ];
        let t = fold(&log(events), &cfg(100));
        let s = &t.servers[&0];
        assert_eq!(s.demand_ns, vec![400, 0]);
        assert_eq!(s.queue_len, vec![1, 0]);
    }

    #[test]
    fn min_workers_counts_peak_overlap() {
        let end = |t_ns, service_ns, server, request| TraceEvent::ServiceEnd {
            t_ns,
            request,
            op: 0,
            server,
            service_ns,
        };
        // Server 0: [0,100) and [50,150) overlap → 2 workers.
        // Server 1: [0,100) then [100,200) touch but never overlap → 1.
        let t = log(vec![
            end(100, 100, 0, 1),
            end(150, 100, 0, 2),
            end(100, 100, 1, 3),
            end(200, 100, 1, 4),
        ]);
        assert_eq!(min_workers(&t), Some((0, 2)));
        // Sequential-only log infers a single worker.
        let seq = log(vec![end(100, 100, 1, 3), end(200, 100, 1, 4)]);
        assert_eq!(min_workers(&seq), Some((1, 1)));
        // Zero-length spans (and empty logs) infer nothing.
        assert_eq!(min_workers(&log(vec![end(100, 0, 0, 1)])), None);
        assert_eq!(min_workers(&log(vec![])), None);
    }

    #[test]
    fn min_workers_matches_three_way_overlap() {
        let end = |t_ns, service_ns, request| TraceEvent::ServiceEnd {
            t_ns,
            request,
            op: 0,
            server: 7,
            service_ns,
        };
        // [0,300), [100,250), [200,400): all three open during [200,250).
        let t = log(vec![end(300, 300, 1), end(250, 150, 2), end(400, 200, 3)]);
        assert_eq!(min_workers(&t), Some((7, 3)));
    }

    #[test]
    fn empty_log_folds_to_one_empty_epoch() {
        let t = fold(&log(vec![]), &cfg(100));
        assert_eq!(t.epochs, 1);
        assert!(t.servers.is_empty());
        assert_eq!(t.horizon_ns(), 100);
    }
}
