//! Paired-trace blame diffing: attribute the RCT *delta* between two
//! traces of the same seeded workload per critical-path segment.
//!
//! [`diff_traces`] matches requests by id across two logs (A = baseline,
//! B = candidate), reconstructs both sides' critical paths, and emits one
//! signed [`RequestDelta`] per matched request. Because each side's five
//! segments telescope exactly to its RCT (see [`crate::analysis`]), the
//! per-request segment deltas telescope exactly — in integer nanoseconds —
//! to that request's RCT delta, so an aggregate claim like "B is 24 %
//! faster" decomposes without residue into "B removed X ns of queue wait,
//! added Y ns of service, …".
//!
//! The diff refuses to run when the two logs disagree on any shared
//! request's arrival timestamp: that means they were *not* recorded from
//! the same seeded workload, and a per-segment comparison would attribute
//! workload differences to the policy.
//!
//! [`ladder_diff`] generalizes the pair to an N-way *policy ladder*
//! (FCFS → Rein-SBF → DAS → DAS-tuned): requests are matched across every
//! rung at once, each adjacent pair is diffed over that single common
//! population, and the per-segment deltas of the steps telescope exactly
//! — in integer nanoseconds — to the first→last diff, with a per-server
//! drill-down grouped by the baseline's completing server.

use std::collections::BTreeMap;
use std::fmt;

use serde::Serialize;

use crate::analysis::{arrival_times, path_index, CriticalPath};
use crate::recorder::TraceLog;

/// The five critical-path segments, in path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Segment {
    /// Coordinator stall before the winning dispatch.
    Stall,
    /// Request-side network.
    NetRequest,
    /// Queue wait at the serving server.
    Queue,
    /// Service time.
    Service,
    /// Response-side network.
    NetResponse,
}

impl Segment {
    /// All segments in critical-path order.
    pub const ALL: [Segment; 5] = [
        Segment::Stall,
        Segment::NetRequest,
        Segment::Queue,
        Segment::Service,
        Segment::NetResponse,
    ];

    /// Display label, matching [`crate::analysis::BlameBreakdown::segments`].
    pub fn label(self) -> &'static str {
        match self {
            Segment::Stall => "stall",
            Segment::NetRequest => "net req",
            Segment::Queue => "queue",
            Segment::Service => "service",
            Segment::NetResponse => "net resp",
        }
    }

    /// This segment's duration on a reconstructed path, nanoseconds.
    pub fn of(self, p: &CriticalPath) -> u64 {
        match self {
            Segment::Stall => p.stall_ns,
            Segment::NetRequest => p.net_request_ns,
            Segment::Queue => p.queue_ns,
            Segment::Service => p.service_ns,
            Segment::NetResponse => p.net_response_ns,
        }
    }

    /// Index in [`Segment::ALL`].
    pub fn index(self) -> usize {
        match self {
            Segment::Stall => 0,
            Segment::NetRequest => 1,
            Segment::Queue => 2,
            Segment::Service => 3,
            Segment::NetResponse => 4,
        }
    }
}

/// The segment a path spent most of its RCT in (ties break toward the
/// earlier segment in path order, deterministically).
pub fn dominant_segment(p: &CriticalPath) -> Segment {
    let mut best = Segment::Stall;
    for s in Segment::ALL {
        if s.of(p) > best.of(p) {
            best = s;
        }
    }
    best
}

/// One matched request's signed per-segment delta (B minus A), integer
/// nanoseconds. The five segment deltas always sum exactly to
/// [`RequestDelta::rct_delta_ns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RequestDelta {
    /// Request id (identical in both traces).
    pub request: u64,
    /// RCT delta, `B − A`, nanoseconds.
    pub rct_delta_ns: i64,
    /// Coordinator-stall delta.
    pub stall_delta_ns: i64,
    /// Request-side network delta.
    pub net_request_delta_ns: i64,
    /// Queue-wait delta.
    pub queue_delta_ns: i64,
    /// Service-time delta.
    pub service_delta_ns: i64,
    /// Response-side network delta.
    pub net_response_delta_ns: i64,
    /// Server whose response completed the request under A.
    pub server_a: u32,
    /// Server whose response completed the request under B.
    pub server_b: u32,
    /// Dominant (largest) segment of the A-side path.
    pub dominant_a: Segment,
    /// Dominant (largest) segment of the B-side path.
    pub dominant_b: Segment,
}

impl RequestDelta {
    fn new(a: &CriticalPath, b: &CriticalPath) -> Self {
        let d = |f: fn(&CriticalPath) -> u64| f(b) as i64 - f(a) as i64;
        RequestDelta {
            request: a.request,
            rct_delta_ns: d(|p| p.rct_ns),
            stall_delta_ns: d(|p| p.stall_ns),
            net_request_delta_ns: d(|p| p.net_request_ns),
            queue_delta_ns: d(|p| p.queue_ns),
            service_delta_ns: d(|p| p.service_ns),
            net_response_delta_ns: d(|p| p.net_response_ns),
            server_a: a.server,
            server_b: b.server,
            dominant_a: dominant_segment(a),
            dominant_b: dominant_segment(b),
        }
    }

    /// The delta of one segment.
    pub fn segment_delta(&self, s: Segment) -> i64 {
        match s {
            Segment::Stall => self.stall_delta_ns,
            Segment::NetRequest => self.net_request_delta_ns,
            Segment::Queue => self.queue_delta_ns,
            Segment::Service => self.service_delta_ns,
            Segment::NetResponse => self.net_response_delta_ns,
        }
    }

    /// Sum of the five segment deltas; always equals
    /// [`RequestDelta::rct_delta_ns`] exactly (both sides telescope).
    pub fn sum_ns(&self) -> i64 {
        Segment::ALL.iter().map(|&s| self.segment_delta(s)).sum()
    }
}

/// Why two traces cannot be diffed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The logs disagree on a shared request's arrival time: they were not
    /// recorded from the same seeded workload.
    ArrivalMismatch {
        /// The lowest disagreeing request id.
        request: u64,
        /// Arrival in trace A, nanoseconds.
        a_ns: u64,
        /// Arrival in trace B, nanoseconds.
        b_ns: u64,
    },
    /// No request id completed (with a surviving event chain) in both logs.
    NoMatchedRequests,
    /// A ladder needs at least two rungs.
    TooFewRungs,
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DiffError::ArrivalMismatch { request, a_ns, b_ns } => write!(
                f,
                "traces disagree on request {request}'s arrival ({a_ns} ns vs {b_ns} ns): \
                 not the same seeded workload"
            ),
            DiffError::NoMatchedRequests => {
                write!(f, "no request completed in both traces; nothing to diff")
            }
            DiffError::TooFewRungs => {
                write!(f, "a policy ladder needs at least two traces")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// A paired blame diff of two traces (B minus A).
///
/// Everything in this struct is exact integer accounting; the mean/p99
/// seconds views (and the serializable [`DiffSummary`]) are presentation
/// methods defined in [`crate::present`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// Requests with a reconstructed critical path on both sides.
    pub matched: u64,
    /// Requests with a path only in trace A.
    pub only_a: u64,
    /// Requests with a path only in trace B.
    pub only_b: u64,
    /// One signed delta per matched request, ascending by request id.
    pub deltas: Vec<RequestDelta>,
    /// Exact sum of matched A-side RCTs, nanoseconds.
    pub sum_rct_a_ns: u64,
    /// Exact sum of matched B-side RCTs, nanoseconds.
    pub sum_rct_b_ns: u64,
    /// Exact per-segment sums over the matched A-side paths, nanoseconds
    /// (path order).
    pub sum_a_ns: [u64; 5],
    /// Exact per-segment sums over the matched B-side paths, nanoseconds.
    pub sum_b_ns: [u64; 5],
    /// Matched requests whose completing response came from a different
    /// server under B.
    pub moved_server: u64,
    /// Matched requests whose dominant segment changed under B.
    pub moved_segment: u64,
    /// `migration[from][to]`: matched requests whose dominant segment was
    /// `ALL[from]` under A and `ALL[to]` under B.
    pub migration: [[u64; 5]; 5],
}

// Seconds-facing views of the exact sums live in the presentation layer;
// re-exported here so `diff::DiffSummary` keeps working.
pub use crate::present::{DiffSummary, LadderSummary, SegmentDelta, ServerLadderSummary};

/// Diffs two traces of the same seeded workload: matches completed
/// requests by id and attributes the RCT delta per segment.
///
/// Refuses ([`DiffError::ArrivalMismatch`]) when any request id present in
/// both logs has different arrival timestamps — the defining property of
/// "same workload, different policy" runs is identical arrivals.
pub fn diff_traces(a: &TraceLog, b: &TraceLog) -> Result<TraceDiff, DiffError> {
    check_arrivals(&arrival_times(a), &arrival_times(b))?;
    let paths_a = path_index(a);
    let paths_b = path_index(b);
    let mut ids: Vec<u64> = paths_a.keys().filter(|r| paths_b.contains_key(r)).copied().collect();
    ids.sort_unstable();
    if ids.is_empty() {
        return Err(DiffError::NoMatchedRequests);
    }
    Ok(diff_over(&paths_a, &paths_b, &ids))
}

/// Errors when the two arrival maps disagree on any shared request id
/// (lowest disagreeing id, deterministically).
fn check_arrivals(
    arr_a: &BTreeMap<u64, u64>,
    arr_b: &BTreeMap<u64, u64>,
) -> Result<(), DiffError> {
    let mismatch = arr_a
        .iter()
        .filter_map(|(&req, &ta)| {
            let &tb = arr_b.get(&req)?;
            (ta != tb).then_some((req, ta, tb))
        })
        .min();
    match mismatch {
        Some((request, a_ns, b_ns)) => Err(DiffError::ArrivalMismatch { request, a_ns, b_ns }),
        None => Ok(()),
    }
}

/// The exact diff body over a fixed, sorted id set present in both path
/// indexes. `only_a` / `only_b` count the paths each side has outside
/// `ids`.
fn diff_over(
    paths_a: &BTreeMap<u64, CriticalPath>,
    paths_b: &BTreeMap<u64, CriticalPath>,
    ids: &[u64],
) -> TraceDiff {
    let only_a = (paths_a.len() - ids.len()) as u64;
    let only_b = (paths_b.len() - ids.len()) as u64;

    let mut deltas = Vec::with_capacity(ids.len());
    let mut sum_a_ns = [0u64; 5];
    let mut sum_b_ns = [0u64; 5];
    let mut sum_rct_a_ns = 0u64;
    let mut sum_rct_b_ns = 0u64;
    let mut moved_server = 0u64;
    let mut migration = [[0u64; 5]; 5];
    for &id in ids {
        let (pa, pb) = (&paths_a[&id], &paths_b[&id]);
        let d = RequestDelta::new(pa, pb);
        debug_assert_eq!(d.sum_ns(), d.rct_delta_ns);
        for s in Segment::ALL {
            sum_a_ns[s.index()] += s.of(pa);
            sum_b_ns[s.index()] += s.of(pb);
        }
        sum_rct_a_ns += pa.rct_ns;
        sum_rct_b_ns += pb.rct_ns;
        moved_server += (d.server_a != d.server_b) as u64;
        migration[d.dominant_a.index()][d.dominant_b.index()] += 1;
        deltas.push(d);
    }
    let moved_segment = deltas
        .iter()
        .filter(|d| d.dominant_a != d.dominant_b)
        .count() as u64;

    TraceDiff {
        matched: ids.len() as u64,
        only_a,
        only_b,
        deltas,
        sum_rct_a_ns,
        sum_rct_b_ns,
        sum_a_ns,
        sum_b_ns,
        moved_server,
        moved_segment,
        migration,
    }
}

/// Per-server drill-down row of a ladder: the matched requests whose
/// *baseline* (rung 0) completing server was [`ServerLadder::server`],
/// with exact per-rung sums. Because every rung sums over the same
/// request group, the per-segment deltas between adjacent rungs telescope
/// exactly — per server and in total — to the first→last deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerLadder {
    /// The rung-0 completing server defining the group.
    pub server: u32,
    /// Matched requests in the group.
    pub matched: u64,
    /// Exact sum of the group's RCTs under each rung, nanoseconds.
    pub sum_rct_ns: Vec<u64>,
    /// Exact per-segment sums under each rung, nanoseconds (path order).
    pub sum_ns: Vec<[u64; 5]>,
}

/// An N-way policy ladder: pairwise diffs between adjacent rungs, all
/// over the *same* matched request set, so every per-segment delta
/// telescopes exactly across the whole ladder.
///
/// `steps[i]` diffs rung `i` (as A) against rung `i + 1` (as B);
/// [`LadderDiff::end_to_end`] diffs the first rung against the last.
/// Because all diffs share one id set, `steps[i].sum_b_ns ==
/// steps[i + 1].sum_a_ns` componentwise, hence
/// `Σ_i (steps[i].sum_b_ns − steps[i].sum_a_ns) == end_to_end.sum_b_ns −
/// end_to_end.sum_a_ns` — exact in integer nanoseconds (proptest-
/// enforced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderDiff {
    /// Requests with a reconstructed path in *every* rung.
    pub matched: u64,
    /// One adjacent-pair diff per rung boundary (`rungs − 1` entries).
    pub steps: Vec<TraceDiff>,
    /// First rung vs last rung, over the same matched set.
    pub end_to_end: TraceDiff,
    /// Per rung: paths that rung has outside the common matched set.
    pub only_in_rung: Vec<u64>,
    /// Per-server drill-down, grouped by the rung-0 completing server,
    /// ascending by server id.
    pub servers: Vec<ServerLadder>,
}

/// Diffs `rungs.len()` traces of the same seeded workload as a policy
/// ladder (e.g. FCFS → Rein-SBF → DAS → DAS-tuned).
///
/// Every rung's arrivals are checked against rung 0's
/// ([`DiffError::ArrivalMismatch`] on the first disagreeing rung, lowest
/// request id); requests are matched across *all* rungs so each adjacent
/// step compares the identical request population. With exactly two
/// rungs, `steps[0]` equals [`diff_traces`]' result.
pub fn ladder_diff(rungs: &[&TraceLog]) -> Result<LadderDiff, DiffError> {
    if rungs.len() < 2 {
        return Err(DiffError::TooFewRungs);
    }
    let arr0 = arrival_times(rungs[0]);
    for rung in &rungs[1..] {
        check_arrivals(&arr0, &arrival_times(rung))?;
    }

    let paths: Vec<BTreeMap<u64, CriticalPath>> = rungs.iter().map(|r| path_index(r)).collect();
    let mut ids: Vec<u64> = paths[0]
        .keys()
        .filter(|id| paths[1..].iter().all(|p| p.contains_key(id)))
        .copied()
        .collect();
    ids.sort_unstable();
    if ids.is_empty() {
        return Err(DiffError::NoMatchedRequests);
    }
    let only_in_rung: Vec<u64> = paths.iter().map(|p| (p.len() - ids.len()) as u64).collect();

    let steps: Vec<TraceDiff> = paths
        .windows(2)
        .map(|w| diff_over(&w[0], &w[1], &ids))
        .collect();
    let end_to_end = diff_over(&paths[0], &paths[paths.len() - 1], &ids);

    // Per-server drill-down: group matched requests by their baseline
    // completing server, then sum each rung's exact paths per group.
    let mut servers: BTreeMap<u32, ServerLadder> = BTreeMap::new();
    for &id in &ids {
        let server = paths[0][&id].server;
        let row = servers.entry(server).or_insert_with(|| ServerLadder {
            server,
            matched: 0,
            sum_rct_ns: vec![0; rungs.len()],
            sum_ns: vec![[0; 5]; rungs.len()],
        });
        row.matched += 1;
        for (r, p) in paths.iter().enumerate() {
            let path = &p[&id];
            row.sum_rct_ns[r] += path.rct_ns;
            for s in Segment::ALL {
                row.sum_ns[r][s.index()] += s.of(path);
            }
        }
    }

    Ok(LadderDiff {
        matched: ids.len() as u64,
        steps,
        end_to_end,
        only_in_rung,
        servers: servers.into_values().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DispatchKind, TraceEvent};

    /// A minimal single-op request chain completing at `complete_ns`, with
    /// the given segment layout.
    #[allow(clippy::too_many_arguments)]
    fn chain(
        events: &mut Vec<TraceEvent>,
        request: u64,
        arrive_ns: u64,
        server: u32,
        net_req: u64,
        queue: u64,
        service: u64,
        net_resp: u64,
    ) {
        let dispatch = arrive_ns;
        let enq = dispatch + net_req;
        let start = enq + queue;
        let end = start + service;
        let resp = end + net_resp;
        events.push(TraceEvent::RequestArrive {
            t_ns: arrive_ns,
            request,
            keys: 1,
            fanout: 1,
        });
        events.push(TraceEvent::OpDispatch {
            t_ns: dispatch,
            request,
            op: 0,
            server,
            attempt: 0,
            kind: DispatchKind::First,
            est_ns: service,
            bytes: 64,
        });
        events.push(TraceEvent::OpEnqueue {
            t_ns: enq,
            request,
            op: 0,
            server,
            queue_len: 1,
        });
        events.push(TraceEvent::ServiceEnd {
            t_ns: end,
            request,
            op: 0,
            server,
            service_ns: service,
        });
        events.push(TraceEvent::OpResponse {
            t_ns: resp,
            request,
            op: 0,
            server,
            accepted: true,
        });
        events.push(TraceEvent::RequestComplete {
            t_ns: resp,
            request,
            rct_ns: resp - arrive_ns,
        });
    }

    fn log(events: Vec<TraceEvent>) -> TraceLog {
        TraceLog {
            sample: 1.0,
            dropped: 0,
            events,
        }
    }

    #[test]
    fn deltas_telescope_and_aggregate() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20); // rct 650, queue-dominant
        chain(&mut a, 2, 200, 1, 30, 400, 100, 20); // rct 550
        let mut b = Vec::new();
        chain(&mut b, 1, 100, 0, 30, 100, 100, 20); // rct 250: queue -400
        chain(&mut b, 2, 200, 2, 30, 50, 200, 20); // rct 300: moved server,
                                                   // queue -350, service +100
        let d = diff_traces(&log(a), &log(b)).unwrap();
        assert_eq!(d.matched, 2);
        assert_eq!((d.only_a, d.only_b), (0, 0));
        for rd in &d.deltas {
            assert_eq!(rd.sum_ns(), rd.rct_delta_ns);
        }
        assert_eq!(d.deltas[0].rct_delta_ns, -400);
        assert_eq!(d.deltas[0].queue_delta_ns, -400);
        assert_eq!(d.deltas[1].rct_delta_ns, -250);
        assert_eq!(d.deltas[1].service_delta_ns, 100);
        assert_eq!(d.moved_server, 1);
        // Mean queue delta: (-400 + -350) / 2 = -375 ns.
        assert!((d.mean_delta_secs(Segment::Queue) - (-375e-9)).abs() < 1e-15);
        // The segment mean deltas sum to the mean RCT delta.
        let total: f64 = Segment::ALL.iter().map(|&s| d.mean_delta_secs(s)).sum();
        assert!((total - d.mean_rct_delta_secs()).abs() < 1e-15);
        assert!(
            (d.mean_rct_delta_secs() - (d.mean_rct_b_secs() - d.mean_rct_a_secs())).abs() < 1e-15
        );
        assert_eq!(d.dominant_negative_segment(), Some(Segment::Queue));
        // Request 2's dominant segment migrated queue -> service.
        assert_eq!(d.moved_segment, 1);
        assert_eq!(d.migration[Segment::Queue.index()][Segment::Service.index()], 1);
        assert_eq!(d.migration[Segment::Queue.index()][Segment::Queue.index()], 1);
    }

    #[test]
    fn refuses_mismatched_arrivals() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20);
        chain(&mut a, 2, 300, 0, 30, 500, 100, 20);
        let mut b = Vec::new();
        chain(&mut b, 1, 100, 0, 30, 100, 100, 20);
        chain(&mut b, 2, 301, 0, 30, 100, 100, 20);
        let err = diff_traces(&log(a), &log(b)).unwrap_err();
        assert_eq!(
            err,
            DiffError::ArrivalMismatch {
                request: 2,
                a_ns: 300,
                b_ns: 301
            }
        );
        assert!(err.to_string().contains("request 2"));
    }

    #[test]
    fn counts_unmatched_requests() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20);
        chain(&mut a, 2, 200, 0, 30, 500, 100, 20);
        let mut b = Vec::new();
        chain(&mut b, 1, 100, 0, 30, 100, 100, 20);
        chain(&mut b, 3, 400, 0, 30, 100, 100, 20);
        let d = diff_traces(&log(a), &log(b)).unwrap();
        assert_eq!(d.matched, 1);
        assert_eq!(d.only_a, 1);
        assert_eq!(d.only_b, 1);
    }

    #[test]
    fn empty_intersection_is_an_error() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20);
        let mut b = Vec::new();
        chain(&mut b, 2, 200, 0, 30, 100, 100, 20);
        assert_eq!(
            diff_traces(&log(a), &log(b)).unwrap_err(),
            DiffError::NoMatchedRequests
        );
    }

    #[test]
    fn summary_serializes_with_signed_deltas() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20);
        let mut b = Vec::new();
        chain(&mut b, 1, 100, 0, 30, 100, 150, 20);
        let d = diff_traces(&log(a), &log(b)).unwrap();
        let s = d.summary();
        assert_eq!(s.matched, 1);
        assert_eq!(s.segments.len(), 5);
        assert!(s.segments[Segment::Queue.index()].mean_delta_secs < 0.0);
        assert!(s.segments[Segment::Service.index()].mean_delta_secs > 0.0);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"matched\":1"), "{json}");
        assert!(json.contains("queue"), "{json}");
    }

    #[test]
    fn ladder_steps_telescope_to_end_to_end() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20);
        chain(&mut a, 2, 200, 1, 30, 400, 100, 20);
        let mut b = Vec::new();
        chain(&mut b, 1, 100, 0, 30, 300, 100, 20);
        chain(&mut b, 2, 200, 1, 30, 250, 150, 20);
        let mut c = Vec::new();
        chain(&mut c, 1, 100, 2, 30, 100, 100, 20);
        chain(&mut c, 2, 200, 1, 30, 50, 150, 20);
        let (la, lb, lc) = (log(a), log(b), log(c));
        let ladder = ladder_diff(&[&la, &lb, &lc]).unwrap();
        assert_eq!(ladder.matched, 2);
        assert_eq!(ladder.steps.len(), 2);
        assert_eq!(ladder.only_in_rung, vec![0, 0, 0]);
        // Interior sums agree: step i's B side is step i+1's A side.
        assert_eq!(ladder.steps[0].sum_b_ns, ladder.steps[1].sum_a_ns);
        assert_eq!(ladder.steps[0].sum_rct_b_ns, ladder.steps[1].sum_rct_a_ns);
        // Telescoping: summed step deltas equal the first→last deltas.
        for s in Segment::ALL {
            let i = s.index();
            let stepped: i64 = ladder
                .steps
                .iter()
                .map(|d| d.sum_b_ns[i] as i64 - d.sum_a_ns[i] as i64)
                .sum();
            let direct =
                ladder.end_to_end.sum_b_ns[i] as i64 - ladder.end_to_end.sum_a_ns[i] as i64;
            assert_eq!(stepped, direct, "segment {}", s.label());
        }
        // Two rungs reduce to the pairwise diff.
        let pair = diff_traces(&la, &lb).unwrap();
        let two = ladder_diff(&[&la, &lb]).unwrap();
        assert_eq!(two.steps[0], pair);
        assert_eq!(two.end_to_end, pair);
    }

    #[test]
    fn ladder_per_server_rows_group_by_baseline_server() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20);
        chain(&mut a, 2, 200, 1, 30, 400, 100, 20);
        chain(&mut a, 3, 300, 0, 30, 200, 100, 20);
        let mut b = Vec::new();
        chain(&mut b, 1, 100, 2, 30, 100, 100, 20); // moved server: still grouped under 0
        chain(&mut b, 2, 200, 1, 30, 50, 100, 20);
        chain(&mut b, 3, 300, 0, 30, 20, 100, 20);
        let (la, lb) = (log(a), log(b));
        let ladder = ladder_diff(&[&la, &lb]).unwrap();
        assert_eq!(ladder.servers.len(), 2);
        let s0 = &ladder.servers[0];
        assert_eq!((s0.server, s0.matched), (0, 2));
        let s1 = &ladder.servers[1];
        assert_eq!((s1.server, s1.matched), (1, 1));
        // Per-server sums add up to the global sums, rung by rung.
        for r in 0..2 {
            let rct: u64 = ladder.servers.iter().map(|s| s.sum_rct_ns[r]).sum();
            let global = if r == 0 {
                ladder.end_to_end.sum_rct_a_ns
            } else {
                ladder.end_to_end.sum_rct_b_ns
            };
            assert_eq!(rct, global);
            for seg in Segment::ALL {
                let per: u64 = ladder.servers.iter().map(|s| s.sum_ns[r][seg.index()]).sum();
                let global = if r == 0 {
                    ladder.end_to_end.sum_a_ns[seg.index()]
                } else {
                    ladder.end_to_end.sum_b_ns[seg.index()]
                };
                assert_eq!(per, global, "segment {}", seg.label());
            }
        }
    }

    #[test]
    fn ladder_matches_across_all_rungs_and_refuses_bad_input() {
        let mut a = Vec::new();
        chain(&mut a, 1, 100, 0, 30, 500, 100, 20);
        chain(&mut a, 2, 200, 0, 30, 400, 100, 20);
        let mut b = Vec::new();
        chain(&mut b, 1, 100, 0, 30, 300, 100, 20); // request 2 missing
        let mut c = Vec::new();
        chain(&mut c, 1, 100, 0, 30, 100, 100, 20);
        chain(&mut c, 2, 200, 0, 30, 100, 100, 20);
        let (la, lb, lc) = (log(a), log(b), log(c));
        let ladder = ladder_diff(&[&la, &lb, &lc]).unwrap();
        assert_eq!(ladder.matched, 1);
        assert_eq!(ladder.only_in_rung, vec![1, 0, 1]);

        assert_eq!(ladder_diff(&[&la]).unwrap_err(), DiffError::TooFewRungs);
        assert!(DiffError::TooFewRungs.to_string().contains("two"));

        let mut shifted = Vec::new();
        chain(&mut shifted, 1, 101, 0, 30, 500, 100, 20);
        let ls = log(shifted);
        assert_eq!(
            ladder_diff(&[&la, &lb, &ls]).unwrap_err(),
            DiffError::ArrivalMismatch {
                request: 1,
                a_ns: 100,
                b_ns: 101
            }
        );
    }

    #[test]
    fn dominant_segment_breaks_ties_toward_path_order() {
        let p = CriticalPath {
            request: 0,
            rct_ns: 40,
            op: 0,
            server: 0,
            attempts: 1,
            stall_ns: 10,
            net_request_ns: 10,
            queue_ns: 10,
            service_ns: 10,
            net_response_ns: 0,
        };
        assert_eq!(dominant_segment(&p), Segment::Stall);
    }
}
