//! Float presentation of the integer-ns accounting layer.
//!
//! [`crate::analysis`] and [`crate::diff`] are machine-checked (das_lint's
//! `float-accounting` rule) to contain **no float arithmetic**: their
//! telescoping contracts — five segments sum *exactly* to the RCT, five
//! segment deltas sum *exactly* to the RCT delta — only hold in integer
//! nanoseconds. This module is the one sanctioned place where those exact
//! sums become human-facing seconds.
//!
//! ## Bit-stability of the conversions
//!
//! Every mean here is computed as `(exact integer sum as f64) * 1e-9 / n`.
//! An `f64` represents integers exactly up to 2^53; the summed quantities
//! are nanosecond durations (≤ ~1e9 each), so the conversion is lossless
//! until a trace accumulates ~104 days of summed segment time — far beyond
//! any experiment here. The CI goldens byte-diff the serialized output, so
//! any future change to these expressions is caught immediately.

use serde::{Deserialize, Serialize};

use crate::analysis::{critical_paths, CriticalPath};
use crate::diff::{LadderDiff, Segment, TraceDiff};
use crate::recorder::TraceLog;
use crate::telemetry::{ServerSeries, Telemetry};

/// Aggregated blame: mean per-segment time over all reconstructed paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlameBreakdown {
    /// Paths aggregated.
    pub requests: u64,
    /// Mean RCT over those paths, seconds.
    pub mean_rct_secs: f64,
    /// Mean coordinator stall (retries/backoff/hedging), seconds.
    pub stall_secs: f64,
    /// Mean request-side network time, seconds.
    pub net_request_secs: f64,
    /// Mean queue wait, seconds.
    pub queue_secs: f64,
    /// Mean service time, seconds.
    pub service_secs: f64,
    /// Mean response-side network time, seconds.
    pub net_response_secs: f64,
}

impl BlameBreakdown {
    /// Aggregates a set of critical paths.
    pub fn from_paths(paths: &[CriticalPath]) -> Self {
        let n = paths.len() as f64;
        let mean = |f: fn(&CriticalPath) -> u64| {
            if paths.is_empty() {
                0.0
            } else {
                paths.iter().map(|p| f(p) as f64).sum::<f64>() * 1e-9 / n
            }
        };
        BlameBreakdown {
            requests: paths.len() as u64,
            mean_rct_secs: mean(|p| p.rct_ns),
            stall_secs: mean(|p| p.stall_ns),
            net_request_secs: mean(|p| p.net_request_ns),
            queue_secs: mean(|p| p.queue_ns),
            service_secs: mean(|p| p.service_ns),
            net_response_secs: mean(|p| p.net_response_ns),
        }
    }

    /// Reconstructs paths from a log and aggregates them.
    pub fn from_log(log: &TraceLog) -> Self {
        Self::from_paths(&critical_paths(log))
    }

    /// The labeled segment means in critical-path order, seconds.
    pub fn segments(&self) -> [(&'static str, f64); 5] {
        [
            ("stall", self.stall_secs),
            ("net req", self.net_request_secs),
            ("queue", self.queue_secs),
            ("service", self.service_secs),
            ("net resp", self.net_response_secs),
        ]
    }

    /// `segment mean / mean RCT`, as a percentage; 0 when empty.
    pub fn percent_of_rct(&self, segment_secs: f64) -> f64 {
        if self.mean_rct_secs > 0.0 {
            segment_secs / self.mean_rct_secs * 100.0
        } else {
            0.0
        }
    }
}

/// Signed quantile of `values` (which need not be sorted): the smallest
/// value v such that a fraction `q` of the samples are `<= v`.
fn quantile(values: &mut [i64], q: f64) -> i64 {
    debug_assert!(!values.is_empty());
    values.sort_unstable();
    let idx = ((values.len() as f64 - 1.0) * q).ceil() as usize;
    values[idx.min(values.len() - 1)]
}

impl TraceDiff {
    /// Mean RCT over the matched requests in A, seconds.
    pub fn mean_rct_a_secs(&self) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        self.sum_rct_a_ns as f64 * 1e-9 / self.deltas.len() as f64
    }

    /// Mean RCT over the matched requests in B, seconds.
    pub fn mean_rct_b_secs(&self) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        self.sum_rct_b_ns as f64 * 1e-9 / self.deltas.len() as f64
    }

    /// Mean of one segment over the matched A-side paths, seconds.
    pub fn mean_a_secs(&self, s: Segment) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        self.sum_a_ns[s.index()] as f64 * (1e-9 / self.deltas.len() as f64)
    }

    /// Mean of one segment over the matched B-side paths, seconds.
    pub fn mean_b_secs(&self, s: Segment) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        self.sum_b_ns[s.index()] as f64 * (1e-9 / self.deltas.len() as f64)
    }

    /// Mean delta of one segment over the matched requests, seconds.
    pub fn mean_delta_secs(&self, s: Segment) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        self.deltas
            .iter()
            .map(|d| d.segment_delta(s) as f64)
            .sum::<f64>()
            * 1e-9
            / self.deltas.len() as f64
    }

    /// Mean RCT delta over the matched requests, seconds; exactly
    /// `mean_rct_b_secs() - mean_rct_a_secs()` and exactly the sum of the
    /// five per-segment mean deltas.
    pub fn mean_rct_delta_secs(&self) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        self.deltas
            .iter()
            .map(|d| d.rct_delta_ns as f64)
            .sum::<f64>()
            * 1e-9
            / self.deltas.len() as f64
    }

    /// p99 of one segment's signed per-request delta distribution, seconds.
    pub fn p99_delta_secs(&self, s: Segment) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        let mut v: Vec<i64> = self.deltas.iter().map(|d| d.segment_delta(s)).collect();
        quantile(&mut v, 0.99) as f64 * 1e-9
    }

    /// p99 of the signed per-request RCT delta distribution, seconds.
    pub fn p99_rct_delta_secs(&self) -> f64 {
        if self.deltas.is_empty() {
            return 0.0;
        }
        let mut v: Vec<i64> = self.deltas.iter().map(|d| d.rct_delta_ns).collect();
        quantile(&mut v, 0.99) as f64 * 1e-9
    }

    /// The segment with the largest mean improvement (most negative mean
    /// delta), if any segment improved at all.
    pub fn dominant_negative_segment(&self) -> Option<Segment> {
        Segment::ALL
            .into_iter()
            .min_by(|&x, &y| self.mean_delta_secs(x).total_cmp(&self.mean_delta_secs(y)))
            .filter(|&s| self.mean_delta_secs(s) < 0.0)
    }

    /// The serializable summary (everything except the per-request deltas).
    pub fn summary(&self) -> DiffSummary {
        let segments = Segment::ALL
            .iter()
            .map(|&s| SegmentDelta {
                segment: s.label().to_string(),
                mean_a_secs: self.mean_a_secs(s),
                mean_b_secs: self.mean_b_secs(s),
                mean_delta_secs: self.mean_delta_secs(s),
                p99_delta_secs: self.p99_delta_secs(s),
            })
            .collect();
        DiffSummary {
            matched: self.matched,
            only_a: self.only_a,
            only_b: self.only_b,
            mean_rct_a_secs: self.mean_rct_a_secs(),
            mean_rct_b_secs: self.mean_rct_b_secs(),
            mean_rct_delta_secs: self.mean_rct_delta_secs(),
            p99_rct_delta_secs: self.p99_rct_delta_secs(),
            segments,
            moved_server: self.moved_server,
            moved_segment: self.moved_segment,
            migration: self.migration,
        }
    }
}

/// One segment's aggregate delta in a [`DiffSummary`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SegmentDelta {
    /// Segment label.
    pub segment: String,
    /// Mean over matched A-side paths, seconds.
    pub mean_a_secs: f64,
    /// Mean over matched B-side paths, seconds.
    pub mean_b_secs: f64,
    /// Mean signed delta (B − A), seconds.
    pub mean_delta_secs: f64,
    /// p99 of the signed per-request delta distribution, seconds.
    pub p99_delta_secs: f64,
}

/// The serializable aggregate view of a [`TraceDiff`] (what
/// `das_experiment blame-diff --out` writes).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DiffSummary {
    /// Requests matched across both traces.
    pub matched: u64,
    /// Requests completing only in trace A.
    pub only_a: u64,
    /// Requests completing only in trace B.
    pub only_b: u64,
    /// Mean RCT over matched requests in A, seconds.
    pub mean_rct_a_secs: f64,
    /// Mean RCT over matched requests in B, seconds.
    pub mean_rct_b_secs: f64,
    /// Mean RCT delta, seconds.
    pub mean_rct_delta_secs: f64,
    /// p99 signed RCT delta, seconds.
    pub p99_rct_delta_secs: f64,
    /// Per-segment aggregates, in path order.
    pub segments: Vec<SegmentDelta>,
    /// Matched requests completed by a different server under B.
    pub moved_server: u64,
    /// Matched requests whose dominant segment changed under B.
    pub moved_segment: u64,
    /// Dominant-segment migration counts, `[from][to]` in path order.
    pub migration: [[u64; 5]; 5],
}

impl LadderDiff {
    /// The serializable summary: one [`DiffSummary`] per adjacent step
    /// plus the end-to-end first→last view and the per-server mean RCT
    /// trajectory. `names` labels the rungs (must have `steps.len() + 1`
    /// entries; extra / missing names are tolerated by truncating).
    pub fn summary(&self, names: &[String]) -> LadderSummary {
        LadderSummary {
            rungs: names.to_vec(),
            matched: self.matched,
            only_in_rung: self.only_in_rung.clone(),
            steps: self.steps.iter().map(TraceDiff::summary).collect(),
            end_to_end: self.end_to_end.summary(),
            servers: self
                .servers
                .iter()
                .map(|row| ServerLadderSummary {
                    server: row.server,
                    matched: row.matched,
                    mean_rct_secs: row
                        .sum_rct_ns
                        .iter()
                        .map(|&ns| ns as f64 * 1e-9 / row.matched as f64)
                        .collect(),
                    mean_queue_secs: row
                        .sum_ns
                        .iter()
                        .map(|s| s[Segment::Queue.index()] as f64 * 1e-9 / row.matched as f64)
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One server group's per-rung mean trajectory in a [`LadderSummary`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServerLadderSummary {
    /// The rung-0 completing server defining the group.
    pub server: u32,
    /// Matched requests in the group.
    pub matched: u64,
    /// Mean RCT of the group under each rung, seconds.
    pub mean_rct_secs: Vec<f64>,
    /// Mean queue wait of the group under each rung, seconds.
    pub mean_queue_secs: Vec<f64>,
}

/// The serializable aggregate view of a [`LadderDiff`] (what
/// `das_experiment blame-diff --ladder --out` writes).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LadderSummary {
    /// Rung names, baseline first.
    pub rungs: Vec<String>,
    /// Requests matched across every rung.
    pub matched: u64,
    /// Per rung: completed requests outside the common matched set.
    pub only_in_rung: Vec<u64>,
    /// One pairwise summary per adjacent rung boundary.
    pub steps: Vec<DiffSummary>,
    /// First rung vs last rung over the same matched set.
    pub end_to_end: DiffSummary,
    /// Per-server drill-down (grouped by the baseline completing server).
    pub servers: Vec<ServerLadderSummary>,
}

impl Telemetry {
    /// A server's busy fraction of its worker capacity over the horizon,
    /// in `[0, 1]`.
    pub fn busy_fraction(&self, series: &ServerSeries) -> f64 {
        let cap = self.capacity_ns();
        if cap == 0 {
            return 0.0;
        }
        series.total_busy_ns() as f64 / cap as f64
    }

    /// A server's mean end-of-epoch queue depth.
    pub fn mean_queue_len(&self, series: &ServerSeries) -> f64 {
        if self.epochs == 0 {
            return 0.0;
        }
        series.queue_len.iter().map(|&q| q as f64).sum::<f64>() / self.epochs as f64
    }

    /// A server's per-epoch busy fractions, for sparkline panels.
    pub fn busy_series(&self, series: &ServerSeries) -> Vec<f64> {
        let cap = (u64::from(self.workers) * self.epoch_ns) as f64;
        series
            .busy_ns
            .iter()
            .map(|&b| if cap > 0.0 { b as f64 / cap } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DispatchKind, TraceEvent};

    /// A two-op request: op 0 fast, op 1 slow (sets the RCT); mirrors the
    /// fixture in `analysis::tests`.
    fn two_op_log() -> TraceLog {
        TraceLog {
            sample: 1.0,
            dropped: 0,
            events: vec![
                TraceEvent::RequestArrive {
                    t_ns: 100,
                    request: 1,
                    keys: 2,
                    fanout: 2,
                },
                TraceEvent::OpDispatch {
                    t_ns: 100,
                    request: 1,
                    op: 1,
                    server: 3,
                    attempt: 0,
                    kind: DispatchKind::First,
                    est_ns: 50,
                    bytes: 64,
                },
                TraceEvent::OpEnqueue {
                    t_ns: 130,
                    request: 1,
                    op: 1,
                    server: 3,
                    queue_len: 2,
                },
                TraceEvent::ServiceEnd {
                    t_ns: 450,
                    request: 1,
                    op: 1,
                    server: 3,
                    service_ns: 150,
                },
                TraceEvent::OpResponse {
                    t_ns: 500,
                    request: 1,
                    op: 1,
                    server: 3,
                    accepted: true,
                },
                TraceEvent::RequestComplete {
                    t_ns: 500,
                    request: 1,
                    rct_ns: 400,
                },
            ],
        }
    }

    #[test]
    fn blame_aggregates_means() {
        let b = BlameBreakdown::from_log(&two_op_log());
        assert_eq!(b.requests, 1);
        assert!((b.mean_rct_secs - 400e-9).abs() < 1e-15);
        assert!((b.queue_secs - 170e-9).abs() < 1e-15);
        let total: f64 = b.segments().iter().map(|(_, v)| v).sum();
        assert!((total - b.mean_rct_secs).abs() < 1e-15);
        assert!((b.percent_of_rct(b.queue_secs) - 42.5).abs() < 1e-9);
    }

    #[test]
    fn signed_quantile_is_order_statistic() {
        let mut v = vec![-5i64, -1, 0, 3, 100];
        assert_eq!(quantile(&mut v, 0.99), 100);
        assert_eq!(quantile(&mut v, 0.0), -5);
        assert_eq!(quantile(&mut v, 0.5), 0);
        let mut one = vec![7i64];
        assert_eq!(quantile(&mut one, 0.99), 7);
    }
}
