//! The bounded flight recorder and its configuration.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use das_sim::rng::{splitmix64, SeedFactory};

use crate::event::TraceEvent;

fn default_sample() -> f64 {
    1.0
}

fn default_capacity() -> usize {
    1 << 20
}

/// Tracing knobs, carried inside the simulation config.
///
/// Defaults to disabled; a config serialized before this field existed
/// deserializes to the same disabled default, and a disabled trace adds
/// zero work to the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch. Off by default.
    #[serde(default)]
    pub enabled: bool,
    /// Fraction of requests to trace, in `(0, 1]`. Sampling is a pure
    /// hash of (master seed, request id): deterministic, and identical
    /// across policies running the same seed.
    #[serde(default = "default_sample")]
    pub sample: f64,
    /// Ring-buffer capacity in events. When full, the oldest events are
    /// dropped (flight-recorder semantics) and counted in
    /// [`TraceLog::dropped`].
    #[serde(default = "default_capacity")]
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            sample: default_sample(),
            capacity: default_capacity(),
        }
    }
}

impl TraceConfig {
    /// An enabled config with default sampling and capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Checks the knobs are usable: `sample` in `(0, 1]`, nonzero capacity.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.sample > 0.0 && self.sample <= 1.0) {
            return Err(format!(
                "trace sample rate must be in (0, 1], got {}",
                self.sample
            ));
        }
        if self.enabled && self.capacity == 0 {
            return Err("trace capacity must be nonzero when tracing is enabled".into());
        }
        Ok(())
    }
}

/// The in-flight ring buffer the engine records into.
#[derive(Debug)]
pub struct TraceRecorder {
    sample: f64,
    sample_seed: u64,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder for one simulation run.
    ///
    /// `master_seed` is the simulation's master seed; the sampling hash is
    /// derived from it so traced request sets are reproducible and shared
    /// across policies running the same seed.
    pub fn new(config: &TraceConfig, master_seed: u64) -> Self {
        TraceRecorder {
            sample: config.sample,
            sample_seed: SeedFactory::new(master_seed).derived_seed("trace-sample", 0),
            capacity: config.capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Whether `request` is in the sampled set.
    ///
    /// Pure function of (master seed, request id) — no RNG state is
    /// consumed, so tracing cannot perturb the simulation.
    #[inline]
    pub fn is_sampled(&self, request: u64) -> bool {
        if self.sample >= 1.0 {
            return true;
        }
        let h = splitmix64(self.sample_seed ^ request.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Top 53 bits -> uniform in [0, 1).
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.sample
    }

    /// Appends an event, evicting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Seals the recorder into an immutable log.
    pub fn finish(self) -> TraceLog {
        TraceLog {
            sample: self.sample,
            dropped: self.dropped,
            events: self.events.into(),
        }
    }
}

/// A sealed trace: the recorder's contents after the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    /// The sampling rate the run used.
    pub sample: f64,
    /// Events evicted because the ring buffer was full.
    pub dropped: u64,
    /// Surviving events, in simulation-time order.
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Whether the ring never overflowed (the log is complete for every
    /// sampled request).
    pub fn complete(&self) -> bool {
        self.dropped == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let c = TraceConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.sample, 1.0);
        assert!(c.validate().is_ok());
        assert!(TraceConfig::enabled().enabled);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut c = TraceConfig::enabled();
        c.sample = 0.0;
        assert!(c.validate().is_err());
        c.sample = 1.5;
        assert!(c.validate().is_err());
        c.sample = 0.5;
        c.capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_defaults_when_fields_missing() {
        let c: TraceConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(c, TraceConfig::default());
        let c: TraceConfig = serde_json::from_str(r#"{"enabled":true}"#).unwrap();
        assert!(c.enabled);
        assert_eq!(c.sample, 1.0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let cfg = TraceConfig {
            enabled: true,
            sample: 1.0,
            capacity: 3,
        };
        let mut r = TraceRecorder::new(&cfg, 1);
        for t in 0..5u64 {
            r.record(TraceEvent::ServerCrash { t_ns: t, server: 0 });
        }
        let log = r.finish();
        assert_eq!(log.dropped, 2);
        assert!(!log.complete());
        let times: Vec<u64> = log.events.iter().map(|e| e.t_ns()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_calibrated() {
        let cfg = TraceConfig {
            enabled: true,
            sample: 0.25,
            capacity: 8,
        };
        let a = TraceRecorder::new(&cfg, 42);
        let b = TraceRecorder::new(&cfg, 42);
        let hits: usize = (0..10_000).filter(|&r| a.is_sampled(r)).count();
        for r in 0..1000 {
            assert_eq!(a.is_sampled(r), b.is_sampled(r));
        }
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "sampled fraction {frac}");
        // Different seeds pick different subsets.
        let c = TraceRecorder::new(&cfg, 43);
        assert!((0..10_000).any(|r| a.is_sampled(r) != c.is_sampled(r)));
    }

    #[test]
    fn full_rate_samples_everything() {
        let r = TraceRecorder::new(&TraceConfig::enabled(), 9);
        assert!((0..1000).all(|id| r.is_sampled(id)));
    }

    #[test]
    fn log_roundtrips_through_json() {
        let cfg = TraceConfig::enabled();
        let mut r = TraceRecorder::new(&cfg, 5);
        r.record(TraceEvent::RequestArrive {
            t_ns: 1,
            request: 0,
            keys: 2,
            fanout: 2,
        });
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        let log = r.finish();
        let json = serde_json::to_string(&log).unwrap();
        let back: TraceLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}
